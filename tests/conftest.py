"""Shared fixtures.

Expensive artifacts (replayed profiles, SNIP packages, baseline
sessions) are built once per test session and shared; tests must treat
them as read-only. Anything a test mutates gets its own fixture.
"""

from __future__ import annotations

import os

import pytest

from repro.android.emulator import Emulator
from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_trace

#: Short but non-trivial session length for shared fixtures.
FIXTURE_DURATION_S = 30.0


@pytest.fixture(scope="session", autouse=True)
def _isolated_package_cache(tmp_path_factory):
    """Point the default package cache at a per-run tmp directory.

    Default-on caching is part of what the suite exercises (repeated
    profiles of the same fixture inputs hit it), but test runs must
    never read from or write to the developer's ``~/.cache``.
    """
    previous = os.environ.get("REPRO_SNIP_CACHE_DIR")
    os.environ["REPRO_SNIP_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("package-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_SNIP_CACHE_DIR", None)
    else:
        os.environ["REPRO_SNIP_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def snip_config():
    """The default SNIP configuration."""
    return SnipConfig()


@pytest.fixture(scope="session")
def ab_trace():
    """One recorded AB Evolution session."""
    return generate_trace("ab_evolution", seed=1, duration_s=FIXTURE_DURATION_S)


@pytest.fixture(scope="session")
def ab_records(ab_trace):
    """The AB Evolution session replayed on the emulator."""
    game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
    return Emulator(verify=False).replay(game, ab_trace)


@pytest.fixture(scope="session")
def ab_package(snip_config):
    """A full SNIP package for AB Evolution (two profiled sessions)."""
    profiler = CloudProfiler(snip_config)
    return profiler.build_package_from_sessions(
        "ab_evolution", seeds=[1, 2], duration_s=FIXTURE_DURATION_S
    )


@pytest.fixture(scope="session")
def ab_analysis(ab_package):
    """The PFI analysis behind the AB package."""
    return ab_package.analysis


@pytest.fixture(scope="session")
def colorphun_session():
    """One baseline Colorphun session."""
    return run_baseline_session("colorphun", seed=1, duration_s=FIXTURE_DURATION_S)


@pytest.fixture(scope="session")
def ab_session():
    """One baseline AB Evolution session."""
    return run_baseline_session("ab_evolution", seed=1, duration_s=FIXTURE_DURATION_S)
