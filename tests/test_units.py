"""Tests for unit conversion and formatting helpers."""

import pytest

from repro import units


class TestBatteryConversions:
    def test_mah_to_joules_roundtrip(self):
        assert units.joules_to_mah(units.mah_to_joules(3450.0)) == pytest.approx(3450.0)

    def test_pixel_xl_pack_scale(self):
        # 3450 mAh at 3.85 V is ~47.8 kJ.
        assert units.mah_to_joules(3450.0) == pytest.approx(47_816, rel=0.01)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            units.mah_to_joules(-1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            units.joules_to_mah(-1.0)


class TestFormatting:
    def test_format_bytes_scales(self):
        assert units.format_bytes(512) == "512 B"
        assert units.format_bytes(1536) == "1.5 kB"
        assert units.format_bytes(3 * units.MIB) == "3.0 MB"
        assert units.format_bytes(2 * units.GIB) == "2.0 GB"

    def test_format_energy_scales(self):
        assert units.format_energy(1.5) == "1.50 J"
        assert units.format_energy(0.0025) == "2.50 mJ"
        assert units.format_energy(3e-6) == "3.00 uJ"
        assert units.format_energy(5e-9) == "5.00 nJ"

    def test_format_duration_scales(self):
        assert units.format_duration(7200) == "2.0 h"
        assert units.format_duration(120) == "2.0 min"
        assert units.format_duration(2.5) == "2.5 s"
        assert units.format_duration(0.05) == "50.0 ms"

    def test_format_percent(self):
        assert units.format_percent(0.327) == "32.7%"
        assert units.format_percent(0.327, digits=0) == "33%"


class TestHelpers:
    def test_hours(self):
        assert units.hours(3600.0) == 1.0

    def test_clamp_inside(self):
        assert units.clamp(5.0, 0.0, 10.0) == 5.0

    def test_clamp_edges(self):
        assert units.clamp(-1.0, 0.0, 10.0) == 0.0
        assert units.clamp(11.0, 0.0, 10.0) == 10.0

    def test_clamp_empty_interval(self):
        with pytest.raises(ValueError):
            units.clamp(1.0, 5.0, 2.0)

    def test_capacity_constants_ordering(self):
        assert units.TYPICAL_MEMORY_BYTES < units.TYPICAL_SDCARD_BYTES
