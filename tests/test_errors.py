"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        exception_types = [
            value for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(exception_types) > 15
        for exc_type in exception_types:
            assert issubclass(exc_type, errors.ReproError)

    def test_specific_parentage(self):
        assert issubclass(errors.BatteryDepletedError, errors.SimulationError)
        assert issubclass(errors.PowerStateError, errors.SimulationError)
        assert issubclass(errors.UnknownGameError, errors.GameError)
        assert issubclass(errors.StateError, errors.GameError)
        assert issubclass(errors.ReplayDivergenceError, errors.TraceError)
        assert issubclass(errors.UnknownEventTypeError, errors.EventError)
        assert issubclass(errors.TableCapacityError, errors.MemoizationError)

    def test_catching_the_base_catches_leaves(self):
        with pytest.raises(errors.ReproError):
            raise errors.SelectionError("boom")

    def test_library_raises_its_own_types(self):
        from repro.games.registry import game_info

        with pytest.raises(errors.ReproError):
            game_info("nope")
