"""End-to-end device-side recording: play, record, profile, snip.

Exercises the exact loop of the paper's Fig. 10: the tracer rides the
live event loop while the user plays; the recording (not the generator!)
feeds the cloud; and the table built from it works back on the device.
"""

import pytest

from repro.android.dispatch import EventLoop
from repro.android.tracing import EventTracer
from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.tracegen import generate_events


def play_and_record(game_name, seed, duration_s):
    """One live session with the logcat-style tracer attached."""
    soc = snapdragon_821()
    game = create_game(game_name, seed=GAME_CONTENT_SEED)
    tracer = EventTracer(game_name, seed=seed)
    loop = EventLoop(soc, game, tracer=tracer)
    clock = 0.0
    for event in generate_events(game_name, seed, duration_s):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        loop.deliver(event)
    return soc, game, tracer.trace


class TestDeviceRecording:
    @pytest.fixture(scope="class")
    def recording(self):
        return play_and_record("candy_crush", seed=5, duration_s=20.0)

    def test_recording_matches_play(self, recording):
        _, game, trace = recording
        assert len(trace) == game.events_processed
        assert trace.uplink_bytes < 20_000  # negligible client overhead

    def test_cloud_profile_from_device_recording(self, recording):
        _, live_game, trace = recording
        config = SnipConfig()
        profiler = CloudProfiler(config)
        records = profiler.replay_traces("candy_crush", [trace])
        # The emulator reconstructed the exact outputs the device saw:
        # final state digests agree.
        emu_game = create_game("candy_crush", seed=GAME_CONTENT_SEED)
        for recorded in trace:
            event = recorded.to_event()
            emu_game.advance_engine(event)
            emu_game.process(event)
        assert emu_game.state.snapshot() == live_game.state.snapshot()
        assert len(records) == len(trace)

    def test_table_from_recording_serves_future_play(self, recording):
        _, _, trace = recording
        config = SnipConfig()
        profiler = CloudProfiler(config)
        # Two recorded sessions (second from a different day's play).
        _, _, second = play_and_record("candy_crush", seed=6, duration_s=20.0)
        package = profiler.build_package("candy_crush", [trace, second])
        soc = snapdragon_821()
        runtime = SnipRuntime(
            soc, create_game("candy_crush", GAME_CONTENT_SEED),
            package.table, config,
        )
        clock = 0.0
        for event in generate_events("candy_crush", seed=9, duration_s=15.0):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        assert runtime.stats.hit_rate > 0.3
