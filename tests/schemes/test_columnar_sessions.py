"""Batched scheme/baseline sessions equal their scalar references.

``run_scheme_session`` and ``run_baseline_session`` assemble events in
structure-of-arrays form and account energy through the append-only
:class:`~repro.soc.energy.ColumnarMeter`; the ``*_reference`` runners
are the seed implementations kept verbatim. Reports, traces, events,
and the schemes' short-circuit statistics must be exactly equal —
no tolerances.
"""

from __future__ import annotations

import pytest

from repro.core.fastpath import (
    batching_enabled,
    disable_batching,
    enable_batching,
)
from repro.schemes import (
    BaselineScheme,
    MaxCpuScheme,
    MaxIpScheme,
    NoOverheadsScheme,
    SnipScheme,
)
from repro.schemes.base import run_scheme_session, run_scheme_session_reference
from repro.users.sessions import (
    run_baseline_session,
    run_baseline_session_reference,
)

SCHEME_CLASSES = (
    BaselineScheme,
    SnipScheme,
    MaxCpuScheme,
    MaxIpScheme,
    NoOverheadsScheme,
)


@pytest.mark.parametrize(
    "scheme_cls", SCHEME_CLASSES, ids=[cls.__name__ for cls in SCHEME_CLASSES]
)
def test_scheme_session_matches_reference(scheme_cls):
    batched_scheme = scheme_cls()
    reference_scheme = scheme_cls()
    batched_scheme.prepare("candy_crush")
    reference_scheme.prepare("candy_crush")
    batched = run_scheme_session(
        batched_scheme, "candy_crush", seed=3, duration_s=5.0
    )
    reference = run_scheme_session_reference(
        reference_scheme, "candy_crush", seed=3, duration_s=5.0
    )
    assert batched.report == reference.report
    assert batched.coverage == reference.coverage
    assert batched.hit_rate == reference.hit_rate
    assert batched.scheme_name == reference.scheme_name


def test_baseline_session_matches_reference():
    batched = run_baseline_session("greenwall", seed=5, duration_s=4.0)
    reference = run_baseline_session_reference(
        "greenwall", seed=5, duration_s=4.0
    )
    assert batched.report == reference.report
    assert batched.events == reference.events
    assert batched.traces == reference.traces
    assert batched.average_watts == reference.average_watts
    assert batched.battery_hours == reference.battery_hours
    assert batched.useless_user_fraction == reference.useless_user_fraction
    assert batched.wasted_energy_fraction == reference.wasted_energy_fraction


def test_escape_hatch_covers_sessions():
    restore = batching_enabled()
    disable_batching()
    try:
        routed = run_baseline_session("colorphun", seed=2, duration_s=2.0)
    finally:
        if restore:
            enable_batching()
    reference = run_baseline_session_reference(
        "colorphun", seed=2, duration_s=2.0
    )
    assert routed.report == reference.report
    assert routed.events == reference.events
    assert routed.traces == reference.traces
