"""Tests for the evaluation schemes (Sec. VII comparison points)."""

import pytest

from repro.core.config import SnipConfig
from repro.schemes import (
    BaselineScheme,
    MaxCpuScheme,
    MaxIpScheme,
    NoOverheadsScheme,
    SnipScheme,
    run_scheme_session,
)

GAME = "ab_evolution"
DURATION = 20.0


@pytest.fixture(scope="module")
def snip_scheme():
    scheme = SnipScheme(
        SnipConfig(), profile_seeds=(1, 2), profile_duration_s=30.0
    )
    scheme.prepare(GAME)
    return scheme


@pytest.fixture(scope="module")
def runs(snip_scheme):
    no_overheads = NoOverheadsScheme(snip_scheme.config)
    no_overheads._packages[GAME] = snip_scheme.package_for(GAME)
    schemes = {
        "baseline": BaselineScheme(),
        "max_cpu": MaxCpuScheme(),
        "max_ip": MaxIpScheme(),
        "snip": snip_scheme,
        "no_overheads": no_overheads,
    }
    return {
        name: run_scheme_session(scheme, GAME, seed=7, duration_s=DURATION)
        for name, scheme in schemes.items()
    }


class TestBaseline:
    def test_no_coverage(self, runs):
        assert runs["baseline"].coverage == 0.0
        assert runs["baseline"].hit_rate == 0.0
        assert runs["baseline"].lookup_overhead_fraction == 0.0

    def test_savings_vs_self_zero(self, runs):
        assert runs["baseline"].savings_vs(runs["baseline"]) == pytest.approx(0.0)


class TestMaxCpu:
    def test_saves_a_little(self, runs):
        savings = runs["max_cpu"].savings_vs(runs["baseline"])
        assert 0.0 <= savings < 0.15

    def test_far_below_snip(self, runs):
        assert runs["max_cpu"].savings_vs(runs["baseline"]) < \
            runs["snip"].savings_vs(runs["baseline"]) / 2


class TestMaxIp:
    def test_saves_a_little(self, runs):
        savings = runs["max_ip"].savings_vs(runs["baseline"])
        assert 0.0 < savings < 0.15

    def test_far_below_snip(self, runs):
        assert runs["max_ip"].savings_vs(runs["baseline"]) < \
            runs["snip"].savings_vs(runs["baseline"]) / 2


class TestSnip:
    def test_savings_in_paper_band(self, runs):
        savings = runs["snip"].savings_vs(runs["baseline"])
        assert 0.20 < savings < 0.45

    def test_coverage_in_paper_band(self, runs):
        assert 0.35 < runs["snip"].coverage < 0.70

    def test_extends_battery(self, runs):
        assert runs["snip"].battery_hours > runs["baseline"].battery_hours

    def test_lookup_overhead_small(self, runs):
        assert 0.0 < runs["snip"].lookup_overhead_fraction < 0.06

    def test_fresh_tables_per_session(self, snip_scheme):
        first = run_scheme_session(snip_scheme, GAME, seed=7, duration_s=10.0)
        second = run_scheme_session(snip_scheme, GAME, seed=7, duration_s=10.0)
        # Online learning in run 1 must not leak into run 2.
        assert first.report.total_joules == pytest.approx(second.report.total_joules)

    def test_shipped_table_untouched_by_sessions(self, snip_scheme):
        before = snip_scheme.package_for(GAME).table.entry_count
        run_scheme_session(snip_scheme, GAME, seed=9, duration_s=10.0)
        assert snip_scheme.package_for(GAME).table.entry_count == before


class TestNoOverheads:
    def test_beats_snip(self, runs):
        assert runs["no_overheads"].savings_vs(runs["baseline"]) >= \
            runs["snip"].savings_vs(runs["baseline"])

    def test_no_lookup_energy(self, runs):
        assert runs["no_overheads"].lookup_overhead_fraction < \
            runs["snip"].lookup_overhead_fraction


class TestOrdering:
    def test_paper_scheme_ordering(self, runs):
        """Fig. 11a's qualitative ordering: partial schemes << SNIP."""
        base = runs["baseline"]
        assert (
            runs["max_cpu"].savings_vs(base)
            < runs["snip"].savings_vs(base)
            <= runs["no_overheads"].savings_vs(base)
        )
        assert runs["max_ip"].savings_vs(base) < runs["snip"].savings_vs(base)
