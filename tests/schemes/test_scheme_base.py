"""Tests for SchemeRun accounting and the shared session runner."""

import pytest

from repro.schemes import BaselineScheme, run_scheme_session
from repro.users.sessions import run_baseline_session


class TestSchemeRun:
    @pytest.fixture(scope="class")
    def run(self):
        return run_scheme_session(BaselineScheme(), "colorphun", seed=1,
                                  duration_s=15.0)

    def test_matches_plain_baseline_session(self, run):
        plain = run_baseline_session("colorphun", seed=1, duration_s=15.0)
        assert run.report.total_joules == pytest.approx(
            plain.report.total_joules
        )

    def test_average_watts(self, run):
        assert run.average_watts == pytest.approx(
            run.report.total_joules / 15.0
        )

    def test_battery_projection_positive(self, run):
        assert run.battery_hours > 0

    def test_savings_vs_zero_baseline_guard(self, run):
        from dataclasses import replace
        from repro.soc.energy import EnergyMeter

        empty = replace(run, report=EnergyMeter().report())
        assert run.savings_vs(empty) == 0.0

    def test_metadata(self, run):
        assert run.scheme_name == "baseline"
        assert run.game_name == "colorphun"
        assert run.seed == 1
