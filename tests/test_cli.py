"""Tests for the command-line interface."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def run_cli_subprocess(*argv):
    """The CLI in a real process, with stdout and stderr kept apart."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    return completed.returncode, completed.stdout, completed.stderr


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_game(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["session", "tetris"])

    def test_rejects_bad_seed_list(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snip", "colorphun",
                                       "--profile-seeds", "a,b"])

    def test_parses_seed_list(self):
        args = build_parser().parse_args(
            ["snip", "colorphun", "--profile-seeds", "3,4,5"]
        )
        assert args.profile_seeds == [3, 4, 5]


class TestCommands:
    def test_list_games(self):
        code, text = run_cli("list-games")
        assert code == 0
        assert "colorphun" in text and "race_kings" in text
        assert len(text.strip().splitlines()) == 7

    def test_session(self):
        code, text = run_cli("session", "colorphun", "--duration", "5")
        assert code == 0
        assert "battery life" in text
        assert "useless events" in text

    def test_snip_pipeline(self):
        code, text = run_cli(
            "snip", "colorphun",
            "--profile-duration", "15", "--eval-duration", "10",
        )
        assert code == 0
        assert "savings" in text and "coverage" in text

    def test_devreport(self):
        code, text = run_cli(
            "devreport", "colorphun", "--profile-duration", "10"
        )
        assert code == 0
        assert "Developer report" in text

    def test_ota_roundtrip(self, tmp_path):
        path = str(tmp_path / "table.json")
        code, text = run_cli(
            "ota", "colorphun", "--out", path, "--profile-duration", "10"
        )
        assert code == 0 and "wrote" in text
        code, text = run_cli("ota-info", path)
        assert code == 0
        assert "entries" in text and "key = [" in text


class TestCacheCommands:
    def test_stats_json(self, tmp_path):
        code, text = run_cli(
            "cache", "stats", "--dir", str(tmp_path), "--format", "json"
        )
        assert code == 0
        import json

        payload = json.loads(text)
        assert payload["entries"] == 0
        assert payload["corrupt_evictions"] == 0

    def test_clear_reports_reclaimed_bytes(self, tmp_path):
        code, text = run_cli("cache", "clear", "--dir", str(tmp_path))
        assert code == 0
        assert "reclaimed" in text


class TestRegistryCommands:
    GAME = "colorphun"

    def _publish(self, directory):
        return run_cli(
            "registry", "publish", "--dir", directory, "--game", self.GAME,
            "--profile-seeds", "1", "--profile-duration", "6", "--no-energy",
        )

    def test_list_empty(self, tmp_path):
        code, text = run_cli("registry", "list", "--dir", str(tmp_path))
        assert code == 0
        assert "(empty)" in text

    def test_actions_need_game(self, tmp_path):
        code, _ = run_cli("registry", "show", "--dir", str(tmp_path))
        assert code == 2

    def test_publish_promote_show_roundtrip(self, tmp_path):
        directory = str(tmp_path)
        code, text = self._publish(directory)
        assert code == 0 and "published" in text
        # The 6 s profile undershoots the default accuracy floor; this
        # test exercises the CLI plumbing, not the model quality.
        code, text = run_cli(
            "registry", "promote", "--dir", directory, "--game", self.GAME,
            "--min-accuracy", "0.5",
        )
        assert code == 0 and "promoted v1" in text
        code, text = run_cli(
            "registry", "show", "--dir", directory, "--game", self.GAME
        )
        assert code == 0
        assert "champion v1" in text and "[champion]" in text
        code, text = run_cli(
            "registry", "show", "--dir", directory, "--game", self.GAME,
            "--format", "json",
        )
        assert code == 0
        import json

        payload = json.loads(text)
        assert payload["champion_version"] == 1
        assert payload["entries"][0]["status"] == "champion"

    def test_promote_below_floor_fails_loudly(self, tmp_path):
        directory = str(tmp_path)
        self._publish(directory)
        code, text = run_cli(
            "registry", "promote", "--dir", directory, "--game", self.GAME,
            "--min-hit-rate", "1.0",
        )
        assert code == 1
        assert "rejected" in text

    def test_promote_without_candidates_errors(self, tmp_path):
        code, _ = run_cli(
            "registry", "promote", "--dir", str(tmp_path), "--game", self.GAME
        )
        assert code == 1

    def test_gc_reports_reclaimed(self, tmp_path):
        directory = str(tmp_path)
        self._publish(directory)
        run_cli(
            "registry", "promote", "--dir", directory, "--game", self.GAME,
            "--min-accuracy", "0.5",
        )
        code, text = run_cli(
            "registry", "gc", "--dir", directory, "--game", self.GAME
        )
        assert code == 0
        assert "reclaimed" in text


class TestJsonOutputPurity:
    """``--format json`` must leave stdout a single parseable document.

    Progress and telemetry narrate on stderr only; the regression these
    tests pin is human-facing chatter leaking into machine-facing
    output and breaking ``repro-snip ... | jq``.
    """

    def test_fleet_json_stdout_is_pure_with_progress_enabled(self):
        code, stdout, stderr = run_cli_subprocess(
            "fleet", "--game", "colorphun", "--devices", "2",
            "--sessions", "1", "--duration", "2", "--shard-size", "1",
            "--profile-duration", "4", "--no-federate",
            "--no-cache", "--format", "json", "--progress",
        )
        assert code == 0, stderr
        payload = json.loads(stdout)
        assert payload["totals"]["devices"] == 2
        assert "run started" in stderr  # progress went to stderr

    def test_registry_list_json_stdout_is_pure(self, tmp_path):
        code, stdout, stderr = run_cli_subprocess(
            "registry", "list", "--dir", str(tmp_path), "--format", "json"
        )
        assert code == 0, stderr
        assert json.loads(stdout) == []

    def test_serve_json_stdout_is_pure_with_telemetry_enabled(self, tmp_path):
        code, stdout, stderr = run_cli_subprocess(
            "serve", "--game", "colorphun", "--cycles", "2",
            "--run-dir", str(tmp_path / "run"),
            "--devices", "4", "--duration", "2", "--shard-size", "2",
            "--profile-duration", "3", "--eval-duration", "3",
            "--format", "json",
        )
        assert code == 0, stderr
        document = json.loads(stdout)
        assert sum(1 for cycle in document["cycles"] if cycle["complete"]) == 2
        # The default (non --quiet) serve narrates cycles on stderr.
        assert "cycle 0 started" in stderr
        assert "cycle 1 finished" in stderr


class TestServeCommand:
    def test_serve_text_summarises_cycles(self, tmp_path):
        code, stdout, stderr = run_cli_subprocess(
            "serve", "--game", "colorphun", "--cycles", "1", "--quiet",
            "--run-dir", str(tmp_path / "run"),
            "--devices", "4", "--duration", "2", "--shard-size", "2",
            "--profile-duration", "3", "--eval-duration", "3",
        )
        assert code == 0, stderr
        assert "serve: 1 cycles complete" in stdout
        assert "cycle 0: offline | promoted -> champion v1" in stdout
        assert stderr == ""  # --quiet silences the narration

    def test_serve_rejects_mismatched_run_dir(self, tmp_path):
        run_dir = str(tmp_path / "run")
        args = [
            "serve", "--game", "colorphun", "--cycles", "1", "--quiet",
            "--run-dir", run_dir, "--devices", "4", "--duration", "2",
            "--shard-size", "2", "--profile-duration", "3",
            "--eval-duration", "3",
        ]
        code, _, stderr = run_cli_subprocess(*args)
        assert code == 0, stderr
        code, _, stderr = run_cli_subprocess(*args, "--seed", "5")
        assert code == 1
        assert "different service config" in stderr


class TestExtensionCommands:
    def test_experiment_accepts_extension_ids(self):
        args = build_parser().parse_args(["experiment", "quantization"])
        assert args.id == "quantization"

    def test_fleet_parses_rollout_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--challenger-fraction", "0.25",
             "--challenger-version", "3", "--registry", "/tmp/reg"]
        )
        assert args.challenger_fraction == 0.25
        assert args.challenger_version == 3
        assert args.registry == "/tmp/reg"

    def test_federate_command(self):
        code, text = run_cli(
            "federate", "colorphun", "--devices", "2",
            "--sessions", "1", "--duration", "10",
        )
        assert code == 0
        assert "fleet table" in text and "uplink" in text
