"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_game(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["session", "tetris"])

    def test_rejects_bad_seed_list(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snip", "colorphun",
                                       "--profile-seeds", "a,b"])

    def test_parses_seed_list(self):
        args = build_parser().parse_args(
            ["snip", "colorphun", "--profile-seeds", "3,4,5"]
        )
        assert args.profile_seeds == [3, 4, 5]


class TestCommands:
    def test_list_games(self):
        code, text = run_cli("list-games")
        assert code == 0
        assert "colorphun" in text and "race_kings" in text
        assert len(text.strip().splitlines()) == 7

    def test_session(self):
        code, text = run_cli("session", "colorphun", "--duration", "5")
        assert code == 0
        assert "battery life" in text
        assert "useless events" in text

    def test_snip_pipeline(self):
        code, text = run_cli(
            "snip", "colorphun",
            "--profile-duration", "15", "--eval-duration", "10",
        )
        assert code == 0
        assert "savings" in text and "coverage" in text

    def test_devreport(self):
        code, text = run_cli(
            "devreport", "colorphun", "--profile-duration", "10"
        )
        assert code == 0
        assert "Developer report" in text

    def test_ota_roundtrip(self, tmp_path):
        path = str(tmp_path / "table.json")
        code, text = run_cli(
            "ota", "colorphun", "--out", path, "--profile-duration", "10"
        )
        assert code == 0 and "wrote" in text
        code, text = run_cli("ota-info", path)
        assert code == 0
        assert "entries" in text and "key = [" in text


class TestExtensionCommands:
    def test_experiment_accepts_extension_ids(self):
        args = build_parser().parse_args(["experiment", "quantization"])
        assert args.id == "quantization"

    def test_federate_command(self):
        code, text = run_cli(
            "federate", "colorphun", "--devices", "2",
            "--sessions", "1", "--duration", "10",
        )
        assert code == 0
        assert "fleet table" in text and "uplink" in text
