"""Tests for the seeded RNG utilities."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, ReproRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = ReproRng(42)
        b = ReproRng(42)
        assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]

    def test_different_seeds_differ(self):
        draws_a = [ReproRng(1).uniform() for _ in range(5)]
        draws_b = [ReproRng(2).uniform() for _ in range(5)]
        assert draws_a != draws_b

    def test_default_seed_used(self):
        assert ReproRng().seed == DEFAULT_SEED

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ReproRng(-1)


class TestFork:
    def test_fork_is_deterministic(self):
        assert ReproRng(7).fork("x").uniform() == ReproRng(7).fork("x").uniform()

    def test_fork_labels_independent(self):
        assert ReproRng(7).fork("a").seed != ReproRng(7).fork("b").seed

    def test_fork_does_not_advance_parent(self):
        parent = ReproRng(7)
        before = ReproRng(7).uniform()
        parent.fork("anything")
        assert parent.uniform() == before

    def test_fork_order_irrelevant(self):
        one = ReproRng(9)
        two = ReproRng(9)
        seed_a1 = one.fork("a").seed
        two.fork("b")
        assert two.fork("a").seed == seed_a1


class TestScalarDraws:
    def test_uniform_bounds(self):
        rng = ReproRng(3)
        draws = [rng.uniform(2.0, 5.0) for _ in range(200)]
        assert all(2.0 <= value < 5.0 for value in draws)

    def test_integer_bounds(self):
        rng = ReproRng(3)
        draws = [rng.integer(10, 13) for _ in range(200)]
        assert set(draws) <= {10, 11, 12}

    def test_integer_empty_range(self):
        with pytest.raises(ValueError):
            ReproRng(1).integer(5, 5)

    def test_exponential_positive(self):
        rng = ReproRng(3)
        assert all(rng.exponential(0.5) > 0 for _ in range(50))

    def test_exponential_mean_validated(self):
        with pytest.raises(ValueError):
            ReproRng(1).exponential(0.0)

    def test_chance_extremes(self):
        rng = ReproRng(5)
        assert not any(rng.chance(0.0) for _ in range(20))
        assert all(rng.chance(1.0) for _ in range(20))

    def test_chance_out_of_range(self):
        with pytest.raises(ValueError):
            ReproRng(1).chance(1.5)

    def test_normal_roughly_centred(self):
        rng = ReproRng(11)
        draws = [rng.normal(10.0, 1.0) for _ in range(500)]
        assert 9.5 < sum(draws) / len(draws) < 10.5


class TestCollectionDraws:
    def test_choice_uniform(self):
        rng = ReproRng(5)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(50))

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            ReproRng(1).choice([])

    def test_choice_weights_respected(self):
        rng = ReproRng(5)
        picks = [rng.choice(["x", "y"], weights=[1.0, 0.0]) for _ in range(30)]
        assert set(picks) == {"x"}

    def test_choice_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            ReproRng(1).choice(["a"], weights=[1.0, 2.0])

    def test_choice_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            ReproRng(1).choice(["a", "b"], weights=[0.0, 0.0])

    def test_sample_distinct(self):
        rng = ReproRng(5)
        picked = rng.sample(list(range(20)), 10)
        assert len(set(picked)) == 10

    def test_sample_too_many(self):
        with pytest.raises(ValueError):
            ReproRng(1).sample([1, 2], 3)

    def test_shuffled_preserves_elements(self):
        rng = ReproRng(5)
        items = list(range(30))
        assert sorted(rng.shuffled(items)) == items

    def test_shuffled_leaves_input_alone(self):
        rng = ReproRng(5)
        items = list(range(10))
        rng.shuffled(items)
        assert items == list(range(10))

    def test_permutation_is_permutation(self):
        rng = ReproRng(5)
        perm = rng.permutation(16)
        assert sorted(perm.tolist()) == list(range(16))

    def test_generator_is_numpy(self):
        assert isinstance(ReproRng(5).generator, np.random.Generator)
