"""Tests for the ML substrate: encoding, dataset, trees, forest, PFI."""

import numpy as np
import pytest

from repro.errors import DatasetError, ModelNotFittedError
from repro.ml.dataset import Dataset
from repro.ml.encoding import ABSENT, FeatureEncoder, encode_value
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy, majority_class_accuracy
from repro.ml.permutation import permutation_importance
from repro.ml.tree import DecisionTreeClassifier


class TestEncoding:
    def test_numbers_pass_through(self):
        assert encode_value(3) == 3.0
        assert encode_value(2.5) == 2.5

    def test_none_is_absent(self):
        assert encode_value(None) == ABSENT

    def test_bools_map_to_bits(self):
        assert encode_value(True) == 1.0
        assert encode_value(False) == 0.0

    def test_equal_values_encode_equal(self):
        assert encode_value((1, "a")) == encode_value((1, "a"))

    def test_distinct_values_encode_distinct(self):
        assert encode_value("left") != encode_value("right")

    def test_huge_ints_stay_distinguishable(self):
        a, b = 2**60 + 1, 2**60 + 2
        assert encode_value(a) != encode_value(b)

    def test_encoder_orders_features(self):
        encoder = FeatureEncoder(["a", "b"])
        row = encoder.encode_record({"b": 2, "a": 1})
        assert row.tolist() == [1.0, 2.0]

    def test_encoder_missing_becomes_absent(self):
        encoder = FeatureEncoder(["a", "b"])
        assert encoder.encode_record({"a": 1}).tolist() == [1.0, ABSENT]

    def test_encoder_ignores_unknown_keys(self):
        encoder = FeatureEncoder(["a"])
        assert encoder.encode_record({"a": 1, "zzz": 9}).tolist() == [1.0]

    def test_encoder_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FeatureEncoder(["a", "a"])

    def test_encode_records_shape(self):
        encoder = FeatureEncoder(["a", "b"])
        matrix = encoder.encode_records([{"a": 1}, {"b": 2}])
        assert matrix.shape == (2, 2)


class TestDataset:
    def test_labels_factorised(self):
        data = Dataset(["x"], np.array([[1.0], [2.0]]), ["cat", "dog"])
        assert data.n_classes == 2
        assert {data.class_of(i) for i in data.labels} == {"cat", "dog"}

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            Dataset(["x"], np.zeros((2, 2)), [0, 1])
        with pytest.raises(DatasetError):
            Dataset(["x"], np.zeros((2, 1)), [0])
        with pytest.raises(DatasetError):
            Dataset(["x"], np.zeros((0, 1)), [])

    def test_default_weights_uniform(self):
        data = Dataset(["x"], np.zeros((3, 1)), [0, 1, 0])
        assert data.sample_weight.tolist() == [1.0, 1.0, 1.0]

    def test_negative_weights_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(["x"], np.zeros((2, 1)), [0, 1], sample_weight=[-1.0, 1.0])

    def test_split_partitions_rows(self):
        data = Dataset(["x"], np.arange(10.0).reshape(-1, 1), list(range(10)))
        train, test = data.split(0.7, np.random.default_rng(0))
        assert train.n_rows + test.n_rows == 10
        assert train.classes is data.classes

    def test_split_fraction_validated(self):
        data = Dataset(["x"], np.zeros((4, 1)), [0, 1, 0, 1])
        with pytest.raises(DatasetError):
            data.split(1.0, np.random.default_rng(0))


def _xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 2, size=(n, 2)).astype(float)
    labels = (features[:, 0].astype(int) ^ features[:, 1].astype(int))
    return features, labels


class TestDecisionTree:
    def test_learns_xor(self):
        features, labels = _xor_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        assert accuracy(tree.predict(features), labels) == 1.0

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelNotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_depth_limit_respected(self):
        features, labels = _xor_data()
        stump = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        assert stump.node_count <= 3

    def test_pure_node_stops_splitting(self):
        features = np.array([[0.0], [1.0], [2.0]])
        labels = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.node_count == 1

    def test_sample_weight_shifts_majority(self):
        features = np.array([[0.0], [0.0], [0.0]])
        labels = np.array([0, 1, 1])
        weights = np.array([10.0, 1.0, 1.0])
        tree = DecisionTreeClassifier().fit(features, labels, weights)
        assert tree.predict(np.array([[0.0]]))[0] == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_deterministic_given_seed(self):
        features, labels = _xor_data()
        a = DecisionTreeClassifier(seed=3, max_features=1).fit(features, labels)
        b = DecisionTreeClassifier(seed=3, max_features=1).fit(features, labels)
        probe = np.array([[0.0, 1.0], [1.0, 1.0]])
        assert a.predict(probe).tolist() == b.predict(probe).tolist()


class TestForest:
    def test_learns_xor(self):
        features, labels = _xor_data()
        forest = RandomForestClassifier(n_trees=5, seed=1).fit(features, labels)
        assert accuracy(forest.predict(features), labels) > 0.95

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ModelNotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_tree_count(self):
        features, labels = _xor_data(100)
        forest = RandomForestClassifier(n_trees=3).fit(features, labels)
        assert len(forest.trees) == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(ValueError):
            RandomForestClassifier(max_features="log2")

    def test_deterministic_given_seed(self):
        features, labels = _xor_data()
        a = RandomForestClassifier(n_trees=4, seed=9).fit(features, labels)
        b = RandomForestClassifier(n_trees=4, seed=9).fit(features, labels)
        probe = np.random.default_rng(0).uniform(0, 1, size=(20, 2))
        assert a.predict(probe).tolist() == b.predict(probe).tolist()


class TestMetrics:
    def test_accuracy_basic(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_weighted(self):
        value = accuracy(
            np.array([1, 0]), np.array([1, 1]), sample_weight=np.array([3.0, 1.0])
        )
        assert value == pytest.approx(0.75)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_majority_class_accuracy(self):
        assert majority_class_accuracy(np.array([0, 0, 1])) == pytest.approx(2 / 3)

    def test_majority_class_weighted(self):
        value = majority_class_accuracy(
            np.array([0, 1]), sample_weight=np.array([1.0, 3.0])
        )
        assert value == pytest.approx(0.75)


class TestPermutationImportance:
    def test_informative_feature_ranks_first(self):
        rng = np.random.default_rng(0)
        signal = rng.integers(0, 2, size=500).astype(float)
        noise = rng.uniform(0, 1, size=500)
        features = np.column_stack([noise, signal])
        labels = signal.astype(int)
        forest = RandomForestClassifier(n_trees=5, seed=0).fit(features, labels)
        ranked = permutation_importance(
            forest, features, labels, ["noise", "signal"],
            rng=np.random.default_rng(1),
        )
        assert ranked[0].name == "signal"
        assert ranked[0].importance > ranked[1].importance

    def test_constant_feature_zero_importance(self):
        features = np.column_stack([np.ones(100), np.arange(100.0)])
        labels = (np.arange(100) > 50).astype(int)
        tree = DecisionTreeClassifier().fit(features, labels)
        ranked = permutation_importance(
            tree, features, labels, ["const", "ramp"],
            rng=np.random.default_rng(0),
        )
        by_name = {imp.name: imp.importance for imp in ranked}
        assert by_name["const"] == 0.0
        assert by_name["ramp"] > 0.0

    def test_importances_never_negative(self):
        features, labels = _xor_data(100)
        forest = RandomForestClassifier(n_trees=3, seed=2).fit(features, labels)
        ranked = permutation_importance(
            forest, features, labels, ["a", "b"], rng=np.random.default_rng(0)
        )
        assert all(imp.importance >= 0.0 for imp in ranked)
