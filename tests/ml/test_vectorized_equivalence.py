"""Vectorized ML fast paths agree exactly with their golden references.

The flattened-tree / forest-arena prediction and the in-place
permutation importance are pure optimisations: under every seed and
shape they must reproduce the recursive per-row implementations
bit for bit. Hypothesis drives the shapes and seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelNotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.permutation import (
    permutation_importance,
    permutation_importance_reference,
)
from repro.ml.tree import DecisionTreeClassifier, FlatTree


def _dataset(seed: int, rows: int, cols: int, classes: int):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(rows, cols))
    # Mix some low-cardinality columns in: they produce the exact
    # threshold ties where a sloppy vectorisation would diverge.
    for index in range(0, cols, 3):
        features[:, index] = rng.integers(0, 4, size=rows)
    labels = rng.integers(0, classes, size=rows)
    weights = rng.integers(1, 500, size=rows).astype(np.float64)
    return features, labels, weights


class TestTreeEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(5, 120),
        cols=st.integers(1, 12),
        classes=st.integers(2, 5),
        depth=st.integers(1, 12),
        min_leaf=st.integers(1, 4),
    )
    def test_flat_predict_matches_recursive(
        self, seed, rows, cols, classes, depth, min_leaf
    ):
        features, labels, weights = _dataset(seed, rows, cols, classes)
        tree = DecisionTreeClassifier(
            max_depth=depth, min_samples_leaf=min_leaf, seed=seed
        )
        tree.fit(features, labels, weights)
        assert np.array_equal(
            tree.predict(features), tree.predict_reference(features)
        )
        # Out-of-sample rows too, not just the training matrix.
        fresh = np.random.default_rng(seed + 1).normal(size=(50, cols))
        assert np.array_equal(tree.predict(fresh), tree.predict_reference(fresh))

    def test_flat_tree_layout_invariants(self):
        features, labels, weights = _dataset(0, 80, 6, 3)
        tree = DecisionTreeClassifier(max_depth=8, seed=0)
        tree.fit(features, labels, weights)
        flat = tree.flat
        assert isinstance(flat, FlatTree)
        leaves = flat.feature < 0
        inner = ~leaves
        size = flat.feature.size
        # Inner nodes point at valid children; leaf children are unused.
        assert np.all(flat.left[inner] < size)
        assert np.all(flat.right[inner] < size)
        assert np.all(flat.prediction[leaves] >= 0)
        assert flat.depth >= 1


class TestForestEquivalence:
    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(10, 100),
        cols=st.integers(2, 10),
        classes=st.integers(2, 4),
        trees=st.integers(1, 8),
    )
    def test_arena_predict_matches_per_tree(self, seed, rows, cols, classes, trees):
        features, labels, weights = _dataset(seed, rows, cols, classes)
        forest = RandomForestClassifier(n_trees=trees, max_depth=10, seed=seed)
        forest.fit(features, labels, weights)
        assert np.array_equal(
            forest.predict(features), forest.predict_reference(features)
        )
        fresh = np.random.default_rng(seed + 1).normal(size=(37, cols))
        assert np.array_equal(
            forest.predict(fresh), forest.predict_reference(fresh)
        )

    def test_unfitted_forest_raises_on_both_paths(self):
        forest = RandomForestClassifier(n_trees=2)
        with pytest.raises(ModelNotFittedError):
            forest.predict(np.zeros((1, 2)))
        with pytest.raises(ModelNotFittedError):
            forest.predict_reference(np.zeros((1, 2)))


class TestPermutationImportanceEquivalence:
    @settings(deadline=None, max_examples=10)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(10, 80),
        cols=st.integers(1, 8),
    )
    def test_in_place_matches_copying_reference(self, seed, rows, cols):
        features, labels, weights = _dataset(seed, rows, cols, 3)
        # A constant column exercises the skip path on both sides.
        if cols >= 2:
            features[:, 1] = 7.0
        names = [f"f{index}" for index in range(cols)]
        forest = RandomForestClassifier(n_trees=3, max_depth=8, seed=seed)
        forest.fit(features, labels, weights)
        fast = permutation_importance(
            forest, features, labels, names,
            rng=np.random.default_rng(seed), repeats=2, sample_weight=weights,
        )
        reference = permutation_importance_reference(
            forest, features, labels, names,
            rng=np.random.default_rng(seed), repeats=2, sample_weight=weights,
        )
        assert fast == reference

    def test_caller_matrix_is_never_mutated(self):
        features, labels, weights = _dataset(3, 60, 5, 3)
        names = [f"f{index}" for index in range(5)]
        forest = RandomForestClassifier(n_trees=3, max_depth=8, seed=3)
        forest.fit(features, labels, weights)
        before = features.copy()
        permutation_importance(
            forest, features, labels, names,
            rng=np.random.default_rng(0), repeats=3, sample_weight=weights,
        )
        assert np.array_equal(features, before)

    def test_same_rng_seed_is_deterministic(self):
        features, labels, weights = _dataset(9, 70, 6, 3)
        names = [f"f{index}" for index in range(6)]
        forest = RandomForestClassifier(n_trees=4, max_depth=10, seed=9)
        forest.fit(features, labels, weights)
        runs = [
            permutation_importance(
                forest, features, labels, names,
                rng=np.random.default_rng(11), repeats=3, sample_weight=weights,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
