"""Learning-quality tests: the forest on structured problems."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy, majority_class_accuracy
from repro.ml.permutation import permutation_importance
from repro.ml.tree import DecisionTreeClassifier


def staircase(n=600, seed=0):
    """y = which of four bands x0 falls into; x1 is pure noise."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0, 4, size=n)
    x1 = rng.uniform(0, 4, size=n)
    labels = x0.astype(int)
    return np.column_stack([x0, x1]), labels


def interaction(n=800, seed=0):
    """y = (a > 0.5) XOR (b > 0.5) with two noise columns."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(0, 1, size=(n, 4))
    labels = (
        (features[:, 0] > 0.5).astype(int) ^ (features[:, 1] > 0.5).astype(int)
    )
    return features, labels


class TestGeneralization:
    def test_staircase_heldout_accuracy(self):
        features, labels = staircase(seed=1)
        test_features, test_labels = staircase(seed=2)
        forest = RandomForestClassifier(n_trees=7, seed=0).fit(features, labels)
        score = accuracy(forest.predict(test_features), test_labels)
        assert score > 0.9

    def test_interaction_beats_majority(self):
        features, labels = interaction(seed=1)
        test_features, test_labels = interaction(seed=2)
        forest = RandomForestClassifier(n_trees=9, max_depth=8, seed=0).fit(
            features, labels
        )
        score = accuracy(forest.predict(test_features), test_labels)
        assert score > majority_class_accuracy(test_labels) + 0.2

    def test_forest_at_least_matches_single_tree_on_noise(self):
        features, labels = interaction(seed=3)
        test_features, test_labels = interaction(seed=4)
        tree = DecisionTreeClassifier(max_depth=8, seed=0).fit(features, labels)
        forest = RandomForestClassifier(n_trees=9, max_depth=8, seed=0).fit(
            features, labels
        )
        tree_score = accuracy(tree.predict(test_features), test_labels)
        forest_score = accuracy(forest.predict(test_features), test_labels)
        assert forest_score >= tree_score - 0.05


class TestImportanceQuality:
    def test_interaction_features_both_rank_above_noise(self):
        features, labels = interaction(seed=5)
        forest = RandomForestClassifier(n_trees=9, max_depth=8, seed=0).fit(
            features, labels
        )
        ranked = permutation_importance(
            forest, features, labels, ["a", "b", "n1", "n2"],
            rng=np.random.default_rng(0), repeats=3,
        )
        top_two = {imp.name for imp in ranked[:2]}
        assert top_two == {"a", "b"}

    def test_importance_of_duplicated_feature_is_shared(self):
        # Two identical copies of the signal: permuting one still leaves
        # the other, so neither can be *fully* important — but both must
        # outrank pure noise for a forest that splits on each sometimes.
        rng = np.random.default_rng(7)
        signal = rng.integers(0, 2, size=600).astype(float)
        noise = rng.uniform(size=600)
        features = np.column_stack([signal, signal, noise])
        forest = RandomForestClassifier(n_trees=9, seed=0).fit(
            features, signal.astype(int)
        )
        ranked = permutation_importance(
            forest, features, signal.astype(int), ["s1", "s2", "noise"],
            rng=np.random.default_rng(1), repeats=3,
        )
        by_name = {imp.name: imp.importance for imp in ranked}
        assert by_name["noise"] == pytest.approx(0.0, abs=0.02)
