"""Unit tests for Fig. 6 result helpers with a synthetic curve."""

import pytest

from repro.analysis.fig6_table_size import Fig6Result, PAPER_SCALE_FACTOR
from repro.memo.naive import CoveragePoint
from repro.units import TYPICAL_MEMORY_BYTES


class _FakeTable:
    def __init__(self, curve):
        self._curve = curve

    @property
    def total_bytes(self):
        return self._curve[-1].table_bytes_with_outputs

    @property
    def coverage(self):
        return self._curve[-1].coverage

    def bytes_needed_for_coverage(self, coverage, with_outputs=True):
        for point in self._curve:
            if point.coverage >= coverage:
                return (point.table_bytes_with_outputs if with_outputs
                        else point.table_bytes_input_only)
        raise ValueError("unreached")


def _point(events, input_bytes, total_bytes, coverage):
    return CoveragePoint(
        events_seen=events,
        table_bytes_input_only=input_bytes,
        table_bytes_with_outputs=total_bytes,
        coverage=coverage,
    )


@pytest.fixture()
def result():
    curve = [
        _point(1, 1_000, 1_200, 0.0),
        _point(100, 2_000_000, 2_400_000, 0.005),
        _point(500, 10_000_000, 12_000_000, 0.02),
    ]
    return Fig6Result(game_name="toy", table=_FakeTable(curve), curve=curve)


class TestFig6Helpers:
    def test_final_accessors(self, result):
        assert result.final_bytes == 12_000_000
        assert result.final_coverage == 0.02

    def test_bytes_at_coverage(self, result):
        assert result.bytes_at_coverage(0.004) == 2_400_000
        assert result.bytes_at_coverage(0.5) is None

    def test_projection_scales_linearly(self, result):
        point = result.curve[1]
        assert result.paper_scale_projection(point) == \
            point.table_bytes_with_outputs * PAPER_SCALE_FACTOR

    def test_memory_crossing_found(self, result):
        crossing = result.exceeds_memory_at()
        assert crossing is not None
        # Point 1 projects to ~1.9 GB (below memory); point 2 to ~9.6 GB.
        assert result.paper_scale_projection(result.curve[1]) < TYPICAL_MEMORY_BYTES
        assert result.paper_scale_projection(result.curve[2]) > TYPICAL_MEMORY_BYTES
        assert crossing == pytest.approx(0.02)

    def test_sdcard_crossing_may_not_exist(self, result):
        assert result.exceeds_sdcard_at() is None or \
            result.exceeds_sdcard_at() <= 0.02

    def test_renders(self, result):
        assert "paper-scale" in result.to_text()
