"""Unit tests for analysis result objects using synthetic inputs."""

import pytest

from repro.analysis.fig2_energy_breakdown import Fig2Result, GameBreakdown
from repro.analysis.fig3_battery_drain import DrainRow, Fig3Result
from repro.analysis.fig4_useless_events import Fig4Result, UselessRow
from repro.analysis.fig11_energy_benefits import Fig11Result, GameComparison
from repro.analysis.fig12_continuous_learning import Fig12Result
from repro.core.learning import EpochResult
from repro.schemes.base import SchemeRun
from repro.soc.component import ComponentGroup
from repro.soc.energy import EnergyMeter
from repro.soc.soc import snapdragon_821


def scheme_run(name, joules, coverage=0.5, lookup=0.0):
    meter = EnergyMeter()
    meter.charge("cpu", ComponentGroup.CPU, joules - lookup)
    if lookup:
        meter.charge("cpu", ComponentGroup.CPU, lookup, tag="lookup")
    return SchemeRun(
        scheme_name=name,
        game_name="toy",
        seed=1,
        duration_s=10.0,
        report=meter.report(),
        soc=snapdragon_821(),
        coverage=coverage,
        hit_rate=coverage,
    )


class TestSchemeRunMath:
    def test_savings(self):
        base = scheme_run("baseline", 100.0)
        snip = scheme_run("snip", 70.0)
        assert snip.savings_vs(base) == pytest.approx(0.30)

    def test_lookup_overhead_fraction(self):
        run = scheme_run("snip", 100.0, lookup=3.0)
        assert run.lookup_overhead_fraction == pytest.approx(0.03)

    def test_average_watts(self):
        assert scheme_run("x", 50.0).average_watts == pytest.approx(5.0)


class TestGameComparison:
    @pytest.fixture()
    def comparison(self):
        base = scheme_run("baseline", 100.0)
        return GameComparison(
            game_name="toy",
            baseline=base,
            runs={
                "max_cpu": scheme_run("max_cpu", 95.0, coverage=0.1),
                "max_ip": scheme_run("max_ip", 93.0, coverage=0.08),
                "snip": scheme_run("snip", 70.0, coverage=0.5, lookup=2.0),
                "no_overheads": scheme_run("no_overheads", 68.0, coverage=0.5),
            },
        )

    def test_savings_accessor(self, comparison):
        assert comparison.savings("snip") == pytest.approx(0.30)

    def test_overhead_is_gap_to_free_lookups(self, comparison):
        assert comparison.snip_overhead_fraction == pytest.approx(0.02)

    def test_result_averages(self, comparison):
        result = Fig11Result(comparisons=[comparison], compared_bytes={})
        assert result.average_savings("snip") == pytest.approx(0.30)
        assert result.average_coverage("max_cpu") == pytest.approx(0.1)
        assert "toy" in result.by_game()


class TestFig2Math:
    def test_sensors_plus_memory(self):
        item = GameBreakdown("toy", cpu=0.5, ip=0.4, memory=0.06, sensor=0.04)
        assert item.sensors_plus_memory == pytest.approx(0.10)
        result = Fig2Result(breakdowns=[item])
        assert result.by_game()["toy"] is item


class TestFig3Math:
    def test_speedup_vs_idle(self):
        result = Fig3Result(
            idle_hours=20.0,
            rows=[DrainRow("light", 1.0, 10.0), DrainRow("heavy", 4.0, 2.5)],
        )
        assert result.drain_speedup_vs_idle == pytest.approx(8.0)


class TestFig4Math:
    def test_max_useless_game(self):
        result = Fig4Result(rows=[
            UselessRow("a", 0.2, 0.1, 100),
            UselessRow("b", 0.4, 0.3, 100),
        ])
        assert result.max_useless_game == "b"


class TestFig12Math:
    def _epoch(self, epoch, error, confident=False):
        return EpochResult(
            epoch=epoch, training_events=10 * (epoch + 1), table_entries=5,
            hit_fraction=0.5, error_fraction=error, confident=confident,
        )

    def test_error_endpoints(self):
        result = Fig12Result("toy", [
            self._epoch(0, 0.4), self._epoch(1, 0.05), self._epoch(2, 0.0, True),
        ])
        assert result.initial_error == pytest.approx(0.4)
        assert result.final_error == 0.0
        assert result.converged_epoch == 2

    def test_no_convergence(self):
        result = Fig12Result("toy", [self._epoch(0, 0.4)])
        assert result.converged_epoch is None
