"""Tests for the Out.Temp UX-impact estimate."""

import pytest

from repro.analysis.ux_impact import (
    REACTION_SECONDS,
    estimate_ux_impact,
    render_ux_table,
)


class TestUxImpact:
    def test_sixty_hz_glitches_invisible(self):
        # The paper's core argument: <16 ms of wrong tile vs ~250 ms of
        # reaction time.
        estimate = estimate_ux_impact("candy_crush", temp_error_rate=0.01)
        assert not estimate.perceivable
        assert estimate.glitch_seconds_visible < REACTION_SECONDS

    def test_static_surface_glitches_are_visible(self):
        estimate = estimate_ux_impact(
            "menu", temp_error_rate=0.01, refresh_rate_hz=0.0,
            events_per_second=1.0,
        )
        assert estimate.perceivable
        assert estimate.perceived_glitches_per_minute == pytest.approx(0.6)

    def test_low_error_rate_means_vanishing_perception(self):
        estimate = estimate_ux_impact("ab_evolution", temp_error_rate=0.01)
        # The streak of 15 consecutive glitched frames needed to fill a
        # reaction window is astronomically unlikely at 1% error.
        assert estimate.perceived_glitches_per_minute < 1e-20

    def test_high_error_rate_becomes_noticeable(self):
        bad = estimate_ux_impact("broken", temp_error_rate=0.9)
        good = estimate_ux_impact("fine", temp_error_rate=0.01)
        assert bad.perceived_glitches_per_minute > \
            good.perceived_glitches_per_minute

    def test_glitch_rate_scales_with_events(self):
        slow = estimate_ux_impact("g", 0.1, events_per_second=10.0)
        fast = estimate_ux_impact("g", 0.1, events_per_second=100.0)
        assert fast.glitches_per_minute == pytest.approx(
            10 * slow.glitches_per_minute
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_ux_impact("g", temp_error_rate=1.5)
        with pytest.raises(ValueError):
            estimate_ux_impact("g", 0.1, events_per_second=-1.0)

    def test_render(self):
        table = render_ux_table([
            estimate_ux_impact("candy_crush", 0.01),
            estimate_ux_impact("menu", 0.01, refresh_rate_hz=0.0),
        ])
        assert "perceivable" in table
        assert "candy_crush" in table
