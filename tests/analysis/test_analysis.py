"""Tests for the experiment drivers and report rendering."""

import pytest

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.fig2_energy_breakdown import run_fig2
from repro.analysis.fig3_battery_drain import idle_battery_hours, run_fig3
from repro.analysis.fig4_useless_events import run_fig4
from repro.analysis.fig6_table_size import run_fig6
from repro.analysis.fig7_io_characteristics import run_fig7
from repro.analysis.fig8_event_only import run_fig8
from repro.analysis.report import pct, render_table
from repro.games.registry import GAME_NAMES

SHORT = 20.0


class TestReport:
    def test_render_basic(self):
        text = render_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_pct(self):
        assert pct(0.1234) == "12.3%"
        assert pct(0.1234, 2) == "12.34%"

    def test_doctest_shape(self):
        text = render_table(["a", "b"], [[1, 2]])
        assert text == "a | b\n--+--\n1 | 2"


class TestRegistry:
    def test_all_figures_registered(self):
        paper = {
            "fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
            "fig9", "fig11", "fig12", "table1",
        }
        extensions = {"summary", "components", "quantization"}
        assert set(EXPERIMENTS) == paper | extensions

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1", duration_s=10.0)
        assert result.whole_chain_fraction == 1.0


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(duration_s=SHORT)


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(duration_s=SHORT)


@pytest.fixture(scope="module")
def fig4():
    # Fig. 4 statistics need enough gesture mass to stabilise.
    return run_fig4(duration_s=30.0)


class TestFig2:
    def test_covers_all_games(self, fig2):
        assert [item.game_name for item in fig2.breakdowns] == list(GAME_NAMES)

    def test_sensors_plus_memory_small(self, fig2):
        # Paper: sensors + memory stay under ~10%.
        assert all(item.sensors_plus_memory < 0.12 for item in fig2.breakdowns)

    def test_cpu_and_ips_split_the_rest(self, fig2):
        for item in fig2.breakdowns:
            assert 0.30 < item.cpu < 0.65
            assert 0.30 < item.ip < 0.65

    def test_fractions_sum_to_one(self, fig2):
        for item in fig2.breakdowns:
            total = item.cpu + item.ip + item.memory + item.sensor
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_renders(self, fig2):
        assert "colorphun" in fig2.to_text()


class TestFig3:
    def test_idle_near_twenty_hours(self, fig3):
        assert 15.0 < fig3.idle_hours < 25.0
        assert idle_battery_hours() == pytest.approx(fig3.idle_hours, rel=0.05)

    def test_lightest_game_drains_hours_band(self, fig3):
        lightest = fig3.by_game()["colorphun"]
        assert 7.0 < lightest.battery_hours < 11.0

    def test_heaviest_game_near_three_hours(self, fig3):
        heaviest = fig3.by_game()["race_kings"]
        assert 2.5 < heaviest.battery_hours < 4.5

    def test_drain_monotone_with_complexity(self, fig3):
        hours = [row.battery_hours for row in fig3.rows]
        assert hours == sorted(hours, reverse=True)

    def test_heavy_game_drains_much_faster_than_idle(self, fig3):
        # Paper: ~6x faster than the idle phone.
        assert 4.0 < fig3.drain_speedup_vs_idle < 9.0

    def test_renders(self, fig3):
        assert "idle phone" in fig3.to_text()


class TestFig4:
    def test_useless_band_matches_paper(self, fig4):
        # Paper: 17% to 43% across the seven games.
        for row in fig4.rows:
            assert 0.10 < row.useless_fraction < 0.50

    def test_ab_evolution_is_the_worst(self, fig4):
        # Paper: AB Evolution peaks at 43% (catapult at max stretch).
        ab = fig4.by_game()["ab_evolution"].useless_fraction
        assert ab == max(row.useless_fraction for row in fig4.rows)

    def test_waste_follows_uselessness(self, fig4):
        assert all(row.wasted_energy_fraction > 0 for row in fig4.rows)

    def test_renders(self, fig4):
        assert "% useless events" in fig4.to_text()


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6(duration_s=60.0)

    def test_table_is_megabytes_for_few_percent(self, fig6):
        assert fig6.final_bytes > 5_000_000
        assert fig6.final_coverage < 0.10

    def test_projection_crosses_memory_capacity(self, fig6):
        # Paper: the naive table exceeds phone memory almost immediately.
        crossing = fig6.exceeds_memory_at()
        assert crossing is not None and crossing < 0.05

    def test_curve_in_result_matches_table(self, fig6):
        assert fig6.curve[-1].table_bytes_with_outputs == fig6.final_bytes

    def test_renders(self, fig6):
        assert "paper-scale" in fig6.to_text()


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_fig7(duration_s=60.0)

    def test_event_inputs_small_and_ubiquitous(self, fig7):
        inputs = fig7.inputs["in_event"]
        assert inputs.occurrence_fraction > 0.95
        assert 2 <= inputs.min_bytes <= inputs.max_bytes <= 640

    def test_history_inputs_spread_widely(self, fig7):
        # Paper: ~600 B to ~119 kB.
        history = fig7.inputs["in_history"]
        assert history.max_bytes > 50 * history.min_bytes

    def test_extern_inputs_rare_but_huge(self, fig7):
        extern = fig7.inputs["in_extern"]
        assert extern.occurrence_fraction < 0.01
        assert extern.max_bytes >= 1_000_000

    def test_temp_outputs_small(self, fig7):
        temp = fig7.outputs["out_temp"]
        assert temp.max_bytes <= 150  # few tiles, each < 64 B

    def test_renders(self, fig7):
        assert "(a) inputs" in fig7.to_text()


class TestFig8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_fig8(duration_s=90.0)

    def test_table_much_smaller_than_naive(self, fig8):
        assert fig8.size_ratio < 0.05

    def test_coverage_with_errors(self, fig8):
        assert 0.05 < fig8.stats.coverage < 0.60
        assert fig8.stats.erroneous_fraction > 0.02

    def test_fatal_errors_dominate(self, fig8):
        # Paper: a majority of wrong short-circuits corrupt state.
        assert fig8.state_error_share > 0.5
        assert fig8.state_error_share + fig8.temp_error_share == pytest.approx(1.0)

    def test_renders(self, fig8):
        assert "erroneous outputs" in fig8.to_text()
