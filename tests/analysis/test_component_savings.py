"""Tests for the per-component-group savings driver."""

import pytest

from repro.analysis.component_savings import ComponentSavings
from repro.soc.component import ComponentGroup


class TestComponentSavingsMath:
    @pytest.fixture()
    def savings(self):
        return ComponentSavings(
            game_name="toy",
            baseline_by_group={
                ComponentGroup.CPU: 50.0,
                ComponentGroup.IP: 40.0,
                ComponentGroup.MEMORY: 8.0,
                ComponentGroup.SENSOR: 2.0,
            },
            snip_by_group={
                ComponentGroup.CPU: 30.0,
                ComponentGroup.IP: 30.0,
                ComponentGroup.MEMORY: 7.0,
                ComponentGroup.SENSOR: 2.0,
            },
        )

    def test_saved_joules(self, savings):
        assert savings.saved_joules(ComponentGroup.CPU) == pytest.approx(20.0)
        assert savings.saved_joules(ComponentGroup.SENSOR) == 0.0

    def test_savings_fraction(self, savings):
        assert savings.savings_fraction(ComponentGroup.CPU) == pytest.approx(0.4)
        assert savings.savings_fraction(ComponentGroup.IP) == pytest.approx(0.25)

    def test_total(self, savings):
        assert savings.total_savings_fraction == pytest.approx(31.0 / 100.0)

    def test_empty_group_guard(self, savings):
        savings.baseline_by_group.pop(ComponentGroup.SENSOR)
        savings.snip_by_group.pop(ComponentGroup.SENSOR)
        assert savings.savings_fraction(ComponentGroup.SENSOR) == 0.0

    def test_renders_total_row(self, savings):
        text = savings.to_text()
        assert "total" in text
        assert "cpu" in text
