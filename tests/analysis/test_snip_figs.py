"""Tests for the SNIP evaluation figures (9, 11, 12)."""

import pytest

from repro.analysis.fig9_pfi_trimming import run_fig9
from repro.analysis.fig11_energy_benefits import run_fig11
from repro.analysis.fig12_continuous_learning import run_fig12
from repro.games.base import InputCategory


class TestFig9:
    @pytest.fixture(scope="class")
    def fig9(self):
        return run_fig9(seeds=(1, 2), duration_s=30.0)

    def test_starts_at_full_accuracy(self, fig9):
        assert fig9.points[0].error == pytest.approx(0.0, abs=1e-9)

    def test_necessary_inputs_are_a_sliver(self, fig9):
        # Paper: ~0.2% of the input record suffices.
        assert fig9.necessary_fraction < 0.02
        assert fig9.necessary_bytes < 4096

    def test_error_explodes_once_necessary_fields_go(self, fig9):
        # The deep end of the walk (almost nothing kept) is far worse
        # than the plateau around the selection's byte budget.
        deep_end = fig9.points[-1].error
        assert deep_end > 0.25

    def test_event_category_survives(self, fig9):
        # Fig. 9's right-most bars are In.Event fields.
        split = fig9.necessary_category_bytes
        assert split[InputCategory.EVENT] > 0

    def test_error_at_bytes_lookup(self, fig9):
        assert fig9.error_at_bytes(fig9.points[0].bytes_kept) is not None
        assert fig9.error_at_bytes(-1) is None

    def test_renders(self, fig9):
        text = fig9.to_text()
        assert "bytes kept" in text and "necessary inputs" in text


class TestFig11:
    @pytest.fixture(scope="class")
    def fig11(self):
        # Three representative games keep the test affordable: the
        # lightest, the paper's flagship, and the heaviest.
        return run_fig11(
            games=("colorphun", "ab_evolution", "race_kings"),
            seed=7,
            duration_s=40.0,
        )

    def test_snip_savings_in_band(self, fig11):
        for item in fig11.comparisons:
            assert 0.15 < item.savings("snip") < 0.45

    def test_partial_schemes_stay_small(self, fig11):
        for item in fig11.comparisons:
            assert item.savings("max_cpu") < 0.16
            assert item.savings("max_ip") < 0.16

    def test_snip_beats_partial_schemes_everywhere(self, fig11):
        for item in fig11.comparisons:
            assert item.savings("snip") > item.savings("max_cpu")
            assert item.savings("snip") > item.savings("max_ip")

    def test_coverage_band(self, fig11):
        for item in fig11.comparisons:
            assert 0.30 < item.coverage("snip") < 0.75

    def test_no_overheads_is_the_headroom(self, fig11):
        for item in fig11.comparisons:
            assert item.savings("no_overheads") >= item.savings("snip") - 1e-6
            assert item.snip_overhead_fraction < 0.08

    def test_battery_hours_extended(self, fig11):
        assert fig11.average_extra_battery_hours > 0.5

    def test_race_kings_least_coverable(self, fig11):
        by_game = fig11.by_game()
        assert by_game["race_kings"].coverage("snip") == min(
            item.coverage("snip") for item in fig11.comparisons
        )

    def test_renders(self, fig11):
        text = fig11.to_text()
        assert "(a) energy benefits" in text
        assert "(c) SNIP overheads" in text


class TestFig12:
    @pytest.fixture(scope="class")
    def fig12(self):
        return run_fig12(
            game_name="colorphun",
            epochs=4,
            session_duration_s=15.0,
            initial_events=40,
            ramp=2.5,
        )

    def test_initial_error_heavy(self, fig12):
        # Paper: ~40% erroneous output fields on the starved profile.
        assert fig12.initial_error > 0.10

    def test_final_error_negligible(self, fig12):
        assert fig12.final_error < 0.01

    def test_convergence_epoch_found(self, fig12):
        assert fig12.converged_epoch is not None

    def test_renders(self, fig12):
        assert "% erroneous fields" in fig12.to_text()

    def test_every_cycle_has_a_registry_decision(self, fig12):
        assert fig12.decisions is not None
        assert [d.epoch for d in fig12.decisions] == [0, 1, 2, 3]

    def test_starved_cycle_is_rejected_not_shipped(self, fig12):
        # The data-starved first table mispredicts far below the
        # accuracy floor, so the promotion pass must refuse to ship it.
        first = fig12.decisions[0]
        assert not first.shipped
        assert first.reasons

    def test_recovered_cycle_ships(self, fig12):
        assert fig12.first_shipped_epoch is not None
        assert fig12.first_shipped_epoch > 0
        assert "shipped" in fig12.to_text()

    def test_supplied_registry_ends_with_a_champion(self, tmp_path):
        from repro.core.config import SnipConfig
        from repro.registry import PackageRegistry

        registry = PackageRegistry(tmp_path / "registry")
        result = run_fig12(
            game_name="colorphun",
            epochs=3,
            session_duration_s=15.0,
            initial_events=40,
            ramp=2.5,
            registry=registry,
        )
        state = registry.load_state("colorphun", SnipConfig())
        assert len(state.entries) == len(
            {d.version for d in result.decisions}
        )
        shipped = [d for d in result.decisions if d.shipped]
        if shipped:
            assert state.champion_version == shipped[-1].version
        else:
            assert state.champion_version is None
