"""Tests for the quantization ablation driver."""

import pytest

from repro.analysis.ablation_quantization import (
    _requantise,
    run_quantization_ablation,
)


class TestRequantise:
    def test_ints_floor_to_grid(self):
        assert _requantise(37, 8) == 32
        assert _requantise(37, 1) == 37

    def test_floats_round_to_grid(self):
        assert _requantise(7.6, 2) == 8.0

    def test_bools_and_strings_untouched(self):
        assert _requantise(True, 8) is True
        assert _requantise("up", 8) == "up"


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_quantization_ablation(duration_s=30.0, factors=(1, 4, 16))

    def test_one_point_per_factor(self, sweep):
        assert [point.factor for point in sweep.points] == [1, 4, 16]

    def test_coarser_means_fewer_keys(self, sweep):
        keys = [point.distinct_keys for point in sweep.points]
        assert keys == sorted(keys, reverse=True)

    def test_coarser_means_more_repeats(self, sweep):
        repeats = [point.repeat_fraction for point in sweep.points]
        assert repeats == sorted(repeats)

    def test_fractions_bounded(self, sweep):
        for point in sweep.points:
            assert 0.0 <= point.ambiguous_fraction <= point.repeat_fraction <= 1.0

    def test_renders(self, sweep):
        assert "coarsening" in sweep.to_text()
