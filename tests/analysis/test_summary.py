"""Tests for the one-shot reproduction summary."""

import pytest

from repro.analysis.summary import run_summary


class TestSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_summary(duration_s=30.0)

    def test_all_quick_checks_hold(self, summary):
        failing = [claim for claim, _, _, holds in summary.checks() if not holds]
        assert not failing, f"deviating checks: {failing}"

    def test_eight_checks(self, summary):
        assert len(summary.checks()) == 8

    def test_all_hold_flag(self, summary):
        assert summary.all_hold

    def test_renders_verdicts(self, summary):
        text = summary.to_text()
        assert "verdict" in text
        assert "OK" in text
