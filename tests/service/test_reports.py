"""Report queue: atomic batches, idempotent replay, loud corruption."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.reports import DeviceReport, ReportBatch, ReportQueue


def report(device_id: int, misses: int = 0) -> DeviceReport:
    return DeviceReport(
        device_id=device_id,
        archetype="flagship",
        cohort="champion",
        sessions=1,
        events=100,
        hits=100 - misses,
        misses=misses,
    )


def test_device_report_roundtrip():
    original = report(3, misses=7)
    assert DeviceReport.from_dict(original.to_dict()) == original
    with pytest.raises(ServiceError, match="malformed device report"):
        DeviceReport.from_dict({"device_id": 1})


def test_batch_roundtrip_and_format_gate():
    batch = ReportBatch(
        sequence=4, producer_cycle=4, reports=(report(0), report(1, 2))
    )
    assert ReportBatch.from_dict(batch.to_dict()) == batch
    bad = batch.to_dict()
    bad["format_version"] = 99
    with pytest.raises(ServiceError, match="unsupported report-batch format"):
        ReportBatch.from_dict(bad)


def test_enqueue_load_ack_lifecycle(tmp_path):
    queue = ReportQueue(tmp_path / "queue")
    queue.enqueue([report(0, 5)], producer_cycle=0, sequence=0)
    queue.enqueue([report(1)], producer_cycle=1, sequence=1)
    assert queue.pending() == [0, 1]
    assert queue.depth() == 2
    loaded = queue.load(0)
    assert loaded.producer_cycle == 0
    assert loaded.reports[0].misses == 5
    queue.ack(0)
    assert queue.pending() == [1]
    queue.ack(0)  # already gone: no-op, resume re-acks freely
    assert queue.pending() == [1]


def test_replayed_enqueue_overwrites_with_identical_bytes(tmp_path):
    queue = ReportQueue(tmp_path / "queue")
    queue.enqueue([report(0, 5)], producer_cycle=2, sequence=2)
    first = queue.path(2).read_bytes()
    # A crash-replayed ship stage re-enqueues the same sequence; the
    # producer owns the number, so this is an overwrite, not a dup.
    queue.enqueue([report(0, 5)], producer_cycle=2, sequence=2)
    assert queue.path(2).read_bytes() == first
    assert queue.pending() == [2]


def test_pending_sorts_and_rejects_stray_files(tmp_path):
    queue = ReportQueue(tmp_path / "queue")
    queue.enqueue([], producer_cycle=10, sequence=10)
    queue.enqueue([], producer_cycle=2, sequence=2)
    assert queue.pending() == [2, 10]
    (queue.root / "batch_oops.json").write_text("{}")
    with pytest.raises(ServiceError, match="stray file"):
        queue.pending()


def test_load_rejects_sequence_mismatch_and_torn_files(tmp_path):
    queue = ReportQueue(tmp_path / "queue")
    batch = queue.enqueue([report(0)], producer_cycle=0, sequence=0)
    # A batch file renamed to the wrong slot must not be trusted.
    queue.path(7).write_bytes(queue.path(0).read_bytes())
    with pytest.raises(ServiceError, match="carries sequence 0"):
        queue.load(7)
    assert batch.sequence == 0
    queue.path(0).write_text("{ torn")
    with pytest.raises(ServiceError, match="unreadable report batch"):
        queue.load(0)
