"""CycleLedger: canonical bytes, dense cycles, record/replay semantics."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.service.ledger import (
    LEDGER_FORMAT_VERSION,
    CycleLedger,
    atomic_write,
    canonical_json,
    canonicalize,
    exclusive_create,
)


def test_canonical_json_sorts_keys_and_ends_with_newline():
    text = canonical_json({"b": 1, "a": [2, 3]})
    assert text == '{\n  "a": [\n    2,\n    3\n  ],\n  "b": 1\n}\n'


def test_canonicalize_normalises_tuples_and_rejects_garbage():
    assert canonicalize({"seeds": (1, 2)}) == {"seeds": [1, 2]}
    with pytest.raises(ServiceError, match="not JSON-serialisable"):
        canonicalize({"bad": object()})


def test_exclusive_create_surfaces_the_loser(tmp_path):
    target = tmp_path / "once.json"
    exclusive_create(target, b"winner")
    with pytest.raises(FileExistsError):
        exclusive_create(target, b"loser")
    assert target.read_bytes() == b"winner"
    # The loser's staging temp must not linger.
    assert list(tmp_path.iterdir()) == [target]


def test_atomic_write_replaces_without_leaving_temps(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write(target, b"one")
    atomic_write(target, b"two")
    assert target.read_bytes() == b"two"
    assert list(tmp_path.iterdir()) == [target]


def test_record_and_replay_roundtrip(tmp_path):
    path = tmp_path / "ledger.json"
    ledger = CycleLedger(path)
    assert ledger.next_index() == 0
    ledger.begin_cycle(0)
    recorded = ledger.record_stage(0, "ingest", {"batches": (), "reports": 0})
    # The returned payload is the canonicalised form the ledger holds.
    assert recorded == {"batches": [], "reports": 0}
    assert ledger.stage(0, "ingest") == recorded
    assert ledger.stage(0, "profile") is None
    ledger.complete_cycle(0)

    # A fresh loader sees the same document, byte for byte.
    reloaded = CycleLedger(path)
    assert reloaded.to_json() == ledger.to_json()
    assert reloaded.completed_count() == 1
    assert reloaded.next_index() == 1


def test_persisted_bytes_are_canonical(tmp_path):
    path = tmp_path / "ledger.json"
    ledger = CycleLedger(path)
    ledger.begin_cycle(0)
    ledger.record_stage(0, "ingest", {"z": 1, "a": 2})
    assert path.read_text() == ledger.to_json()
    assert path.read_text() == canonical_json(ledger.to_dict())


def test_next_index_resumes_the_inflight_cycle(tmp_path):
    ledger = CycleLedger(tmp_path / "ledger.json")
    ledger.begin_cycle(0)
    ledger.complete_cycle(0)
    ledger.begin_cycle(1)  # crash happens mid-cycle 1
    resumed = CycleLedger(tmp_path / "ledger.json")
    assert resumed.next_index() == 1
    assert resumed.completed_count() == 1


def test_begin_and_complete_are_idempotent(tmp_path):
    path = tmp_path / "ledger.json"
    ledger = CycleLedger(path)
    ledger.begin_cycle(0)
    ledger.record_stage(0, "ingest", {"reports": 3})
    before = path.read_bytes()
    assert ledger.begin_cycle(0)["stages"]["ingest"] == {"reports": 3}
    assert path.read_bytes() == before
    ledger.complete_cycle(0)
    after = path.read_bytes()
    ledger.complete_cycle(0)
    assert path.read_bytes() == after


def test_begin_rejects_sparse_indices(tmp_path):
    ledger = CycleLedger(tmp_path / "ledger.json")
    with pytest.raises(ServiceError, match="cannot begin cycle 2"):
        ledger.begin_cycle(2)


def test_record_rejects_completed_and_unknown_cycles(tmp_path):
    ledger = CycleLedger(tmp_path / "ledger.json")
    with pytest.raises(ServiceError, match="never begun"):
        ledger.record_stage(0, "ingest", {})
    ledger.begin_cycle(0)
    ledger.complete_cycle(0)
    with pytest.raises(ServiceError, match="already complete"):
        ledger.record_stage(0, "ship", {})
    with pytest.raises(ServiceError, match="never begun"):
        ledger.complete_cycle(5)


def test_load_rejects_foreign_format_and_sparse_documents(tmp_path):
    path = tmp_path / "ledger.json"
    path.write_text(json.dumps({"format_version": 999, "cycles": []}))
    with pytest.raises(ServiceError, match="format 999"):
        CycleLedger(path)
    path.write_text(
        json.dumps(
            {
                "format_version": LEDGER_FORMAT_VERSION,
                "cycles": [{"index": 1, "complete": True, "stages": {}}],
            }
        )
    )
    with pytest.raises(ServiceError, match="not dense"):
        CycleLedger(path)
    path.write_text("{ torn")
    with pytest.raises(ServiceError, match="unreadable"):
        CycleLedger(path)
