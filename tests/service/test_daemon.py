"""SnipService supervisor: cycle mechanics, planning, and telemetry."""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

from repro.errors import ServiceError
from repro.fleet.telemetry import (
    CYCLE_FINISHED,
    CYCLE_STARTED,
    PEAK_RSS,
    QUEUE_DEPTH,
    STAGE_FINISHED,
    TelemetryBus,
    TelemetryEvent,
)
from repro.registry.promotion import PromotionPolicy
from repro.service import ServiceConfig, SnipService
from repro.service.daemon import (
    MODE_OFFLINE,
    MODE_ROLLOUT,
    MODE_STEADY,
    STAGE_INGEST,
    STAGE_PROFILE,
    STAGE_SHIP,
    STAGES,
    service_progress_printer,
)
from repro.service.reports import DeviceReport, ReportQueue

from tests.service.conftest import make_service


@pytest.fixture(scope="module")
def three_cycles(tmp_path_factory, shared_cache):
    """One uninterrupted 3-cycle daemon shared by the read-only tests."""
    config = ServiceConfig(
        game_name="colorphun",
        devices=6,
        sessions_per_device=1,
        session_duration_s=3.0,
        seed=0,
        shard_size=2,
        base_profile_seeds=(1,),
        profile_duration_s=5.0,
        max_profile_seeds=4,
        seeds_per_cycle=1,
        ungated_cycles=1,
        eval_duration_s=5.0,
    )
    run_dir = tmp_path_factory.mktemp("daemon") / "run"
    service = make_service(
        config, run_dir, shared_cache, telemetry=TelemetryBus()
    )
    result = service.run(cycles=3)
    return service, result


def test_run_completes_every_stage_of_every_cycle(three_cycles):
    service, result = three_cycles
    assert result.cycles_completed == 3
    assert not result.stopped
    assert result.ledger_path == service.run_dir / "ledger.json"
    assert service.ledger.completed_count() == 3
    for index in range(3):
        record = service.ledger.cycle(index)
        assert record["complete"]
        assert sorted(record["stages"]) == sorted(STAGES)


def test_bootstrap_cycle_establishes_a_champion(three_cycles):
    service, _ = three_cycles
    plan = service.ledger.stage(0, "plan")
    ship = service.ledger.stage(0, STAGE_SHIP)
    # No champion exists yet, so cycle 0 promotes offline and ungated.
    assert plan["mode"] == MODE_OFFLINE
    assert plan["ungated"] is True
    assert plan["champion_version_before"] is None
    assert ship["promoted"] is True
    assert ship["champion_version_after"] == 1


def test_champion_lineage_flows_through_the_ledger(three_cycles):
    service, _ = three_cycles
    champion = None
    for index in range(3):
        plan = service.ledger.stage(index, "plan")
        ship = service.ledger.stage(index, STAGE_SHIP)
        assert plan["champion_version_before"] == champion
        champion = ship["champion_version_after"]
        assert champion is not None
        if plan["mode"] == MODE_STEADY:
            assert ship["promoted"] is False
            assert ship["decision"] is None


def test_reports_loop_back_into_the_next_ingest(three_cycles):
    service, _ = three_cycles
    # Cycle 0 starts with an empty queue; each later cycle consumes
    # exactly the batch the previous cycle's fleet enqueued.
    assert service.ledger.stage(0, STAGE_INGEST)["batches"] == []
    for index in (1, 2):
        ingest = service.ledger.stage(index, STAGE_INGEST)
        assert ingest["batches"] == [index - 1]
        assert ingest["reports"] == service.config.devices
        assert ingest["deferred"] == 0
    # The final cycle's batch is produced but never consumed.
    assert service.queue.pending() == [2]


def test_adopted_seeds_grow_the_profile_corpus(three_cycles):
    service, _ = three_cycles
    base = list(service.config.base_profile_seeds)
    assert service.ledger.stage(0, STAGE_PROFILE)["seeds"] == base
    adopted = service.ledger.stage(1, STAGE_INGEST)["adopted"]
    assert len(adopted) == 1  # seeds_per_cycle
    assert adopted[0]["misses"] > 0
    assert adopted[0]["seed"] >= 100_000  # clear of hand-picked seeds
    assert (
        service.ledger.stage(1, STAGE_PROFILE)["seeds"]
        == base + [adopted[0]["seed"]]
    )


def test_ship_records_carry_no_wall_clock(three_cycles):
    service, _ = three_cycles
    text = service.ledger.to_json()
    for key in ("wall_s", "elapsed", "timestamp", "time"):
        assert f'"{key}"' not in text


def test_identical_config_reproduces_identical_ledger_bytes(
    three_cycles, reference_ledger
):
    service, _ = three_cycles
    # Two independent daemons (fresh run dirs, fresh registries) with
    # the same config converge on byte-identical ledgers.
    assert service.ledger.to_json() == reference_ledger


def test_telemetry_narrates_cycles_and_stages(three_cycles):
    service, _ = three_cycles
    kinds = [event.kind for event in service.telemetry.history]
    assert kinds.count(CYCLE_STARTED) == 3
    assert kinds.count(CYCLE_FINISHED) == 3
    assert kinds.count(STAGE_FINISHED) == 3 * len(STAGES)
    assert QUEUE_DEPTH in kinds
    assert PEAK_RSS in kinds
    assert service.telemetry.counters.peak_rss_bytes > 0
    finished = [
        event for event in service.telemetry.history
        if event.kind == CYCLE_FINISHED
    ]
    assert [event.payload["cycle"] for event in finished] == [0, 1, 2]
    assert all(event.payload["wall_s"] >= 0 for event in finished)


def test_progress_printer_renders_lifecycle_lines():
    def event(kind, **payload):
        return TelemetryEvent(
            kind=kind, shard_index=None, payload=payload, elapsed_s=0.0
        )

    out = io.StringIO()
    printer = service_progress_printer(out)
    printer(event(CYCLE_STARTED, cycle=0, queue_depth=2))
    printer(event(STAGE_FINISHED, cycle=0, stage="profile", wall_s=0.25))
    printer(
        event(CYCLE_FINISHED, cycle=0, mode="offline", promoted=True, wall_s=1.0)
    )
    text = out.getvalue()
    assert "cycle 0 started (queue depth 2)" in text
    assert "cycle 0 profile done (0.25s)" in text
    assert "cycle 0 finished (offline, promoted, 1.00s)" in text


def test_backpressure_merges_deep_backlogs(tmp_path, shared_cache, tiny_config):
    config = dataclasses.replace(tiny_config, max_batches_per_cycle=1)
    run_dir = tmp_path / "run"
    # A backlog deeper than one cycle's claim, queued before the daemon
    # starts (sequences far above the daemon's own cycle indices).
    queue = ReportQueue(run_dir / "queue")
    noisy = DeviceReport(
        device_id=99, archetype="budget", cohort="champion",
        sessions=1, events=50, hits=10, misses=40,
    )
    queue.enqueue([noisy], producer_cycle=100, sequence=100)
    queue.enqueue([noisy], producer_cycle=101, sequence=101)

    service = make_service(config, run_dir, shared_cache)
    service.run(cycles=2)
    first = service.ledger.stage(0, STAGE_INGEST)
    assert first["batches"] == [100]
    assert first["deferred"] == 1
    assert first["adopted"][0]["device_id"] == 99
    # Cycle 1 claims the oldest pending batch — its own cycle-0 report
    # — and keeps merging the leftover backlog forward.
    second = service.ledger.stage(1, STAGE_INGEST)
    assert second["batches"] == [0]
    assert second["deferred"] == 1
    assert service.queue.pending() == [1, 101]


def test_rollout_mode_judges_cohorts_and_records_the_verdict(
    tmp_path, shared_cache, tiny_config
):
    config = dataclasses.replace(tiny_config, challenger_fraction=0.5)
    service = make_service(config, tmp_path / "run", shared_cache)
    service.run(cycles=3)
    plans = [service.ledger.stage(index, "plan") for index in range(3)]
    modes = [plan["mode"] for plan in plans]
    assert modes[0] == MODE_OFFLINE  # bootstrap never rolls out
    assert MODE_ROLLOUT in modes[1:]
    rollout = modes.index(MODE_ROLLOUT)
    ship = service.ledger.stage(rollout, STAGE_SHIP)
    decision = ship["decision"]
    assert decision is not None
    assert decision["version"] == plans[rollout]["candidate_version"]
    assert decision["promoted"] == ship["promoted"]
    # The fleet actually split: the spec pinned both cohort digests.
    assert plans[rollout]["candidate_digest"] != ""
    if ship["promoted"]:
        assert ship["champion_version_after"] == plans[rollout]["candidate_version"]
    else:
        assert (
            ship["champion_version_after"]
            == plans[rollout]["champion_version_before"]
        )


def test_run_dir_rejects_a_different_config_or_policy(
    tmp_path, shared_cache, tiny_config
):
    run_dir = tmp_path / "run"
    make_service(tiny_config, run_dir, shared_cache)
    with pytest.raises(ServiceError, match="different service config"):
        make_service(
            dataclasses.replace(tiny_config, seed=1), run_dir, shared_cache
        )
    with pytest.raises(ServiceError, match="different service config"):
        make_service(
            tiny_config, run_dir, shared_cache,
            policy=PromotionPolicy(min_hit_rate=0.5),
        )
    # Same config and policy: reopening is fine (that's resume).
    make_service(tiny_config, run_dir, shared_cache)


def test_run_dir_rejects_foreign_format_and_torn_manifest(
    tmp_path, shared_cache, tiny_config
):
    run_dir = tmp_path / "run"
    service = make_service(tiny_config, run_dir, shared_cache)
    manifest = json.loads(service.manifest_path.read_text())
    manifest["format_version"] = 999
    service.manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(ServiceError, match="format 999"):
        make_service(tiny_config, run_dir, shared_cache)
    service.manifest_path.write_text("{ torn")
    with pytest.raises(ServiceError, match="unreadable service manifest"):
        make_service(tiny_config, run_dir, shared_cache)


@pytest.mark.parametrize(
    "overrides, match",
    [
        ({"devices": 0}, "devices must be positive"),
        ({"session_duration_s": 0.0}, "durations must be positive"),
        ({"eval_duration_s": -1.0}, "eval_duration_s must be positive"),
        ({"base_profile_seeds": ()}, "must not be empty"),
        ({"max_profile_seeds": 0}, "must cover the base corpus"),
        ({"seeds_per_cycle": -1}, "seeds_per_cycle"),
        ({"max_batches_per_cycle": 0}, "max_batches_per_cycle"),
        ({"ungated_cycles": -1}, "ungated_cycles"),
        ({"challenger_fraction": 1.5}, "challenger_fraction"),
    ],
)
def test_config_validation_is_loud(tiny_config, overrides, match):
    with pytest.raises(ServiceError, match=match):
        dataclasses.replace(tiny_config, **overrides)


def test_fingerprint_pins_config_and_policy(tiny_config):
    policy = PromotionPolicy()
    base = tiny_config.fingerprint(policy)
    assert base == tiny_config.fingerprint(PromotionPolicy())
    assert base != dataclasses.replace(tiny_config, seed=1).fingerprint(policy)
    assert base != tiny_config.fingerprint(PromotionPolicy(min_hit_rate=0.9))
