"""Kill the daemon anywhere; the resumed ledger is byte-identical.

The determinism contract for ``repro-snip serve``: the cycle ledger is
a pure function of (config, policy). These tests kill a daemon at
parametrized stage boundaries — and in the middle of a ship fleet —
then resume with a fresh process-equivalent :class:`SnipService` and
compare the finished ledger byte-for-byte against the uninterrupted
reference run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fleet import SerialExecutor
from repro.service import CycleLedger, ServiceConfig
from repro.service.daemon import LEDGER_NAME, MANIFEST_NAME

from tests.service.conftest import make_service


class KilledAt(Exception):
    """The simulated crash (power loss, OOM kill, deploy restart)."""


def killer(kill_cycle: int, kill_stage: str, kill_phase: str):
    """A stage hook that dies at one precise point in the run."""

    def hook(cycle: int, stage: str, phase: str) -> None:
        if (cycle, stage, phase) == (kill_cycle, kill_stage, kill_phase):
            raise KilledAt(f"cycle {cycle} {stage} {phase}")

    return hook


class DyingExecutor(SerialExecutor):
    """Streams ``limit`` shard results, then the process 'dies'."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def stream(self, fn, payloads, telemetry=None, retry_budget=3):
        inner = super().stream(
            fn, payloads, telemetry=telemetry, retry_budget=retry_budget
        )
        for count, item in enumerate(inner):
            if count >= self.limit:
                raise KilledAt(f"after {count} shards")
            yield item


# "pre" kills before a stage's side effects, "post" kills after its
# side effects landed but telemetry never fired — the two halves of
# every stage's crash window. The stages cover ISSUE's kill points:
# mid-profile, mid-publish, and mid-ship of both bootstrap and
# steady-state cycles.
KILL_POINTS = [
    (0, "ingest", "pre"),
    (0, "ship", "post"),
    (1, "profile", "pre"),
    (1, "profile", "post"),
    (1, "publish", "pre"),
    (1, "publish", "post"),
    (2, "plan", "post"),
    (2, "ship", "pre"),
]


@pytest.mark.parametrize("cycle, stage, phase", KILL_POINTS)
def test_killed_daemon_resumes_to_identical_ledger(
    tmp_path, shared_cache, tiny_config, reference_ledger, cycle, stage, phase
):
    run_dir = tmp_path / "run"
    crashing = make_service(
        tiny_config, run_dir, shared_cache,
        stage_hook=killer(cycle, stage, phase),
    )
    with pytest.raises(KilledAt):
        crashing.run(cycles=3)
    # The crash left a loadable (if incomplete) ledger behind.
    assert CycleLedger(run_dir / LEDGER_NAME).completed_count() <= cycle

    resumed = make_service(tiny_config, run_dir, shared_cache)
    result = resumed.run(cycles=3)
    assert result.cycles_completed == 3
    assert resumed.ledger.to_json() == reference_ledger


def test_killed_mid_fleet_resumes_from_shard_checkpoints(
    tmp_path, shared_cache, tiny_config, reference_ledger
):
    run_dir = tmp_path / "run"
    crashing = make_service(
        tiny_config, run_dir, shared_cache, executor=DyingExecutor(limit=1)
    )
    with pytest.raises(KilledAt):
        crashing.run(cycles=3)
    # The ship stage never recorded, but its fleet checkpointed the
    # finished shard; resume folds it instead of re-running it.
    checkpoint = run_dir / "fleet" / "cycle_0000"
    assert list(checkpoint.glob("shards/*.pkl"))

    resumed = make_service(tiny_config, run_dir, shared_cache)
    result = resumed.run(cycles=3)
    assert result.cycles_completed == 3
    assert resumed.ledger.to_json() == reference_ledger
    # Completed cycles garbage-collect their fleet checkpoints.
    assert not checkpoint.exists()


def test_killed_rollout_resumes_to_identical_ledger(
    tmp_path, shared_cache, tiny_config
):
    # Same contract under staged rollouts: the ship stage judges
    # cohorts and mutates the registry, so a kill on either side of it
    # must still converge.
    config = dataclasses.replace(tiny_config, challenger_fraction=0.5)
    reference = make_service(config, tmp_path / "reference", shared_cache)
    reference.run(cycles=3)
    assert "rollout" in reference.ledger.to_json()

    for phase in ("pre", "post"):
        run_dir = tmp_path / f"killed-{phase}"
        crashing = make_service(
            config, run_dir, shared_cache, stage_hook=killer(1, "ship", phase)
        )
        with pytest.raises(KilledAt):
            crashing.run(cycles=3)
        resumed = make_service(config, run_dir, shared_cache)
        resumed.run(cycles=3)
        assert resumed.ledger.to_json() == reference.ledger.to_json()


def test_stop_flag_halts_at_stage_boundary_and_resumes(
    tmp_path, shared_cache, tiny_config, reference_ledger
):
    run_dir = tmp_path / "run"
    service = make_service(tiny_config, run_dir, shared_cache)

    def request_stop(cycle: int, stage: str, phase: str) -> None:
        # What the SIGTERM handler does, minus the signal plumbing.
        if (cycle, stage, phase) == (1, "profile", "post"):
            service._stop = True

    service.stage_hook = request_stop
    result = service.run(cycles=3)
    assert result.stopped
    assert result.cycles_completed == 1  # cycle 1 parked mid-flight

    resumed = make_service(tiny_config, run_dir, shared_cache)
    final = resumed.run(cycles=3)
    assert not final.stopped
    assert final.cycles_completed == 3
    assert resumed.ledger.to_json() == reference_ledger


SERVE_ARGS = [
    "serve", "--game", "colorphun", "--cycles", "3", "--quiet",
    "--devices", "4", "--duration", "2", "--shard-size", "2",
    "--profile-duration", "3", "--eval-duration", "3",
]


def _serve(run_dir: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *SERVE_ARGS, "--run-dir", str(run_dir),
         *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def test_sigterm_exits_cleanly_and_leaves_a_resumable_run_dir(tmp_path):
    run_dir = tmp_path / "run"
    daemon = _serve(run_dir)
    # Wait for the supervisor loop (which installs the handlers and
    # opens the ledger) before delivering the signal.
    deadline = time.monotonic() + 60
    while not (run_dir / LEDGER_NAME).exists():
        if daemon.poll() is not None or time.monotonic() > deadline:
            break
        time.sleep(0.05)
    if daemon.poll() is None:
        daemon.send_signal(signal.SIGTERM)
    stdout, stderr = daemon.communicate(timeout=120)
    assert daemon.returncode == 0, stderr

    # The run dir survived in a resumable state...
    assert (run_dir / MANIFEST_NAME).exists()
    ledger = CycleLedger(run_dir / LEDGER_NAME)
    assert ledger.completed_count() <= 3

    # ...and a second invocation with the same flags finishes the job.
    resume = _serve(run_dir, "--format", "json")
    stdout, stderr = resume.communicate(timeout=300)
    assert resume.returncode == 0, stderr
    document = json.loads(stdout)
    assert sum(1 for cycle in document["cycles"] if cycle["complete"]) == 3


def test_config_matches_the_cli_defaults_used_above():
    # The subprocess test relies on the CLI mapping these flags onto
    # ServiceConfig; pin the translation so flag drift fails loudly.
    config = ServiceConfig(
        game_name="colorphun",
        devices=4,
        session_duration_s=2.0,
        shard_size=2,
        profile_duration_s=3.0,
        eval_duration_s=3.0,
    )
    assert config.seed == 0
    assert config.base_profile_seeds == (1,)
    assert config.challenger_fraction == 0.0
