"""Shared fixtures for the service-daemon tests.

Service cycles run a real profile -> publish -> fleet pipeline, so the
configs here are as small as the pipeline allows and every daemon in
the module shares one package cache (profiles are pure functions of
their seeds, so cross-run sharing is safe and skips re-profiling).
"""

from __future__ import annotations

import pytest

from repro.core.package_cache import PackageCache
from repro.registry.store import PackageRegistry
from repro.service import ServiceConfig, SnipService


@pytest.fixture(scope="session")
def shared_cache(tmp_path_factory):
    """One content-addressed package cache shared by every service run."""
    return PackageCache(tmp_path_factory.mktemp("service-cache"))


@pytest.fixture
def tiny_config():
    """The smallest service config that still exercises every stage."""
    return ServiceConfig(
        game_name="colorphun",
        devices=6,
        sessions_per_device=1,
        session_duration_s=3.0,
        seed=0,
        shard_size=2,
        base_profile_seeds=(1,),
        profile_duration_s=5.0,
        max_profile_seeds=4,
        seeds_per_cycle=1,
        ungated_cycles=1,
        eval_duration_s=5.0,
    )


def make_service(config, run_dir, cache, **kwargs):
    """A daemon whose registry payloads resolve through ``cache``."""
    registry = kwargs.pop("registry", None)
    if registry is None:
        registry = PackageRegistry(run_dir / "registry", cache=cache)
    return SnipService(config, run_dir, registry=registry, **kwargs)


@pytest.fixture(scope="session")
def reference_ledger(tmp_path_factory, shared_cache):
    """An uninterrupted 3-cycle run's canonical ledger bytes.

    Session-scoped: the crash-resume tests compare several interrupted
    runs against this one baseline instead of re-running it each time.
    """
    config = ServiceConfig(
        game_name="colorphun",
        devices=6,
        sessions_per_device=1,
        session_duration_s=3.0,
        seed=0,
        shard_size=2,
        base_profile_seeds=(1,),
        profile_duration_s=5.0,
        max_profile_seeds=4,
        seeds_per_cycle=1,
        ungated_cycles=1,
        eval_duration_s=5.0,
    )
    run_dir = tmp_path_factory.mktemp("service-reference") / "run"
    service = make_service(config, run_dir, shared_cache)
    result = service.run(cycles=3)
    assert result.cycles_completed == 3
    return service.ledger.to_json()
