"""Tests for the sensor hub, SensorManager, Binder, and event loop."""

import pytest

from repro.android.binder import BINDER_TRANSACTION_CYCLES, Binder
from repro.android.dispatch import EventLoop, charge_delivery, charge_trace
from repro.android.events import EventType, make_frame_tick, make_gyro, make_touch
from repro.android.sensor_hub import SensorHub
from repro.android.sensor_manager import SensorManager
from repro.games.registry import create_game
from repro.soc.soc import SENSOR_GYRO, SENSOR_TOUCH, snapdragon_821


@pytest.fixture()
def soc():
    return snapdragon_821()


class TestSensorHub:
    def test_touch_burst_samples_touch_panel(self, soc):
        hub = SensorHub(soc)
        samples = hub.capture(make_touch(1, 2))
        assert len(samples) == 2
        assert soc.sensor(SENSOR_TOUCH).sample_count == 2

    def test_gyro_burst_uses_two_sensors(self, soc):
        hub = SensorHub(soc)
        samples = hub.capture(make_gyro(0, 0, 0, 0))
        sensors = {sample.sensor for sample in samples}
        assert SENSOR_GYRO in sensors
        assert len(samples) == 20

    def test_frame_tick_skips_sensors(self, soc):
        hub = SensorHub(soc)
        assert hub.capture(make_frame_tick()) == ()
        assert soc.meter.total_joules == 0.0

    def test_capture_invokes_hub_ip(self, soc):
        hub = SensorHub(soc)
        hub.capture(make_touch(1, 2))
        assert soc.ip("sensor_hub").invocation_count == 1

    def test_events_captured_counter(self, soc):
        hub = SensorHub(soc)
        hub.capture(make_touch(1, 2))
        hub.capture(make_frame_tick())
        assert hub.events_captured == 2

    def test_every_event_type_has_burst(self, soc):
        hub = SensorHub(soc)
        for event_type in EventType:
            assert hub.burst_for(event_type) is not None


class TestSensorManager:
    def test_synthesis_charges_little_cores(self, soc):
        manager = SensorManager(soc)
        event = make_touch(1, 2)
        manager.synthesize(event, samples=())
        assert soc.cpu.little_cycles_executed > 0
        assert soc.cpu.big_cycles_executed == 0

    def test_synthesis_cost_grows_with_samples(self, soc):
        manager = SensorManager(soc)
        hub = SensorHub(soc)
        event = make_gyro(0, 0, 0, 0)
        samples = hub.capture(event)
        before = soc.cpu.little_cycles_executed
        manager.synthesize(event, samples)
        with_samples = soc.cpu.little_cycles_executed - before
        assert with_samples > manager.synthesis_cycles(EventType.GYRO)

    def test_counter(self, soc):
        manager = SensorManager(soc)
        manager.synthesize(make_touch(1, 2), samples=())
        assert manager.events_synthesized == 1


class TestBinder:
    def test_transfer_charges_ipc(self, soc):
        binder = Binder(soc)
        event = make_touch(1, 2)
        binder.transfer(event)
        assert soc.cpu.little_cycles_executed == BINDER_TRANSACTION_CYCLES
        assert soc.memory.bytes_moved == 2 * event.nbytes

    def test_counters(self, soc):
        binder = Binder(soc)
        binder.transfer(make_touch(1, 2))
        binder.transfer(make_touch(3, 4))
        assert binder.transaction_count == 2
        assert binder.bytes_transferred == 2 * make_touch(1, 2).nbytes


class TestChargeTrace:
    def test_charges_all_work(self, soc):
        game = create_game("colorphun")
        game.advance_engine(make_frame_tick())
        trace = game.process(make_frame_tick())
        charge_trace(soc, trace)
        assert soc.cpu.total_cycles_executed == trace.total_cycles
        assert soc.ip("gpu").invocation_count >= 1

    def test_charge_delivery_full_path(self, soc):
        hub, manager, binder = SensorHub(soc), SensorManager(soc), Binder(soc)
        charge_delivery(soc, hub, manager, binder, make_touch(1, 2))
        assert binder.transaction_count == 1
        assert soc.meter.total_joules > 0


class TestEventLoop:
    def test_deliver_processes_and_charges(self, soc):
        game = create_game("colorphun")
        loop = EventLoop(soc, game)
        trace = loop.deliver(make_touch(700, 400, sequence=1))
        assert trace is not None
        assert loop.events_delivered == 1
        assert soc.meter.total_joules > 0

    def test_deliver_charges_upkeep(self, soc):
        game = create_game("colorphun")
        loop = EventLoop(soc, game)
        tick = make_frame_tick(sequence=1)
        loop.deliver(tick)
        upkeep = game.upkeep_cycles_for(EventType.FRAME_TICK)
        assert soc.cpu.big_cycles_executed >= upkeep
