"""Tests for event objects and schemas."""

import pytest

from repro.android.events import (
    EVENT_SCHEMAS,
    Event,
    EventType,
    make_camera_frame,
    make_frame_tick,
    make_gps,
    make_gyro,
    make_multi_touch,
    make_swipe,
    make_touch,
    schema_for,
)
from repro.errors import EventError, UnknownEventTypeError


class TestSchemas:
    def test_every_type_has_schema(self):
        assert set(EVENT_SCHEMAS) == set(EventType)

    def test_schema_sizes_span_paper_range(self):
        # Fig. 7a: In.Event records run from 2 B to 640 B.
        sizes = [schema.nbytes for schema in EVENT_SCHEMAS.values()]
        assert min(sizes) == 2
        assert max(sizes) == 640

    def test_camera_frame_is_largest(self):
        assert schema_for(EventType.CAMERA_FRAME).nbytes == 640

    def test_frame_tick_is_smallest(self):
        assert schema_for(EventType.FRAME_TICK).nbytes == 2

    def test_field_names_unique(self):
        for schema in EVENT_SCHEMAS.values():
            names = schema.field_names
            assert len(set(names)) == len(names)

    def test_spec_lookup(self):
        spec = schema_for(EventType.TOUCH).spec("x")
        assert spec.nbytes == 2

    def test_spec_unknown_field(self):
        with pytest.raises(EventError):
            schema_for(EventType.TOUCH).spec("bogus")

    def test_unknown_event_type(self):
        with pytest.raises(UnknownEventTypeError):
            schema_for("not_a_type")


class TestQuantisation:
    def test_touch_coordinates_snap_to_grid(self):
        a = make_touch(100, 207)
        b = make_touch(97, 200)  # same 32-px digitizer cell
        assert a.field("x") == b.field("x")
        assert a.field("y") == b.field("y")

    def test_indistinguishable_events_equal(self):
        assert make_touch(100, 200) == make_touch(98, 201)

    def test_distinguishable_events_differ(self):
        assert make_touch(100, 200) != make_touch(400, 200)

    def test_equal_events_hash_equal(self):
        assert hash(make_touch(100, 200)) == hash(make_touch(98, 201))

    def test_float_resolution(self):
        event = make_gyro(10.7, 91.2, 1.0, 3.0)
        assert event.field("alpha") % 4.0 == pytest.approx(0.0)

    def test_action_not_quantised(self):
        assert make_touch(0, 0, action=1).field("action") == 1


class TestEventConstruction:
    def test_missing_field_rejected(self):
        with pytest.raises(EventError):
            Event(EventType.TOUCH, {"x": 1})

    def test_extra_field_rejected(self):
        values = dict(make_touch(1, 2).values)
        values["bogus"] = 1
        with pytest.raises(EventError):
            Event(EventType.TOUCH, values)

    def test_unknown_field_read_rejected(self):
        with pytest.raises(EventError):
            make_touch(1, 2).field("bogus")

    def test_key_follows_schema_order(self):
        event = make_touch(64, 128, pressure=0.5, action=0, pointer_id=3)
        assert event.key() == (64, 128, 0.5, 0, 3)

    def test_nbytes_matches_schema(self):
        assert make_swipe(0, 0, 100, 100, 500.0, 2, 100).nbytes == \
            schema_for(EventType.SWIPE).nbytes

    def test_camera_frame_requires_25_rois(self):
        with pytest.raises(EventError):
            make_camera_frame(1, 10, 5, roi_values=[1, 2, 3])

    def test_camera_frame_roundtrip(self):
        event = make_camera_frame(1, 10, 5, roi_values=list(range(25)))
        assert event.field("roi_24") == 24

    def test_constructors_cover_types(self):
        made = [
            make_touch(1, 2),
            make_swipe(0, 0, 1, 1, 100.0, 0, 50),
            make_multi_touch(0, 0, 1, 1, 0, 5.0),
            make_gyro(0.0, 0.0, 0.0, 0.0),
            make_camera_frame(0, 0, 0, roi_values=[0] * 25),
            make_gps(1, 2),
            make_frame_tick(),
        ]
        assert {event.event_type for event in made} == set(EventType)

    def test_sequence_and_timestamp_carried(self):
        event = make_touch(1, 2, sequence=9, timestamp=1.5)
        assert event.sequence == 9
        assert event.timestamp == 1.5
