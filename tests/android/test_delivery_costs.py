"""Cost-model tests for the delivery path and upkeep accounting."""

import pytest

from repro.android.dispatch import charge_delivery, charge_trace, charge_upkeep
from repro.android.binder import Binder
from repro.android.events import EventType, make_frame_tick, make_gyro, make_touch
from repro.android.sensor_hub import SensorHub
from repro.android.sensor_manager import SensorManager
from repro.games.registry import create_game
from repro.soc.soc import IP_GPU, snapdragon_821


@pytest.fixture()
def pipeline():
    soc = snapdragon_821()
    return soc, SensorHub(soc), SensorManager(soc), Binder(soc)


class TestDeliveryCosts:
    def test_touch_cheaper_than_gyro(self, pipeline):
        soc, hub, manager, binder = pipeline
        charge_delivery(soc, hub, manager, binder, make_touch(1, 2))
        touch_cost = soc.meter.total_joules
        soc.meter.reset()
        charge_delivery(soc, hub, manager, binder, make_gyro(0, 0, 0, 0))
        gyro_cost = soc.meter.total_joules
        assert gyro_cost > touch_cost  # 20 raw samples vs 2

    def test_tick_delivery_is_cheapest(self, pipeline):
        soc, hub, manager, binder = pipeline
        charge_delivery(soc, hub, manager, binder, make_frame_tick())
        tick_cost = soc.meter.total_joules
        soc.meter.reset()
        charge_delivery(soc, hub, manager, binder, make_touch(1, 2))
        assert tick_cost < soc.meter.total_joules

    def test_delivery_never_touches_big_cores(self, pipeline):
        soc, hub, manager, binder = pipeline
        charge_delivery(soc, hub, manager, binder, make_gyro(0, 0, 0, 0))
        assert soc.cpu.big_cycles_executed == 0


class TestUpkeepAccounting:
    def test_upkeep_charges_cycles_and_compositor(self):
        soc = snapdragon_821()
        game = create_game("candy_crush")
        cycles = charge_upkeep(soc, game, make_frame_tick())
        assert cycles == game.upkeep_cycles_for(EventType.FRAME_TICK)
        assert soc.cpu.big_cycles_executed == cycles
        assert soc.ip(IP_GPU).invocation_count == 1  # compositor pass

    def test_upkeep_advances_engine(self):
        soc = snapdragon_821()
        game = create_game("race_kings")
        charge_upkeep(soc, game, make_frame_tick())
        assert game.state.peek("track_pos") == 1

    def test_gesture_upkeep_smaller_than_tick(self):
        soc = snapdragon_821()
        game = create_game("candy_crush")
        tick_cycles = charge_upkeep(soc, game, make_frame_tick())
        swipe_cycles = charge_upkeep(
            soc, game,
            __import__("repro.android.events", fromlist=["make_swipe"])
            .make_swipe(0, 0, 100, 100, 1600.0, 2, 100),
        )
        assert swipe_cycles < tick_cycles


class TestChargeTraceFidelity:
    def test_trace_energy_matches_estimate(self):
        from repro.users.sessions import estimate_trace_energy

        soc = snapdragon_821()
        game = create_game("greenwall")
        event = make_frame_tick()
        game.advance_engine(event)
        trace = game.process(event)
        predicted = estimate_trace_energy(soc, trace)
        before = soc.meter.total_joules
        charge_trace(soc, trace)
        charged = soc.meter.total_joules - before
        # estimate_trace_energy excludes only wake transients, which a
        # fresh idle SoC does not incur here.
        assert charged == pytest.approx(predicted, rel=1e-9)
