"""Tests for device-side tracing and emulator replay."""

import pytest

from repro.android.emulator import Emulator
from repro.android.events import EventType, make_touch
from repro.android.tracing import EventTracer, RecordedTrace
from repro.errors import TraceError
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.users.tracegen import generate_trace


class TestTracer:
    def test_record_preserves_order_and_values(self):
        tracer = EventTracer("colorphun", seed=1)
        tracer.record(make_touch(100, 200, sequence=1, timestamp=0.1))
        tracer.record(make_touch(300, 400, sequence=2, timestamp=0.2))
        trace = tracer.trace
        assert len(trace) == 2
        assert trace.events[0].to_event().field("x") == make_touch(100, 200).field("x")

    def test_sequence_regression_rejected(self):
        tracer = EventTracer("colorphun", seed=1)
        tracer.record(make_touch(1, 2, sequence=5))
        with pytest.raises(TraceError):
            tracer.record(make_touch(1, 2, sequence=5))

    def test_uplink_bytes_sum_event_sizes(self):
        tracer = EventTracer("colorphun", seed=1)
        tracer.record(make_touch(1, 2, sequence=1))
        assert tracer.trace.uplink_bytes == make_touch(1, 2).nbytes


class TestTraceSerialization:
    def test_roundtrip(self):
        trace = generate_trace("colorphun", seed=3, duration_s=2.0)
        rebuilt = RecordedTrace.from_dict(trace.to_dict())
        assert rebuilt.game_name == trace.game_name
        assert rebuilt.seed == trace.seed
        assert len(rebuilt) == len(trace)
        for original, copy in zip(trace, rebuilt):
            assert original.to_event() == copy.to_event()

    def test_malformed_payload_rejected(self):
        with pytest.raises(TraceError):
            RecordedTrace.from_dict({"events": [{"bad": 1}]})


class TestEmulator:
    def test_replay_produces_record_per_event(self, ab_trace, ab_records):
        assert len(ab_records) == len(ab_trace)

    def test_replay_verifies_determinism(self, ab_trace):
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        records = Emulator(verify=True).replay(game, ab_trace)
        assert len(records) == len(ab_trace)

    def test_replay_rejects_wrong_game(self, ab_trace):
        game = create_game("colorphun", seed=GAME_CONTENT_SEED)
        with pytest.raises(TraceError):
            Emulator().replay(game, ab_trace)

    def test_replay_does_not_mutate_template(self, ab_trace):
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        Emulator(verify=False).replay(game, ab_trace)
        assert game.events_processed == 0

    def test_records_carry_session_id(self, ab_trace):
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        records = Emulator(verify=False).replay(game, ab_trace, session=4)
        assert {record.session for record in records} == {4}

    def test_snapshot_covers_all_state(self, ab_records):
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        expected = set(game.state.field_names())
        snapshot_names = {name for name, _ in ab_records[0].state_snapshot}
        assert snapshot_names == expected

    def test_replay_is_reproducible(self, ab_trace, ab_records):
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        again = Emulator(verify=False).replay(game, ab_trace)
        for first, second in zip(ab_records, again):
            assert first.trace.output_signature() == second.trace.output_signature()

    def test_event_value_accessor(self, ab_records):
        drag = next(r for r in ab_records if r.event_type is EventType.MULTI_TOUCH)
        assert drag.event_value("gesture") in (0, 1, 2)
        with pytest.raises(KeyError):
            drag.event_value("missing")

    def test_state_value_accessor(self, ab_records):
        value, nbytes = ab_records[0].state_value("stretch")
        assert nbytes == 2
        with pytest.raises(KeyError):
            ab_records[0].state_value("missing")
