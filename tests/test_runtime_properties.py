"""Property-style invariants over live runtime/session machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SnipConfig
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, GAME_NAMES, create_game
from repro.soc.component import ComponentGroup
from repro.soc.soc import snapdragon_821
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_events


class TestSessionInvariants:
    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_ledger_axes_agree(self, game_name):
        result = run_baseline_session(game_name, seed=2, duration_s=8.0)
        report = result.report
        assert sum(report.by_group.values()) == pytest.approx(report.total_joules)
        assert sum(report.by_tag.values()) == pytest.approx(report.total_joules)
        assert sum(report.by_component.values()) == pytest.approx(
            report.total_joules
        )

    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_all_groups_positive(self, game_name):
        result = run_baseline_session(game_name, seed=2, duration_s=8.0)
        for group in ComponentGroup:
            assert result.report.by_group.get(group, 0.0) > 0.0

    def test_longer_sessions_cost_more(self):
        short = run_baseline_session("greenwall", seed=2, duration_s=6.0)
        long = run_baseline_session("greenwall", seed=2, duration_s=12.0)
        assert long.report.total_joules > short.report.total_joules


class TestRuntimeInvariants:
    @given(seed=st.integers(1, 50))
    @settings(max_examples=5, deadline=None)
    def test_hits_plus_misses_equals_events(self, seed, ab_package_shared):
        soc = snapdragon_821()
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        runtime = SnipRuntime(soc, game, ab_package_shared.table.clone(),
                              SnipConfig())
        clock = 0.0
        for event in generate_events("ab_evolution", seed, 6.0):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        stats = runtime.stats
        assert stats.hits + stats.misses == stats.events
        assert 0.0 <= stats.coverage <= 1.0
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.avoided_cycles >= 0.0

    def test_snip_never_costs_more_than_baseline(self, ab_package_shared):
        for seed in (3, 11):
            soc = snapdragon_821()
            game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
            runtime = SnipRuntime(soc, game, ab_package_shared.table.clone(),
                                  SnipConfig())
            clock = 0.0
            for event in generate_events("ab_evolution", seed, 10.0):
                if event.timestamp > clock:
                    soc.advance_time(event.timestamp - clock)
                    clock = event.timestamp
                runtime.deliver(event)
            soc.advance_time(max(0.0, 10.0 - clock))
            baseline = run_baseline_session("ab_evolution", seed=seed,
                                            duration_s=10.0)
            # Lookup overheads are bounded well below the savings.
            assert soc.meter.total_joules < baseline.report.total_joules * 1.02


@pytest.fixture(scope="module")
def ab_package_shared(ab_package):
    """Module alias of the session-scoped package fixture."""
    return ab_package
