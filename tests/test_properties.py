"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.events import EventType, make_swipe, make_touch, schema_for
from repro.games.candy_crush import COLORS, SIZE, collapse, deal_board, find_matches
from repro.games.greenwall import fruit_position
from repro.games.memory_game import card_face, card_kind, card_value, deal_kinds
from repro.ml.encoding import FeatureEncoder, encode_value
from repro.ml.metrics import accuracy, majority_class_accuracy
from repro.rng import ReproRng
from repro.soc.battery import Battery
from repro.soc.component import ComponentGroup
from repro.soc.energy import EnergyMeter


coordinates = st.integers(min_value=0, max_value=1439)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestEventProperties:
    @given(x=coordinates, y=st.integers(0, 2559))
    def test_touch_quantisation_idempotent(self, x, y):
        once = make_touch(x, y)
        twice = make_touch(int(once.field("x")), int(once.field("y")))
        assert once == twice

    @given(x=coordinates, y=st.integers(0, 2559))
    def test_touch_key_matches_values(self, x, y):
        event = make_touch(x, y)
        schema = schema_for(EventType.TOUCH)
        assert event.key() == tuple(event.values[n] for n in schema.field_names)

    @given(
        x0=coordinates, y0=st.integers(0, 2559),
        velocity=st.floats(0, 5000, allow_nan=False),
        direction=st.integers(0, 7),
    )
    def test_swipe_nbytes_constant(self, x0, y0, velocity, direction):
        event = make_swipe(x0, y0, x0, y0, velocity, direction, 100)
        assert event.nbytes == schema_for(EventType.SWIPE).nbytes


class TestRngProperties:
    @given(seed=seeds, label=st.text(min_size=1, max_size=20))
    def test_fork_determinism(self, seed, label):
        assert ReproRng(seed).fork(label).seed == ReproRng(seed).fork(label).seed

    @given(seed=seeds, low=st.integers(-100, 100), span=st.integers(1, 50))
    def test_integer_in_range(self, seed, low, span):
        value = ReproRng(seed).integer(low, low + span)
        assert low <= value < low + span

    @given(seed=seeds, items=st.lists(st.integers(), min_size=1, max_size=30))
    def test_shuffle_is_permutation(self, seed, items):
        assert sorted(ReproRng(seed).shuffled(items)) == sorted(items)


class TestEnergyProperties:
    @given(charges=st.lists(st.floats(0, 1e3, allow_nan=False), max_size=30))
    def test_total_is_sum(self, charges):
        meter = EnergyMeter()
        for joules in charges:
            meter.charge("x", ComponentGroup.CPU, joules)
        assert meter.total_joules == sum(charges)

    @given(drains=st.lists(st.floats(0, 5e3, allow_nan=False), max_size=20))
    def test_battery_never_negative(self, drains):
        battery = Battery()
        for joules in drains:
            if battery.is_depleted:
                break
            battery.drain(joules)
        assert 0.0 <= battery.remaining_fraction <= 1.0


class TestCandyProperties:
    @given(seed=seeds)
    @settings(max_examples=25)
    def test_deal_never_has_matches(self, seed):
        assert find_matches(deal_board(seed)) == frozenset()

    @given(seed=seeds, fill=seeds)
    @settings(max_examples=25)
    def test_collapse_preserves_board_size(self, seed, fill):
        board = deal_board(seed)
        removed = find_matches(board) | frozenset({0, 9, 18})
        out = collapse(board, removed, fill)
        assert len(out) == SIZE * SIZE
        assert all(0 <= candy < COLORS for candy in out)

    @given(seed=seeds)
    @settings(max_examples=25)
    def test_collapse_keeps_untouched_columns(self, seed):
        board = deal_board(seed)
        out = collapse(board, frozenset({0}), fill_seed=1)
        # Only column 0 changed; all other columns are preserved.
        for col in range(1, SIZE):
            original = [board[row * SIZE + col] for row in range(SIZE)]
            collapsed = [out[row * SIZE + col] for row in range(SIZE)]
            assert original == collapsed


class TestMemoryGameProperties:
    @given(level=st.integers(1, 50))
    def test_deal_always_pairs(self, level):
        kinds = deal_kinds(level)
        assert sorted(kinds) == sorted(list(range(18)) * 2)

    @given(kind=st.integers(0, 17), face=st.integers(0, 2))
    def test_card_packing_roundtrip(self, kind, face):
        value = card_value(kind, face)
        assert card_kind(value) == kind
        assert card_face(value) == face


class TestGreenwallProperties:
    @given(pattern=st.integers(0, 7), fruit=st.integers(0, 4), phase=st.integers(0, 90))
    def test_positions_deterministic_and_bounded_x(self, pattern, fruit, phase):
        first = fruit_position(pattern, fruit, phase)
        second = fruit_position(pattern, fruit, phase)
        assert first == second
        assert -600 <= first[0] <= 2000  # launch window plus drift


class TestEncodingProperties:
    @given(value=st.one_of(st.integers(), st.text(max_size=20), st.booleans(),
                           st.none(), st.floats(allow_nan=False, allow_infinity=False)))
    def test_encoding_is_stable(self, value):
        assert encode_value(value) == encode_value(value)

    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=8,
                           unique=True))
    def test_encoder_preserves_distinct_ints(self, values):
        encoder = FeatureEncoder([f"f{i}" for i in range(len(values))])
        row = encoder.encode_record({f"f{i}": v for i, v in enumerate(values)})
        assert len(set(row.tolist())) == len(values)


class TestMetricProperties:
    @given(labels=st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_majority_bounds(self, labels):
        arr = np.asarray(labels)
        value = majority_class_accuracy(arr)
        assert 1.0 / len(set(labels)) <= value + 1e-12
        assert value <= 1.0

    @given(labels=st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_perfect_prediction(self, labels):
        arr = np.asarray(labels)
        assert accuracy(arr, arr) == 1.0
