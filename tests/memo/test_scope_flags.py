"""Tests for the all-events scope flags on the memo substrates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.serialization import _decode_value, _encode_value
from repro.errors import MemoizationError
from repro.memo.event_only import EventOnlyTable
from repro.memo.naive import NaiveLookupTable


class TestAllEventsScope:
    def test_naive_with_ticks_has_more_entries(self, ab_records):
        user_only = NaiveLookupTable(ab_records)
        everything = NaiveLookupTable(ab_records, user_events_only=False)
        assert everything.hits + everything.misses == len(ab_records)
        assert everything.entry_count > user_only.entry_count

    def test_ticks_repeat_far_more_than_gestures(self, ab_records):
        user_only = NaiveLookupTable(ab_records)
        everything = NaiveLookupTable(ab_records, user_events_only=False)
        # Idle vsync frames recur with identical full state; user
        # gestures almost never do — the whole premise of the paper's
        # redundancy analysis.
        assert everything.coverage > 5 * user_only.coverage

    def test_event_only_all_events_dominated_by_ticks(self, ab_records):
        table = EventOnlyTable(ab_records)
        scoped = table.stats(user_events_only=True)
        full = table.stats(user_events_only=False)
        # Ticks share a 2-byte key space: coverage explodes and so does
        # ambiguity (why Sec. IV studies user events).
        assert full.coverage > scoped.coverage
        assert full.ambiguous_fraction > scoped.ambiguous_fraction


class TestSerializationValues:
    @given(value=st.recursive(
        st.one_of(st.integers(-10**6, 10**6), st.text(max_size=10),
                  st.booleans(), st.none(),
                  st.floats(allow_nan=False, allow_infinity=False)),
        lambda children: st.tuples(children, children),
        max_leaves=6,
    ))
    def test_value_roundtrip(self, value):
        assert _decode_value(_encode_value(value)) == value

    def test_unserialisable_value_rejected(self):
        with pytest.raises(MemoizationError):
            _encode_value(object())

    def test_malformed_payload_rejected(self):
        with pytest.raises(MemoizationError):
            _decode_value({"bogus": 1})
