"""Tests for the memoization substrates (Secs. III & IV)."""

import pytest

from repro.games.base import FieldWrite, OutputCategory
from repro.memo.event_only import EventOnlyTable
from repro.memo.naive import NaiveLookupTable
from repro.memo.stats import (
    classify_erroneous_execution,
    total_output_bytes,
    weighted_coverage,
    writes_differ,
)


def _write(name, category, value, changed=True, nbytes=8):
    return FieldWrite(
        name=name, category=category, value=value, nbytes=nbytes, changed=changed
    )


class TestStats:
    def test_weighted_coverage(self):
        assert weighted_coverage(25.0, 100.0) == 0.25
        assert weighted_coverage(1.0, 0.0) == 0.0

    def test_writes_differ(self):
        a = [_write("hist:x", OutputCategory.HISTORY, 1)]
        b = [_write("hist:x", OutputCategory.HISTORY, 2)]
        assert writes_differ(a, b)
        assert not writes_differ(a, list(a))

    def test_classify_correct_is_none(self):
        writes = [_write("hist:x", OutputCategory.HISTORY, 1)]
        assert classify_erroneous_execution(writes, list(writes)) is None

    def test_classify_temp_only(self):
        predicted = [_write("temp:t", OutputCategory.TEMP, 1)]
        actual = [_write("temp:t", OutputCategory.TEMP, 2)]
        assert classify_erroneous_execution(predicted, actual) is OutputCategory.TEMP

    def test_classify_history_dominates_temp(self):
        predicted = [
            _write("temp:t", OutputCategory.TEMP, 1),
            _write("hist:h", OutputCategory.HISTORY, 1),
        ]
        actual = [
            _write("temp:t", OutputCategory.TEMP, 2),
            _write("hist:h", OutputCategory.HISTORY, 2),
        ]
        assert classify_erroneous_execution(predicted, actual) is OutputCategory.HISTORY

    def test_classify_extern_most_severe(self):
        predicted = [
            _write("hist:h", OutputCategory.HISTORY, 1),
            _write("extern:e", OutputCategory.EXTERN, 1),
        ]
        actual = [
            _write("hist:h", OutputCategory.HISTORY, 2),
            _write("extern:e", OutputCategory.EXTERN, 2),
        ]
        assert classify_erroneous_execution(predicted, actual) is OutputCategory.EXTERN

    def test_missing_field_counts_as_mismatch(self):
        predicted = []
        actual = [_write("hist:h", OutputCategory.HISTORY, 1)]
        assert classify_erroneous_execution(predicted, actual) is OutputCategory.HISTORY

    def test_classify_is_invariant_under_field_order(self):
        # The mismatched-field fold walks names in sorted order, so
        # the verdict cannot depend on hash-seed iteration order or on
        # how the caller happened to order the writes.
        fields = [
            ("z:temp", OutputCategory.TEMP),
            ("a:hist", OutputCategory.HISTORY),
            ("m:ext", OutputCategory.EXTERN),
        ]
        predicted = [_write(n, c, 1) for n, c in fields]
        actual = [_write(n, c, 2) for n, c in fields]
        verdict = classify_erroneous_execution(predicted, actual)
        assert verdict is OutputCategory.EXTERN
        assert classify_erroneous_execution(
            list(reversed(predicted)), list(reversed(actual))
        ) is verdict

    def test_total_output_bytes(self):
        writes = [
            _write("a", OutputCategory.TEMP, 1, nbytes=16),
            _write("b", OutputCategory.HISTORY, 1, nbytes=4),
        ]
        assert total_output_bytes(writes) == 20


class TestNaiveTable:
    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            NaiveLookupTable([])

    def test_excludes_ticks_by_default(self, ab_records):
        from repro.android.events import EventType

        table = NaiveLookupTable(ab_records)
        user_events = sum(
            1 for record in ab_records
            if record.event_type is not EventType.FRAME_TICK
        )
        assert table.hits + table.misses == user_events

    def test_records_are_wide(self, ab_records):
        from repro.android.events import EventType

        table = NaiveLookupTable(ab_records)
        # Union-of-locations width includes the level layout blob.
        assert table.record_width_bytes(EventType.MULTI_TOUCH) > 2_000

    def test_size_grows_superlinearly_per_coverage(self, ab_records):
        table = NaiveLookupTable(ab_records)
        # Fig. 6 shape: megabytes of table for only a few % coverage.
        assert table.total_bytes > 1_000_000
        assert table.coverage < 0.10

    def test_exact_repeats_are_rare(self, ab_records):
        # Paper Sec. I: only ~2-5% of events repeat exactly.
        table = NaiveLookupTable(ab_records)
        repeat_rate = table.hits / (table.hits + table.misses)
        assert repeat_rate < 0.08

    def test_curve_monotone(self, ab_records):
        table = NaiveLookupTable(ab_records)
        curve = table.curve
        sizes = [point.table_bytes_with_outputs for point in curve]
        assert sizes == sorted(sizes)
        assert curve[-1].table_bytes_with_outputs == table.total_bytes

    def test_input_only_leq_total(self, ab_records):
        table = NaiveLookupTable(ab_records)
        assert table.input_bytes <= table.total_bytes

    def test_bytes_needed_for_unreachable_coverage(self, ab_records):
        table = NaiveLookupTable(ab_records)
        with pytest.raises(ValueError):
            table.bytes_needed_for_coverage(0.99)


class TestEventOnlyTable:
    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            EventOnlyTable([])

    def test_table_is_tiny_vs_naive(self, ab_records):
        event_only = EventOnlyTable(ab_records)
        naive = NaiveLookupTable(ab_records)
        # Fig. 8a: orders of magnitude smaller.
        assert event_only.table_bytes < naive.total_bytes / 50

    def test_coverage_far_exceeds_exact_repeats(self, ab_records):
        stats = EventOnlyTable(ab_records).stats()
        naive = NaiveLookupTable(ab_records)
        naive_repeat = naive.hits / (naive.hits + naive.misses)
        assert stats.coverage > 3 * naive_repeat

    def test_ambiguity_comes_with_errors(self, ab_records):
        stats = EventOnlyTable(ab_records).stats()
        assert stats.ambiguous_fraction > 0.0
        assert 0.0 < stats.erroneous_fraction <= stats.ambiguous_fraction + 1e-9

    def test_fatal_errors_dominate(self, ab_records):
        # Fig. 8b: the majority of erroneous short-circuits corrupt
        # Out.History/Out.Extern, disqualifying the scheme.
        stats = EventOnlyTable(ab_records).stats()
        fatal = (
            stats.error_breakdown[OutputCategory.HISTORY]
            + stats.error_breakdown[OutputCategory.EXTERN]
        )
        assert fatal > 0.5
        assert stats.error_breakdown[OutputCategory.TEMP] > 0.0

    def test_breakdown_sums_to_one_when_errors_exist(self, ab_records):
        stats = EventOnlyTable(ab_records).stats()
        assert sum(stats.error_breakdown.values()) == pytest.approx(1.0)

    def test_multi_output_keys_exist(self, ab_records):
        table = EventOnlyTable(ab_records)
        assert len(table.multi_output_keys()) > 0

    def test_predict_returns_majority_writes(self, ab_records):
        table = EventOnlyTable(ab_records)
        predicted = table.predict(ab_records[0])
        assert isinstance(predicted, tuple)
