"""Tier-1 gate: the shipped tree passes its own linter, quickly.

This is the test that turns the rule pack into a commit-time contract:
any new wall-clock read, unseeded RNG call, environment read, unsorted
set iteration, unpicklable payload field, unit-mixing arithmetic, or
unregistered game/scheme anywhere under ``src/repro`` fails here with
a ``file:line`` location — long before a fleet determinism test would
catch the symptom.
"""

from __future__ import annotations

import time
from pathlib import Path

import repro
from repro.lint import lint_paths, render_text

PACKAGE_DIR = str(Path(repro.__file__).resolve().parent)


def test_shipped_tree_has_zero_findings():
    started = time.monotonic()
    result = lint_paths([PACKAGE_DIR])
    elapsed = time.monotonic() - started
    assert result.findings == [], (
        "the shipped tree must lint clean; fix the code or add a "
        "justified '# lint: ignore[rule-id]':\n" + render_text(result)
    )
    # The whole package, full rule pack — and it must stay fast enough
    # to run on every commit (acceptance bar is <5s for the CLI run).
    assert result.files_checked >= 100
    assert elapsed < 5.0


def test_known_intentional_suppressions_are_counted():
    result = lint_paths([PACKAGE_DIR])
    # The TelemetryBus default clock, the package cache's two
    # configuration env reads (core/package_cache.py: cache dir
    # override + opt-out), and the registry root override
    # (registry/store.py) — configuration reads that steer where
    # results land, never what is computed — are the four sanctioned
    # exceptions today.  (fleet/work.py's two wall-clock suppressions
    # were retired when the taint pass showed the timing field made
    # checkpointed shard results byte-unstable; wall time is now
    # measured executor-side.)  If you add one, justify it next to the
    # suppression comment and bump this.
    assert result.suppressed == 4
    # The hygiene pass must agree that every surviving suppression
    # still silences something.
    assert result.unused_suppressions == []
