"""Text and JSON reporters, and report-order determinism."""

from __future__ import annotations

import json

from repro.lint import render_json, render_text

SNIPPET = """
import time
import os

def stamp():
    return time.time()

def configured():
    return os.getenv("JOBS")
"""


def test_text_report_has_clickable_locations_and_summary(lint_snippet):
    result = lint_snippet(SNIPPET, rules=["det-wallclock", "det-env-read"])
    text = render_text(result)
    lines = text.splitlines()
    assert any(":6:12: det-wallclock:" in line for line in lines)
    assert any(": det-env-read:" in line for line in lines)
    assert lines[-1] == "2 findings (1 files, 0 suppressed)"


def test_json_report_schema(lint_snippet):
    result = lint_snippet(SNIPPET, rules=["det-wallclock", "det-env-read"])
    document = json.loads(render_json(result))
    assert document["version"] == 1
    assert document["files_checked"] == 1
    assert document["suppressed"] == 0
    assert document["baselined"] == 0
    assert len(document["findings"]) == 2
    for finding in document["findings"]:
        assert set(finding) == {"rule", "path", "line", "column", "message"}


def test_findings_render_in_canonical_path_line_order(lint_snippet):
    result = lint_snippet(SNIPPET, rules=["det-wallclock", "det-env-read"])
    positions = [(f.path, f.line) for f in result.findings]
    assert positions == sorted(positions)
    # det-wallclock (line 6) before det-env-read (line 9).
    assert [f.rule_id for f in result.findings] == [
        "det-wallclock", "det-env-read"
    ]


def test_clean_run_renders_zero_findings(lint_snippet):
    result = lint_snippet("x = 1\n", rules=["det-wallclock"])
    assert render_text(result) == "0 findings (1 files, 0 suppressed)"
    assert json.loads(render_json(result))["findings"] == []
