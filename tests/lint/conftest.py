"""Helpers for the lint-rule tests.

Every rule test follows the same shape: write a fixture snippet (or a
small fixture tree for project-scope rules), run a narrowed rule pack
over it, and assert on the resulting rule ids.  ``lint_snippet`` and
``lint_tree`` keep that one line long.
"""

from __future__ import annotations

import textwrap
from typing import Dict, Optional, Sequence

import pytest

from repro.lint import LintResult, lint_paths


@pytest.fixture
def lint_snippet(tmp_path):
    """Lint one dedented source snippet; returns the LintResult."""

    def _lint(
        source: str,
        rules: Optional[Sequence[str]] = None,
        filename: str = "snippet.py",
    ) -> LintResult:
        path = tmp_path / filename
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_paths([str(path)], rule_ids=rules)

    return _lint


@pytest.fixture
def lint_tree(tmp_path):
    """Lint a fixture tree given as ``rel_path -> source`` mapping."""

    def _lint(
        files: Dict[str, str], rules: Optional[Sequence[str]] = None
    ) -> LintResult:
        for rel_path, source in files.items():
            path = tmp_path / rel_path
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_paths([str(tmp_path)], rule_ids=rules)

    return _lint


def rule_ids(result: LintResult):
    """Sorted rule ids of the result's findings."""
    return sorted(finding.rule_id for finding in result.findings)
