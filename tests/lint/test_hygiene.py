"""Baseline drift, ``--prune`` rewrites, and unused suppressions.

Exemptions rot: a baselined finding gets fixed but its allowance
stays, or a ``lint: ignore`` comment outlives the diagnostic it
silenced.  These tests pin the reporting of both kinds of drift and
the ``--prune`` rewrite that clears the first kind.
"""

from __future__ import annotations

import io
import json
import textwrap

from repro.cli import main
from repro.lint import (
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
    write_pruned_baseline,
)

DIRTY = """
    import time

    def stamp():
        return time.time()
"""

CLEAN = "x = 1\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


# -- stale baseline detection ----------------------------------------------


def test_fixing_a_baselined_finding_marks_the_entry_stale(tmp_path):
    target = _write(tmp_path, "mod.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    first = lint_paths([str(target)])
    write_baseline(baseline_path, first)
    target.write_text(CLEAN, encoding="utf-8")
    second = lint_paths(
        [str(target)], baseline=load_baseline(baseline_path)
    )
    assert second.findings == []
    assert second.baselined == 0
    assert len(second.stale_baseline) == 1
    assert "det-wallclock" in second.stale_baseline[0]


def test_consumed_entries_are_not_stale(tmp_path):
    target = _write(tmp_path, "mod.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, lint_paths([str(target)]))
    again = lint_paths([str(target)], baseline=load_baseline(baseline_path))
    assert again.findings == []
    assert again.baselined == 1
    assert again.stale_baseline == []
    assert sum(again.baseline_consumed.values()) == 1


def test_stale_entries_render_in_text_and_json(tmp_path):
    target = _write(tmp_path, "mod.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, lint_paths([str(target)]))
    target.write_text(CLEAN, encoding="utf-8")
    result = lint_paths([str(target)], baseline=load_baseline(baseline_path))
    text = render_text(result)
    assert "stale baseline entry (finding no longer exists):" in text
    # Drift lines sit above the summary, which stays the last line.
    assert text.splitlines()[-1] == "0 findings (1 files, 0 suppressed)"
    document = json.loads(render_json(result))
    assert document["stale_baseline"] == result.stale_baseline


def test_prune_rewrite_keeps_only_consumed_entries(tmp_path):
    dirty = _write(tmp_path, "dirty.py", DIRTY)
    fixed = _write(tmp_path, "fixed.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, lint_paths([str(tmp_path)]))
    fixed.write_text(CLEAN, encoding="utf-8")
    result = lint_paths(
        [str(tmp_path)], baseline=load_baseline(baseline_path)
    )
    kept = write_pruned_baseline(baseline_path, result)
    assert kept == 1
    pruned = load_baseline(baseline_path)
    assert len(pruned) == 1
    (key,) = pruned
    assert "dirty.py" in key
    assert pruned[key] == 1
    # The pruned baseline still absorbs the remaining finding.
    final = lint_paths([str(dirty)], baseline=pruned)
    assert final.findings == []
    assert final.stale_baseline == []


# -- unused suppressions ---------------------------------------------------


def test_unused_inline_suppression_is_reported(tmp_path):
    target = _write(
        tmp_path,
        "mod.py",
        """
        def stamp():
            return 1  # lint: ignore[det-wallclock]
        """,
    )
    result = lint_paths([str(target)])
    assert result.findings == []
    assert result.unused_suppressions == [(str(target), 3, "det-wallclock")]
    assert "unused suppression (silences nothing):" in render_text(result)


def test_unused_file_wide_suppression_is_reported(tmp_path):
    target = _write(
        tmp_path,
        "mod.py",
        """
        # lint: ignore-file[det-env-read]
        x = 1
        """,
    )
    result = lint_paths([str(target)])
    assert result.unused_suppressions == [(str(target), None, "det-env-read")]
    document = json.loads(render_json(result))
    assert document["unused_suppressions"] == [
        {"path": str(target), "line": None, "rule": "det-env-read"}
    ]


def test_used_suppression_is_not_reported_as_unused(tmp_path):
    target = _write(
        tmp_path,
        "mod.py",
        """
        import time

        def stamp():
            return time.time()  # lint: ignore[det-wallclock]
        """,
    )
    result = lint_paths([str(target)])
    assert result.suppressed == 1
    assert result.unused_suppressions == []


def test_unused_accounting_is_skipped_under_a_partial_rule_pack(tmp_path):
    # A --rules run cannot tell "stale" from "not selected", so the
    # hygiene pass must stay quiet rather than cry wolf.
    target = _write(
        tmp_path,
        "mod.py",
        """
        import time

        def stamp():
            return time.time()  # lint: ignore[det-wallclock]
        """,
    )
    result = lint_paths([str(target)], rule_ids=["det-env-read"])
    assert result.unused_suppressions == []


# -- CLI surface -----------------------------------------------------------


def test_cli_prune_requires_baseline(tmp_path):
    target = str(_write(tmp_path, "mod.py", CLEAN))
    assert main(["lint", target, "--prune"], out=io.StringIO()) == 2


def test_cli_prune_rewrites_and_reports(tmp_path, capsys):
    target = _write(tmp_path, "mod.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    out = io.StringIO()
    assert main(
        ["lint", str(target), "--write-baseline", baseline_path], out=out
    ) == 0
    target.write_text(CLEAN, encoding="utf-8")
    out = io.StringIO()
    code = main(
        ["lint", str(target), "--baseline", baseline_path, "--prune"],
        out=out,
    )
    assert code == 0
    assert "kept 0 keys, dropped 1 stale" in out.getvalue()
    assert "stale baseline entry" in capsys.readouterr().err
    assert load_baseline(baseline_path) == {}


def test_cli_reports_unused_suppressions_on_stderr(tmp_path, capsys):
    target = _write(
        tmp_path,
        "mod.py",
        """
        def stamp():
            return 1  # lint: ignore[det-wallclock]
        """,
    )
    assert main(["lint", str(target)], out=io.StringIO()) == 0
    err = capsys.readouterr().err
    assert "lint: unused suppression:" in err
    assert "det-wallclock" in err
