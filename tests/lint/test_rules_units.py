"""True-positive and false-positive cases for the units-hygiene rule."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

UNITS = ["unt-mixed-units"]


def test_flags_addition_of_millijoules_and_milliwatts(lint_snippet):
    result = lint_snippet(
        """
        def total(cpu_mj, draw_mw):
            return cpu_mj + draw_mw
        """,
        rules=UNITS,
    )
    assert rule_ids(result) == ["unt-mixed-units"]
    assert "millijoule" in result.findings[0].message
    assert "milliwatt" in result.findings[0].message


def test_flags_subtraction_of_seconds_and_mah(lint_snippet):
    result = lint_snippet(
        """
        def remaining(duration_s, capacity_mah):
            return duration_s - capacity_mah
        """,
        rules=UNITS,
    )
    assert rule_ids(result) == ["unt-mixed-units"]


def test_flags_attribute_operands(lint_snippet):
    result = lint_snippet(
        """
        def skew(spec, pack):
            return spec.duration_s + pack.capacity_mah
        """,
        rules=UNITS,
    )
    assert rule_ids(result) == ["unt-mixed-units"]


def test_flags_augmented_assignment(lint_snippet):
    result = lint_snippet(
        """
        def accumulate(total_mj, delta_mw):
            total_mj += delta_mw
            return total_mj
        """,
        rules=UNITS,
    )
    assert rule_ids(result) == ["unt-mixed-units"]


def test_flags_ordering_comparison(lint_snippet):
    result = lint_snippet(
        """
        def over_budget(elapsed_s, budget_mah):
            return elapsed_s > budget_mah
        """,
        rules=UNITS,
    )
    assert rule_ids(result) == ["unt-mixed-units"]


def test_flags_mixing_seconds_and_milliseconds(lint_snippet):
    # Same dimension, different scale — still an arithmetic bug.
    result = lint_snippet(
        """
        def total(duration_s, latency_ms):
            return duration_s + latency_ms
        """,
        rules=UNITS,
    )
    assert rule_ids(result) == ["unt-mixed-units"]


def test_same_unit_addition_is_clean(lint_snippet):
    result = lint_snippet(
        """
        def total(cpu_mj, gpu_mj):
            return cpu_mj + gpu_mj
        """,
        rules=UNITS,
    )
    assert result.findings == []


def test_multiplication_builds_new_units_and_is_clean(lint_snippet):
    result = lint_snippet(
        """
        def energy(draw_mw, duration_s):
            return draw_mw * duration_s
        """,
        rules=UNITS,
    )
    assert result.findings == []


def test_unsuffixed_operand_is_clean(lint_snippet):
    result = lint_snippet(
        """
        def pad(duration_s, slack):
            return duration_s + slack
        """,
        rules=UNITS,
    )
    assert result.findings == []


def test_equivalent_suffix_spellings_are_clean(lint_snippet):
    # `_s` and `_seconds` both canonicalise to seconds.
    result = lint_snippet(
        """
        def total(duration_s, wall_seconds):
            return duration_s + wall_seconds
        """,
        rules=UNITS,
    )
    assert result.findings == []


def test_plural_identifiers_are_not_unit_suffixes(lint_snippet):
    result = lint_snippet(
        """
        def merge(device_ids, shard_ids):
            return device_ids + shard_ids
        """,
        rules=UNITS,
    )
    assert result.findings == []
