"""Baseline files: accepted findings pass, new findings still fail."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import BaselineError
from repro.lint import lint_paths, load_baseline, write_baseline

from tests.lint.conftest import rule_ids

DIRTY = """
import time

def stamp():
    return time.time()
"""


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


def test_baseline_roundtrip_absorbs_accepted_findings(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    first = lint_paths([target], rule_ids=["det-wallclock"])
    assert len(first.findings) == 1

    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, first)
    second = lint_paths(
        [target],
        rule_ids=["det-wallclock"],
        baseline=load_baseline(baseline_path),
    )
    assert second.clean
    assert second.baselined == 1


def test_new_finding_is_not_absorbed_by_baseline(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(
        baseline_path, lint_paths([target], rule_ids=["det-wallclock"])
    )
    _write(
        tmp_path,
        "dirty.py",
        DIRTY + "\ndef later():\n    return time.monotonic()\n",
    )
    result = lint_paths(
        [target],
        rule_ids=["det-wallclock"],
        baseline=load_baseline(baseline_path),
    )
    assert rule_ids(result) == ["det-wallclock"]
    assert "time.monotonic" in result.findings[0].message
    assert result.baselined == 1


def test_baseline_keys_survive_line_shifts(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(
        baseline_path, lint_paths([target], rule_ids=["det-wallclock"])
    )
    # Push the finding several lines down; the key has no line number.
    _write(tmp_path, "dirty.py", "\n# comment\n# comment\n" + DIRTY)
    result = lint_paths(
        [target],
        rule_ids=["det-wallclock"],
        baseline=load_baseline(baseline_path),
    )
    assert result.clean


def test_load_baseline_rejects_missing_and_corrupt_files(tmp_path):
    with pytest.raises(BaselineError):
        load_baseline(str(tmp_path / "absent.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("not json", encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(str(bad))
    wrong_version = tmp_path / "wrong.json"
    wrong_version.write_text(json.dumps({"version": 2, "findings": {}}))
    with pytest.raises(BaselineError):
        load_baseline(str(wrong_version))


def test_written_baseline_is_sorted_json(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(
        baseline_path, lint_paths([target], rule_ids=["det-wallclock"])
    )
    document = json.loads((tmp_path / "baseline.json").read_text())
    assert document["version"] == 1
    keys = list(document["findings"])
    assert keys == sorted(keys)
    assert all(count >= 1 for count in document["findings"].values())
