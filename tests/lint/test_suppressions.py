"""Suppression comments: inline, file-wide, and their failure modes."""

from __future__ import annotations

from repro.lint import Suppressions
from repro.lint.runner import PARSE_ERROR_RULE

from tests.lint.conftest import rule_ids


def test_inline_ignore_with_rule_id_suppresses(lint_snippet):
    result = lint_snippet(
        """
        import time

        def stamp():
            return time.time()  # lint: ignore[det-wallclock] display only
        """,
        rules=["det-wallclock"],
    )
    assert result.findings == []
    assert result.suppressed == 1


def test_bare_inline_ignore_suppresses_every_rule(lint_snippet):
    result = lint_snippet(
        """
        import time

        def stamp():
            return time.time()  # lint: ignore
        """,
        rules=["det-wallclock"],
    )
    assert result.findings == []


def test_wrong_rule_id_does_not_suppress(lint_snippet):
    result = lint_snippet(
        """
        import time

        def stamp():
            return time.time()  # lint: ignore[det-set-iter]
        """,
        rules=["det-wallclock"],
    )
    assert rule_ids(result) == ["det-wallclock"]
    assert result.suppressed == 0


def test_ignore_file_suppresses_whole_module(lint_snippet):
    result = lint_snippet(
        """
        # lint: ignore-file[det-wallclock]
        import time

        def stamp():
            return time.time() + time.monotonic()
        """,
        rules=["det-wallclock"],
    )
    assert result.findings == []
    assert result.suppressed == 2


def test_ignore_file_without_rule_list_is_a_finding(lint_snippet):
    result = lint_snippet(
        """
        # lint: ignore-file
        import time
        """,
        rules=["det-wallclock"],
    )
    assert rule_ids(result) == [PARSE_ERROR_RULE]


def test_marker_inside_string_literal_does_not_suppress(lint_snippet):
    # The marker shares a line with the finding but lives in a string,
    # so the tokenize-based parser must not honour it.
    result = lint_snippet(
        '''
        import time

        def stamp():
            return time.time(), "see # lint: ignore[det-wallclock]"
        ''',
        rules=["det-wallclock"],
    )
    assert rule_ids(result) == ["det-wallclock"]


def test_suppressions_table_parses_multiple_ids():
    table = Suppressions("x = 1  # lint: ignore[rule-a, rule-b]\n")
    assert table.covers("rule-a", 1)
    assert table.covers("rule-b", 1)
    assert not table.covers("rule-c", 1)
    assert not table.covers("rule-a", 2)
