"""Game-registry and scheme-contract conformance rules."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

GAME_RULES = ["con-game-registry"]
SCHEME_RULES = ["con-scheme-contract"]

SCHEME_BASE = """
    class Scheme:
        name = "abstract"

        def prepare(self, game_name):
            pass

        def make_runner(self, soc, game):
            raise NotImplementedError
"""


class TestGameRegistry:
    def test_registered_game_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "games/registry.py": """
                    from repro.games.colorphun import Colorphun

                    CATALOGUE = (Colorphun,)
                """,
                "games/colorphun.py": """
                    class Colorphun(Game):
                        pass
                """,
            },
            rules=GAME_RULES,
        )
        assert result.findings == []

    def test_unregistered_game_is_flagged(self, lint_tree):
        result = lint_tree(
            {
                "games/registry.py": """
                    from repro.games.colorphun import Colorphun

                    CATALOGUE = (Colorphun,)
                """,
                "games/colorphun.py": """
                    class Colorphun(Game):
                        pass
                """,
                "games/rogue.py": """
                    class RogueGame(Game):
                        pass
                """,
            },
            rules=GAME_RULES,
        )
        assert rule_ids(result) == ["con-game-registry"]
        assert "RogueGame" in result.findings[0].message

    def test_helper_classes_without_game_base_are_ignored(self, lint_tree):
        result = lint_tree(
            {
                "games/registry.py": """
                    CATALOGUE = ()
                """,
                "games/common.py": """
                    class GestureMixer:
                        pass
                """,
            },
            rules=GAME_RULES,
        )
        assert result.findings == []

    def test_missing_registry_disables_rule(self, lint_tree):
        # Partial scans (one module, fixtures) must not drown in noise.
        result = lint_tree(
            {
                "games/rogue.py": """
                    class RogueGame(Game):
                        pass
                """,
            },
            rules=GAME_RULES,
        )
        assert result.findings == []


class TestSchemeContract:
    def test_full_override_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "schemes/base.py": SCHEME_BASE,
                "schemes/good.py": """
                    from repro.schemes.base import Scheme

                    class GoodScheme(Scheme):
                        name = "good"

                        def make_runner(self, soc, game):
                            return object()
                """,
            },
            rules=SCHEME_RULES,
        )
        assert result.findings == []

    def test_missing_abstract_override_is_flagged(self, lint_tree):
        result = lint_tree(
            {
                "schemes/base.py": SCHEME_BASE,
                "schemes/bad.py": """
                    from repro.schemes.base import Scheme

                    class BadScheme(Scheme):
                        name = "bad"

                        def prepare(self, game_name):
                            pass
                """,
            },
            rules=SCHEME_RULES,
        )
        assert rule_ids(result) == ["con-scheme-contract"]
        assert "make_runner" in result.findings[0].message

    def test_missing_name_is_flagged(self, lint_tree):
        result = lint_tree(
            {
                "schemes/base.py": SCHEME_BASE,
                "schemes/anon.py": """
                    from repro.schemes.base import Scheme

                    class AnonScheme(Scheme):
                        def make_runner(self, soc, game):
                            return object()
                """,
            },
            rules=SCHEME_RULES,
        )
        assert rule_ids(result) == ["con-scheme-contract"]
        assert "name" in result.findings[0].message

    def test_inherited_override_through_subclass_chain_is_clean(self, lint_tree):
        result = lint_tree(
            {
                "schemes/base.py": SCHEME_BASE,
                "schemes/good.py": """
                    from repro.schemes.base import Scheme

                    class GoodScheme(Scheme):
                        name = "good"

                        def make_runner(self, soc, game):
                            return object()
                """,
                "schemes/derived.py": """
                    from repro.schemes.good import GoodScheme

                    class DerivedScheme(GoodScheme):
                        name = "derived"
                """,
            },
            rules=SCHEME_RULES,
        )
        assert result.findings == []

    def test_runner_helpers_outside_hierarchy_are_ignored(self, lint_tree):
        result = lint_tree(
            {
                "schemes/base.py": SCHEME_BASE,
                "schemes/helper.py": """
                    class _Runner:
                        pass
                """,
            },
            rules=SCHEME_RULES,
        )
        assert result.findings == []
