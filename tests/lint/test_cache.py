"""Incremental analysis cache: replay, invalidation, tolerance."""

from __future__ import annotations

import json
import textwrap

from repro.lint import AnalysisCache, lint_paths
from repro.lint.core import FileContext

DIRTY = """
    import time

    def stamp():
        return time.time()
"""

CLEAN = "x = 1\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _counting_parse(monkeypatch):
    """Instrument FileContext.parse with a call counter."""
    calls = {"n": 0}
    original = FileContext.parse.__func__

    def counted(cls, path, source, rel_path):
        calls["n"] += 1
        return original(cls, path, source, rel_path)

    monkeypatch.setattr(FileContext, "parse", classmethod(counted))
    return calls


def test_warm_run_replays_without_parsing(tmp_path, monkeypatch):
    _write(tmp_path, "dirty.py", DIRTY)
    _write(tmp_path, "clean.py", CLEAN)
    cache_path = str(tmp_path / ".cache" / "lint.json")
    cold = lint_paths([str(tmp_path)], cache=AnalysisCache(cache_path))
    calls = _counting_parse(monkeypatch)
    warm = lint_paths([str(tmp_path)], cache=AnalysisCache(cache_path))
    assert calls["n"] == 0
    assert warm.findings == cold.findings
    assert warm.files_checked == cold.files_checked
    assert warm.suppressed == cold.suppressed
    assert warm.unused_suppressions == cold.unused_suppressions


def test_editing_a_file_refreshes_its_findings(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    cache_path = str(tmp_path / "lint-cache.json")
    first = lint_paths([str(tmp_path)], cache=AnalysisCache(cache_path))
    assert [f.rule_id for f in first.findings] == ["det-wallclock"]
    target.write_text(CLEAN, encoding="utf-8")
    second = lint_paths([str(tmp_path)], cache=AnalysisCache(cache_path))
    assert second.findings == []
    # And the fix is itself cached: the next run replays it.
    third = lint_paths([str(tmp_path)], cache=AnalysisCache(cache_path))
    assert third.findings == []


def test_baseline_changes_do_not_defeat_the_cache(tmp_path, monkeypatch):
    _write(tmp_path, "dirty.py", DIRTY)
    cache_path = str(tmp_path / "lint-cache.json")
    cold = lint_paths([str(tmp_path)], cache=AnalysisCache(cache_path))
    key = cold.findings[0].baseline_key
    calls = _counting_parse(monkeypatch)
    warm = lint_paths(
        [str(tmp_path)],
        baseline={key: 1},
        cache=AnalysisCache(cache_path),
    )
    # Baseline is applied after cache replay, so the warm run still
    # parses nothing while the finding is absorbed.
    assert calls["n"] == 0
    assert warm.findings == []
    assert warm.baselined == 1


def test_corrupt_cache_is_treated_as_cold(tmp_path):
    _write(tmp_path, "dirty.py", DIRTY)
    cache_path = tmp_path / "lint-cache.json"
    cache_path.write_text("{ not json", encoding="utf-8")
    result = lint_paths(
        [str(tmp_path)], cache=AnalysisCache(str(cache_path))
    )
    assert [f.rule_id for f in result.findings] == ["det-wallclock"]
    # The bad file was rewritten with a valid document.
    document = json.loads(cache_path.read_text(encoding="utf-8"))
    assert document["version"] == 1


def test_cache_written_under_a_different_policy_is_ignored(tmp_path):
    _write(tmp_path, "dirty.py", DIRTY)
    cache_path = str(tmp_path / "lint-cache.json")
    lint_paths(
        [str(tmp_path)],
        rule_ids=["det-set-iter"],
        cache=AnalysisCache(cache_path),
    )
    # Same cache file, full rule pack: the narrowed run's outcomes
    # must not replay (they saw no det-wallclock rule at all).
    result = lint_paths([str(tmp_path)], cache=AnalysisCache(cache_path))
    assert [f.rule_id for f in result.findings] == ["det-wallclock"]


def test_warm_run_over_the_real_tree_is_fast_and_clean(tmp_path):
    """Acceptance bar: a warm incremental run over src/repro in <2s."""
    import pathlib
    import time

    package = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    cache_path = str(tmp_path / "lint-cache.json")
    cold = lint_paths([str(package)], cache=AnalysisCache(cache_path))
    started = time.perf_counter()
    warm = lint_paths([str(package)], cache=AnalysisCache(cache_path))
    elapsed = time.perf_counter() - started
    assert warm.findings == cold.findings == []
    assert elapsed < 2.0


def test_cache_flag_round_trips_through_the_cli(tmp_path):
    import io

    from repro.cli import main

    _write(tmp_path, "dirty.py", DIRTY)
    cache_path = str(tmp_path / "lint-cache.json")
    target = str(tmp_path / "dirty.py")
    assert main(["lint", target, "--cache", cache_path], out=io.StringIO()) == 1
    out = io.StringIO()
    assert main(["lint", target, "--cache", cache_path], out=out) == 1
    assert "det-wallclock" in out.getvalue()
