"""Interprocedural taint pass: sources, propagation, sinks, chains.

The fixture trees mimic the repo layout (``fleet/reducers.py``,
``fleet/work.py``) because the sink specs in ``LintConfig`` are
path-anchored.  The acceptance bar from the issue is pinned here
directly: a wall-clock read two call-hops from an accumulator sink is
flagged with its full chain, while the identical source reached only
from dead code stays silent.
"""

from __future__ import annotations

from tests.lint.conftest import rule_ids

#: An Accumulator hierarchy shaped like fleet/reducers.py.
REDUCERS = """
    from fleet.helpers import stamp

    class Accumulator:
        def update(self, shard):
            raise NotImplementedError

        def merge(self, other):
            raise NotImplementedError

        def finalize(self):
            raise NotImplementedError

    class TotalsAccumulator(Accumulator):
        def update(self, shard):
            self.total = stamp()
"""

HELPERS_HOT = """
    from fleet.clock import read_clock

    def stamp():
        return read_clock()
"""

CLOCK = """
    import time

    def read_clock():
        return time.time()
"""


def test_source_two_hops_from_accumulator_sink_is_flagged_with_chain(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": REDUCERS,
            "fleet/helpers.py": HELPERS_HOT,
            "fleet/clock.py": CLOCK,
        },
        rules=["det-taint"],
    )
    assert rule_ids(result) == ["det-taint-clock"]
    finding = result.findings[0]
    # Anchored at the source site (the time.time() read)...
    assert finding.path.endswith("clock.py")
    # ...with the full sink-to-source chain in the message.
    assert (
        "fleet.reducers.TotalsAccumulator.update -> "
        "fleet.helpers.stamp -> fleet.clock.read_clock"
    ) in finding.message
    assert "wall-clock read of time.time" in finding.message


def test_same_source_reached_only_by_dead_code_is_not_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                class Accumulator:
                    def update(self, shard):
                        return shard

                class TotalsAccumulator(Accumulator):
                    def update(self, shard):
                        return shard + 1
            """,
            # Nothing on any sink path calls into this module.
            "fleet/dead.py": """
                import time

                def never_called_from_a_sink():
                    return time.time()
            """,
        },
        rules=["det-taint"],
    )
    assert result.findings == []


def test_shard_result_constructor_makes_the_function_a_sink(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                import time

                class ShardResult:
                    pass

                def run_shard(task):
                    started = time.monotonic()
                    return ShardResult()
            """,
        },
        rules=["det-taint"],
    )
    assert rule_ids(result) == ["det-taint-clock"]
    assert "fleet.work.run_shard" in result.findings[0].message


def test_env_and_random_kinds_propagate_through_one_hop(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                import os
                import random
                from fleet.util import jitter

                class Accumulator:
                    def update(self, shard):
                        pass

                class A(Accumulator):
                    def update(self, shard):
                        self.jobs = os.getenv("JOBS")
                        self.noise = jitter()
            """,
            "fleet/util.py": """
                import random

                def jitter():
                    return random.random()
            """,
        },
        rules=["det-taint"],
    )
    assert rule_ids(result) == ["det-taint-env", "det-taint-random"]


def test_set_iteration_through_returned_set_is_order_taint(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                from fleet.util import gather_names

                class Accumulator:
                    def update(self, shard):
                        pass

                class A(Accumulator):
                    def update(self, shard):
                        for name in gather_names(shard):
                            self.last = name
            """,
            "fleet/util.py": """
                def gather_names(shard):
                    return {d.name for d in shard}
            """,
        },
        rules=["det-taint"],
    )
    assert rule_ids(result) == ["det-taint-order"]
    assert "set returned by fleet.util.gather_names" in result.findings[0].message


def test_id_and_object_hash_are_sources_but_dunder_hash_is_not(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                class Accumulator:
                    def update(self, shard):
                        pass

                class A(Accumulator):
                    def update(self, shard):
                        self.key = id(shard)

                    def __hash__(self):
                        return hash((self.key,))
            """,
        },
        rules=["det-taint"],
    )
    assert rule_ids(result) == ["det-taint-id"]
    assert "id(...)" in result.findings[0].message


def test_taint_finding_is_suppressible_at_the_source_site(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                from fleet.clock import read_clock

                class Accumulator:
                    def update(self, shard):
                        pass

                class A(Accumulator):
                    def update(self, shard):
                        self.t = read_clock()
            """,
            "fleet/clock.py": """
                import time

                def read_clock():
                    return time.time()  # lint: ignore[det-taint-clock]
            """,
        },
        rules=["det-taint"],
    )
    assert result.findings == []
    assert result.suppressed == 1


def test_registry_canonical_json_state_is_a_sink(lint_tree):
    result = lint_tree(
        {
            "registry/records.py": """
                import time

                class RegistryState:
                    def to_dict(self):
                        return {"at": time.time()}
            """,
        },
        rules=["det-taint"],
    )
    assert rule_ids(result) == ["det-taint-clock"]
    assert "registry.records.RegistryState.to_dict" in result.findings[0].message
