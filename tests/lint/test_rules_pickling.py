"""Pickling-safety rule: payload tracing across a fixture fleet tree."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

PCK = ["pck-payload"]

#: A minimal tree mimicking the package layout the tracer expects:
#: the roots live in fleet/work.py and annotations resolve through
#: ``repro.``-prefixed imports exactly as in the real tree.
WORK_MODULE = """
    from dataclasses import dataclass, field
    from typing import Optional

    from repro.core.table import SnipTable

    @dataclass
    class ShardTask:
        shard_index: int
        table: SnipTable

    @dataclass
    class ShardResult:
        shard_index: int
        device: Optional["DeviceResult"] = None

    @dataclass
    class DeviceResult:
        device_id: int
"""


def test_clean_payload_tree_has_no_findings(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self, entries):
                        self.entries = dict(entries)
            """,
        },
        rules=PCK,
    )
    assert result.findings == []


def test_flags_lambda_field_default_in_traced_class(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    compare = lambda self, a, b: a < b
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]
    assert "SnipTable" in result.findings[0].message


def test_flags_lambda_stored_on_instance_attribute(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self):
                        self.scorer = lambda key: hash(key)
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]


def test_flags_lambda_in_root_class_itself(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                from dataclasses import dataclass

                @dataclass
                class ShardTask:
                    keyfn = lambda self: 0
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]


def test_flags_open_handle_on_instance_attribute(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self, path):
                        self.log = open(path, "a")
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-handle"]


def test_flags_thread_lock_and_stream_attributes(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                import sys
                import threading

                class SnipTable:
                    def __init__(self):
                        self.guard = threading.Lock()
                        self.out = sys.stderr
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-handle", "pck-handle"]


def test_flags_locally_defined_function_stored_on_self(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self):
                        def probe(key):
                            return key in self
                        self.probe = probe
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]
    assert "probe" in result.findings[0].message


def test_default_factory_lambda_is_exempt(lint_tree):
    # The factory runs at __init__ time; only its result is pickled.
    result = lint_tree(
        {
            "fleet/work.py": """
                from dataclasses import dataclass, field

                @dataclass
                class ShardTask:
                    entries: dict = field(default_factory=lambda: {})
            """,
        },
        rules=PCK,
    )
    assert result.findings == []


def test_unreachable_class_with_lambda_is_not_flagged(lint_tree):
    # The hazard sits in a class no payload annotation reaches.
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self, entries):
                        self.entries = dict(entries)
            """,
            "core/unrelated.py": """
                class Scratchpad:
                    keyfn = lambda self: 0
            """,
        },
        rules=PCK,
    )
    assert result.findings == []


#: A traced-to class carrying an unpicklable hazard; tests below vary
#: only the annotation that does (or does not) reach it.
HAZARD_TABLE = """
    class SnipTable:
        compare = lambda self, a, b: a < b
"""


def _work_with(annotation, extra_imports=""):
    return f"""
        from dataclasses import dataclass
        from typing import (
            Callable, ClassVar, Dict, List, Literal, Mapping,
            Optional, Sequence, Tuple,
        )

        from repro.core.table import SnipTable
        {extra_imports}

        @dataclass
        class ShardTask:
            payload: {annotation}
    """


class TestAnnotationGenerics:
    """The annotation walker behind the payload trace.

    Each case keeps the hazard fixed (a lambda on ``SnipTable``) and
    varies only the annotation on the root dataclass: if the walker
    sees through the generic, the hazard is reached and flagged; if
    the head is opaque (``ClassVar``, ``Literal``, ``Callable``), the
    class is never traced and the tree is clean.
    """

    def _lint(self, lint_tree, annotation, extra_imports=""):
        return lint_tree(
            {
                "fleet/work.py": _work_with(annotation, extra_imports),
                "core/table.py": HAZARD_TABLE,
            },
            rules=PCK,
        )

    def test_optional_reaches_the_argument(self, lint_tree):
        result = self._lint(lint_tree, "Optional[SnipTable]")
        assert rule_ids(result) == ["pck-lambda"]

    def test_sequence_reaches_the_element(self, lint_tree):
        result = self._lint(lint_tree, "Sequence[SnipTable]")
        assert rule_ids(result) == ["pck-lambda"]

    def test_mapping_reaches_both_key_and_value(self, lint_tree):
        result = self._lint(lint_tree, "Mapping[str, SnipTable]")
        assert rule_ids(result) == ["pck-lambda"]

    def test_pep_604_union_reaches_every_arm(self, lint_tree):
        result = self._lint(lint_tree, "SnipTable | None")
        assert rule_ids(result) == ["pck-lambda"]

    def test_nested_generics_reach_the_innermost_argument(self, lint_tree):
        result = self._lint(
            lint_tree, "Dict[str, List[Tuple[int, SnipTable]]]"
        )
        assert rule_ids(result) == ["pck-lambda"]

    def test_quoted_generic_annotation_is_parsed(self, lint_tree):
        result = self._lint(lint_tree, '"Optional[SnipTable]"')
        assert rule_ids(result) == ["pck-lambda"]

    def test_dotted_reference_resolves_through_module_import(self, lint_tree):
        result = lint_tree(
            {
                "fleet/work.py": """
                    import repro.core.table as tbl
                    from dataclasses import dataclass
                    from typing import Optional

                    @dataclass
                    class ShardTask:
                        payload: Optional[tbl.SnipTable]
                """,
                "core/table.py": HAZARD_TABLE,
            },
            rules=PCK,
        )
        assert rule_ids(result) == ["pck-lambda"]

    def test_classvar_is_not_part_of_the_pickled_payload(self, lint_tree):
        # ClassVar fields are not pickled by dataclasses, so the
        # referenced class must not be traced.
        result = self._lint(lint_tree, "ClassVar[SnipTable]")
        assert result.findings == []

    def test_literal_arguments_are_values_not_types(self, lint_tree):
        result = self._lint(lint_tree, 'Literal["snip", "table"]')
        assert result.findings == []

    def test_callable_signature_types_are_not_traced(self, lint_tree):
        # A Callable annotation describes a function, which pck-lambda
        # polices separately; its signature must not drag SnipTable in.
        result = self._lint(lint_tree, "Callable[[SnipTable], int]")
        assert result.findings == []


def test_trace_follows_quoted_forward_references(lint_tree):
    # ShardResult references DeviceResult via a quoted annotation.
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE.replace(
                "device_id: int",
                "device_id: int\n"
                "        def __init__(self):\n"
                "            self.fmt = lambda: ''",
            ),
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]
