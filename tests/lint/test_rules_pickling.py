"""Pickling-safety rule: payload tracing across a fixture fleet tree."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

PCK = ["pck-payload"]

#: A minimal tree mimicking the package layout the tracer expects:
#: the roots live in fleet/work.py and annotations resolve through
#: ``repro.``-prefixed imports exactly as in the real tree.
WORK_MODULE = """
    from dataclasses import dataclass, field
    from typing import Optional

    from repro.core.table import SnipTable

    @dataclass
    class ShardTask:
        shard_index: int
        table: SnipTable

    @dataclass
    class ShardResult:
        shard_index: int
        device: Optional["DeviceResult"] = None

    @dataclass
    class DeviceResult:
        device_id: int
"""


def test_clean_payload_tree_has_no_findings(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self, entries):
                        self.entries = dict(entries)
            """,
        },
        rules=PCK,
    )
    assert result.findings == []


def test_flags_lambda_field_default_in_traced_class(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    compare = lambda self, a, b: a < b
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]
    assert "SnipTable" in result.findings[0].message


def test_flags_lambda_stored_on_instance_attribute(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self):
                        self.scorer = lambda key: hash(key)
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]


def test_flags_lambda_in_root_class_itself(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                from dataclasses import dataclass

                @dataclass
                class ShardTask:
                    keyfn = lambda self: 0
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]


def test_flags_open_handle_on_instance_attribute(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self, path):
                        self.log = open(path, "a")
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-handle"]


def test_flags_thread_lock_and_stream_attributes(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                import sys
                import threading

                class SnipTable:
                    def __init__(self):
                        self.guard = threading.Lock()
                        self.out = sys.stderr
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-handle", "pck-handle"]


def test_flags_locally_defined_function_stored_on_self(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self):
                        def probe(key):
                            return key in self
                        self.probe = probe
            """,
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]
    assert "probe" in result.findings[0].message


def test_default_factory_lambda_is_exempt(lint_tree):
    # The factory runs at __init__ time; only its result is pickled.
    result = lint_tree(
        {
            "fleet/work.py": """
                from dataclasses import dataclass, field

                @dataclass
                class ShardTask:
                    entries: dict = field(default_factory=lambda: {})
            """,
        },
        rules=PCK,
    )
    assert result.findings == []


def test_unreachable_class_with_lambda_is_not_flagged(lint_tree):
    # The hazard sits in a class no payload annotation reaches.
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE,
            "core/table.py": """
                class SnipTable:
                    def __init__(self, entries):
                        self.entries = dict(entries)
            """,
            "core/unrelated.py": """
                class Scratchpad:
                    keyfn = lambda self: 0
            """,
        },
        rules=PCK,
    )
    assert result.findings == []


def test_trace_follows_quoted_forward_references(lint_tree):
    # ShardResult references DeviceResult via a quoted annotation.
    result = lint_tree(
        {
            "fleet/work.py": WORK_MODULE.replace(
                "device_id: int",
                "device_id: int\n"
                "        def __init__(self):\n"
                "            self.fmt = lambda: ''",
            ),
        },
        rules=PCK,
    )
    assert rule_ids(result) == ["pck-lambda"]
