"""True-positive and false-positive cases for the determinism rules."""

from __future__ import annotations

from tests.lint.conftest import rule_ids

DET_RULES = ("det-wallclock", "det-unseeded-random", "det-env-read",
             "det-set-iter")


class TestWallClock:
    def test_flags_time_time_call(self, lint_snippet):
        result = lint_snippet(
            """
            import time

            def stamp():
                return time.time()
            """,
            rules=["det-wallclock"],
        )
        assert rule_ids(result) == ["det-wallclock"]
        assert result.findings[0].line == 5

    def test_flags_aliased_import(self, lint_snippet):
        result = lint_snippet(
            """
            import time as t

            def stamp():
                return t.perf_counter()
            """,
            rules=["det-wallclock"],
        )
        assert rule_ids(result) == ["det-wallclock"]

    def test_flags_from_import_reference_without_call(self, lint_snippet):
        # Passing the clock as a default argument smuggles it just as
        # effectively as calling it.
        result = lint_snippet(
            """
            from time import monotonic

            def make(clock=monotonic):
                return clock
            """,
            rules=["det-wallclock"],
        )
        assert rule_ids(result) == ["det-wallclock"]

    def test_flags_datetime_now(self, lint_snippet):
        result = lint_snippet(
            """
            import datetime

            def today():
                return datetime.datetime.now()
            """,
            rules=["det-wallclock"],
        )
        assert rule_ids(result) == ["det-wallclock"]

    def test_ignores_simulated_time_and_sleep(self, lint_snippet):
        result = lint_snippet(
            """
            import time

            def advance(soc, dt):
                soc.advance_time(dt)
                time.sleep(0)  # throttling, not a clock read
            """,
            rules=["det-wallclock"],
        )
        assert result.findings == []

    def test_ignores_local_attribute_named_time(self, lint_snippet):
        result = lint_snippet(
            """
            def run(event):
                return event.time
            """,
            rules=["det-wallclock"],
        )
        assert result.findings == []


class TestUnseededRandom:
    def test_flags_stdlib_global_rng(self, lint_snippet):
        result = lint_snippet(
            """
            import random

            def roll():
                return random.randint(1, 6)
            """,
            rules=["det-unseeded-random"],
        )
        assert rule_ids(result) == ["det-unseeded-random"]

    def test_flags_from_import_call(self, lint_snippet):
        result = lint_snippet(
            """
            from random import random

            def draw():
                return random()
            """,
            rules=["det-unseeded-random"],
        )
        assert rule_ids(result) == ["det-unseeded-random"]

    def test_flags_numpy_global_rng(self, lint_snippet):
        result = lint_snippet(
            """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
            rules=["det-unseeded-random"],
        )
        assert rule_ids(result) == ["det-unseeded-random"]

    def test_allows_seeded_generators(self, lint_snippet):
        result = lint_snippet(
            """
            import random
            import numpy as np

            def generators(seed):
                return random.Random(seed), np.random.default_rng(seed)
            """,
            rules=["det-unseeded-random"],
        )
        assert result.findings == []

    def test_allows_method_on_generator_object(self, lint_snippet):
        result = lint_snippet(
            """
            def draw(rng):
                return rng.normal()
            """,
            rules=["det-unseeded-random"],
        )
        assert result.findings == []


class TestEnvRead:
    def test_flags_environ_subscript_and_getenv(self, lint_snippet):
        result = lint_snippet(
            """
            import os

            def configured():
                return os.environ["JOBS"], os.getenv("SHARDS")
            """,
            rules=["det-env-read"],
        )
        assert rule_ids(result) == ["det-env-read", "det-env-read"]

    def test_allows_env_in_cli_module(self, lint_snippet):
        result = lint_snippet(
            """
            import os

            def configured():
                return os.getenv("JOBS")
            """,
            rules=["det-env-read"],
            filename="cli.py",
        )
        assert result.findings == []

    def test_ignores_unrelated_environ_attribute(self, lint_snippet):
        result = lint_snippet(
            """
            def read(config):
                return config.environ
            """,
            rules=["det-env-read"],
        )
        assert result.findings == []


class TestSetIteration:
    def test_flags_for_over_set_call(self, lint_snippet):
        result = lint_snippet(
            """
            def walk(names):
                for name in set(names):
                    print(name)
            """,
            rules=["det-set-iter"],
        )
        assert rule_ids(result) == ["det-set-iter"]

    def test_flags_union_of_sets(self, lint_snippet):
        result = lint_snippet(
            """
            def merge(a, b):
                out = {}
                for key in set(a) | set(b):
                    out[key] = a.get(key, b.get(key))
                return out
            """,
            rules=["det-set-iter"],
        )
        assert rule_ids(result) == ["det-set-iter"]

    def test_flags_comprehension_over_set_literal(self, lint_snippet):
        result = lint_snippet(
            """
            def squares():
                return [x * x for x in {1, 2, 3}]
            """,
            rules=["det-set-iter"],
        )
        assert rule_ids(result) == ["det-set-iter"]

    def test_sorted_wrapper_is_clean(self, lint_snippet):
        result = lint_snippet(
            """
            def walk(a, b):
                for name in sorted(set(a) | set(b)):
                    print(name)
            """,
            rules=["det-set-iter"],
        )
        assert result.findings == []

    def test_plain_list_iteration_is_clean(self, lint_snippet):
        result = lint_snippet(
            """
            def walk(names):
                for name in names:
                    print(name)
            """,
            rules=["det-set-iter"],
        )
        assert result.findings == []


class TestSetTypedLocals:
    """The dataflow half of det-set-iter: locals that hold sets."""

    def test_flags_local_assigned_from_set_call(self, lint_snippet):
        result = lint_snippet(
            """
            def walk(names):
                unique = set(names)
                for name in unique:
                    print(name)
            """,
            rules=["det-set-iter"],
        )
        assert rule_ids(result) == ["det-set-iter"]
        assert "'unique'" in result.findings[0].message
        assert "set-typed local" in result.findings[0].message

    def test_flags_set_annotated_local(self, lint_snippet):
        result = lint_snippet(
            """
            from typing import Set

            def walk(loader):
                names: Set[str] = loader.names()
                for name in names:
                    print(name)
            """,
            rules=["det-set-iter"],
        )
        assert rule_ids(result) == ["det-set-iter"]

    def test_flags_module_level_set_local(self, lint_snippet):
        result = lint_snippet(
            """
            NAMES = frozenset(["a", "b"])

            for name in NAMES:
                print(name)
            """,
            rules=["det-set-iter"],
        )
        assert rule_ids(result) == ["det-set-iter"]

    def test_local_rebound_to_a_list_is_clean(self, lint_snippet):
        # One binding is a set, but another makes the name a list —
        # the rule only fires when every binding is set-producing.
        result = lint_snippet(
            """
            def walk(names, ordered):
                unique = set(names)
                if ordered:
                    unique = sorted(names)
                for name in unique:
                    print(name)
            """,
            rules=["det-set-iter"],
        )
        assert result.findings == []

    def test_sorted_set_local_is_clean(self, lint_snippet):
        result = lint_snippet(
            """
            def walk(names):
                unique = set(names)
                for name in sorted(unique):
                    print(name)
            """,
            rules=["det-set-iter"],
        )
        assert result.findings == []

    def test_loop_target_name_is_not_treated_as_set(self, lint_snippet):
        # ``group`` is bound by the outer loop, not a set constructor.
        result = lint_snippet(
            """
            def walk(groups):
                for group in groups:
                    for item in group:
                        print(item)
            """,
            rules=["det-set-iter"],
        )
        assert result.findings == []
