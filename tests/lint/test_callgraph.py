"""Project symbol table and call graph: binding and reachability.

The interprocedural passes are only as good as the edges this module
resolves, so the fixtures here pin every binding form the graph
promises to see: same-module calls, aliased imports, re-exports
through package ``__init__``, ``self.method`` dispatch, constructor
edges, typed-parameter receivers, and recursion.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List

from repro.lint.callgraph import module_name, project_graph
from repro.lint.core import FileContext


def parse_tree(tmp_path, files: Dict[str, str]) -> List[FileContext]:
    contexts = []
    for rel_path, source in sorted(files.items()):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        text = textwrap.dedent(source)
        path.write_text(text, encoding="utf-8")
        contexts.append(FileContext.parse(str(path), text, rel_path))
    return contexts


def edges_of(graph, qualname):
    return sorted(edge.callee for edge in graph.callees(qualname))


def test_module_name_handles_packages_and_init():
    assert module_name("fleet/work.py") == "fleet.work"
    assert module_name("registry/__init__.py") == "registry"
    assert module_name("__init__.py") == ""


def test_same_module_and_imported_function_calls_resolve(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "util.py": """
            def helper():
                return 1
        """,
        "main.py": """
            from util import helper

            def local():
                return 2

            def entry():
                local()
                helper()
        """,
    }))
    assert edges_of(graph, "main.entry") == ["main.local", "util.helper"]


def test_aliased_module_attribute_calls_resolve(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "pkg/util.py": """
            def helper():
                return 1
        """,
        "main.py": """
            import pkg.util as u

            def entry():
                return u.helper()
        """,
    }))
    assert edges_of(graph, "main.entry") == ["pkg.util.helper"]


def test_reexport_through_package_init_resolves(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "pkg/__init__.py": """
            from pkg.impl import helper
        """,
        "pkg/impl.py": """
            def helper():
                return 1
        """,
        "main.py": """
            from pkg import helper

            def entry():
                return helper()
        """,
    }))
    assert edges_of(graph, "main.entry") == ["pkg.impl.helper"]


def test_self_method_dispatch_includes_base_classes(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "shapes.py": """
            class Base:
                def shared(self):
                    return 0

            class Derived(Base):
                def entry(self):
                    self.own()
                    self.shared()

                def own(self):
                    return 1
        """,
    }))
    assert edges_of(graph, "shapes.Derived.entry") == [
        "shapes.Base.shared", "shapes.Derived.own",
    ]


def test_constructor_call_records_instantiation_and_init_edge(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "model.py": """
            class Payload:
                def __init__(self):
                    self.x = 1
        """,
        "main.py": """
            from model import Payload

            def build():
                return Payload()
        """,
    }))
    assert [i.class_qualname for i in graph.instantiations["main.build"]] == [
        "model.Payload"
    ]
    assert edges_of(graph, "main.build") == ["model.Payload.__init__"]


def test_annotated_parameter_receiver_binds_methods(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "model.py": """
            class Table:
                def fold(self):
                    return 1
        """,
        "main.py": """
            from model import Table

            def entry(table: Table):
                return table.fold()
        """,
    }))
    assert edges_of(graph, "main.entry") == ["model.Table.fold"]


def test_local_constructor_assignment_types_the_receiver(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "model.py": """
            class Table:
                def fold(self):
                    return 1
        """,
        "main.py": """
            from model import Table

            def entry():
                table = Table()
                return table.fold()
        """,
    }))
    assert "model.Table.fold" in edges_of(graph, "main.entry")


def test_recursion_and_cycles_terminate(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "main.py": """
            def ping():
                return pong()

            def pong():
                return ping()
        """,
    }))
    reachable = graph.reachable_from(["main.ping"])
    assert sorted(reachable) == ["main.ping", "main.pong"]


def test_reachability_parents_rebuild_the_call_chain(tmp_path):
    graph = project_graph(parse_tree(tmp_path, {
        "a.py": """
            from b import middle

            def entry():
                return middle()
        """,
        "b.py": """
            from c import deep

            def middle():
                return deep()
        """,
        "c.py": """
            def deep():
                return 1

            def dead():
                return 2
        """,
    }))
    parents = graph.reachable_from(["a.entry"])
    assert graph.call_chain(parents, "c.deep") == [
        "a.entry", "b.middle", "c.deep",
    ]
    # Dead code is not reachable, so no chain exists for it.
    assert "c.dead" not in parents


def test_graph_is_memoized_by_content(tmp_path):
    contexts = parse_tree(tmp_path, {
        "main.py": """
            def f():
                return 1
        """,
    })
    assert project_graph(contexts) is project_graph(contexts)
