"""SARIF 2.1.0 reporter: document shape, rule catalogue, locations."""

from __future__ import annotations

import io
import json
import textwrap

from repro.cli import main
from repro.lint import render_sarif
from repro.lint.core import RULE_REGISTRY

SNIPPET = """
import time

def stamp():
    return time.time()
"""


def _run(document_text):
    document = json.loads(document_text)
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-2.1.0.json")
    (run,) = document["runs"]
    return run


def test_sarif_document_shape_and_result_location(lint_snippet):
    result = lint_snippet(SNIPPET, rules=["det-wallclock"])
    run = _run(render_sarif(result))
    assert run["tool"]["driver"]["name"] == "repro-lint"
    (sarif_result,) = run["results"]
    assert sarif_result["ruleId"] == "det-wallclock"
    assert sarif_result["level"] == "error"
    region = sarif_result["locations"][0]["physicalLocation"]["region"]
    # 1-based, like the text reporter's clickable locations.
    assert region["startLine"] == 5
    assert region["startColumn"] == 12


def test_rule_catalogue_expands_multi_id_rules(lint_snippet):
    result = lint_snippet("x = 1\n", rules=["det-wallclock"])
    run = _run(render_sarif(result))
    ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    # Every registered single-id rule appears...
    for rule_id, cls in RULE_REGISTRY.items():
        if cls.emits:
            # ...and emits-style rules publish one descriptor per
            # finding id (results reference det-taint-clock, never the
            # umbrella det-taint).
            assert rule_id not in ids
            assert set(cls.emits) <= ids
        else:
            assert rule_id in ids
    assert "parse-error" in ids
    for rule in run["tool"]["driver"]["rules"]:
        assert rule["defaultConfiguration"]["level"] == "error"
        assert rule["shortDescription"]["text"]


def test_every_result_rule_id_has_a_descriptor(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                import time

                class Accumulator:
                    def update(self, shard):
                        self.at = time.time()
            """,
        },
    )
    run = _run(render_sarif(result))
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    emitted = {r["ruleId"] for r in run["results"]}
    assert "det-taint-clock" in emitted
    assert emitted <= declared


def test_clean_run_renders_empty_results(lint_snippet):
    result = lint_snippet("x = 1\n")
    run = _run(render_sarif(result))
    assert run["results"] == []


def test_cli_format_sarif(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(SNIPPET), encoding="utf-8")
    out = io.StringIO()
    assert main(["lint", str(path), "--format", "sarif"], out=out) == 1
    run = _run(out.getvalue())
    assert [r["ruleId"] for r in run["results"]] == ["det-wallclock"]
