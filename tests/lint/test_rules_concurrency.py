"""Concurrency rules: worker globals, closure payloads, unordered folds."""

from __future__ import annotations

from tests.lint.conftest import rule_ids


# -- conc-global-mutation --------------------------------------------------


def test_worker_reachable_global_mutation_is_flagged_with_chain(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                from fleet.metrics import record

                def run_shard(task):
                    record(task)
            """,
            "fleet/metrics.py": """
                SEEN = []

                def record(task):
                    SEEN.append(task)
            """,
        },
        rules=["conc-global-mutation"],
    )
    assert rule_ids(result) == ["conc-global-mutation"]
    finding = result.findings[0]
    assert finding.path.endswith("metrics.py")
    assert "'SEEN'" in finding.message
    assert "fleet.work.run_shard -> fleet.metrics.record" in finding.message


def test_global_statement_rebind_in_worker_is_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                COUNTER = 0

                def run_shard(task):
                    global COUNTER
                    COUNTER = COUNTER + 1
            """,
        },
        rules=["conc-global-mutation"],
    )
    assert rule_ids(result) == ["conc-global-mutation"]
    assert "'COUNTER'" in result.findings[0].message


def test_local_shadowing_a_module_name_is_not_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                CACHE = {}

                def run_shard(task):
                    CACHE = {}
                    CACHE["x"] = task
                    return CACHE
            """,
        },
        rules=["conc-global-mutation"],
    )
    assert result.findings == []


def test_mutation_outside_the_worker_graph_is_not_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                def run_shard(task):
                    return task
            """,
            "fleet/registry.py": """
                REGISTRY = {}

                def register(name, value):
                    REGISTRY[name] = value
            """,
        },
        rules=["conc-global-mutation"],
    )
    assert result.findings == []


# -- conc-unpicklable-closure ----------------------------------------------


def test_helper_returned_closure_stored_on_payload_is_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                from fleet.handlers import make_handler

                class ShardTask:
                    def __init__(self):
                        self.on_event = make_handler()
            """,
            "fleet/handlers.py": """
                def make_handler():
                    def handle(event):
                        return event
                    return handle
            """,
        },
        rules=["conc-unpicklable-closure"],
    )
    assert rule_ids(result) == ["conc-unpicklable-closure"]
    assert "closure returned by fleet.handlers.make_handler" in (
        result.findings[0].message
    )


def test_closure_through_two_helpers_is_still_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                from fleet.handlers import default_handler

                class ShardResult:
                    def __init__(self):
                        self.callback = default_handler()
            """,
            "fleet/handlers.py": """
                def default_handler():
                    return build()

                def build():
                    return lambda event: event
            """,
        },
        rules=["conc-unpicklable-closure"],
    )
    assert rule_ids(result) == ["conc-unpicklable-closure"]


def test_helper_returning_a_value_is_not_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                from fleet.handlers import default_limit

                class ShardTask:
                    def __init__(self):
                        self.limit = default_limit()
            """,
            "fleet/handlers.py": """
                def default_limit():
                    return 32
            """,
        },
        rules=["conc-unpicklable-closure"],
    )
    assert result.findings == []


def test_closure_on_a_non_payload_class_is_not_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/work.py": """
                class ShardTask:
                    pass
            """,
            "fleet/local.py": """
                def make():
                    return lambda x: x

                class InProcessOnly:
                    def __init__(self):
                        self.fn = make()
            """,
        },
        rules=["conc-unpicklable-closure"],
    )
    assert result.findings == []


# -- flt-unordered-reduce --------------------------------------------------


def test_float_accumulation_over_set_in_fold_path_is_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                class Accumulator:
                    def update(self, shard):
                        pass

                class EnergyAccumulator(Accumulator):
                    def update(self, shard):
                        total = 0.0
                        for device in {d for d in shard.devices}:
                            total += device.joules
                        self.total = total
            """,
        },
        rules=["flt-unordered-reduce"],
    )
    assert rule_ids(result) == ["flt-unordered-reduce"]
    assert "a set expression" in result.findings[0].message


def test_accumulation_over_os_listing_in_fold_helper_is_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                from fleet.disk import sum_sizes

                class Accumulator:
                    def merge(self, other):
                        pass

                class SizeAccumulator(Accumulator):
                    def merge(self, other):
                        self.bytes = sum_sizes(other.root)
            """,
            "fleet/disk.py": """
                import os

                def sum_sizes(root):
                    total = 0.0
                    for name in os.listdir(root):
                        total = total + len(name)
                    return total
            """,
        },
        rules=["flt-unordered-reduce"],
    )
    assert rule_ids(result) == ["flt-unordered-reduce"]
    assert "os.listdir" in result.findings[0].message


def test_sorted_iteration_in_fold_path_is_not_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                class Accumulator:
                    def update(self, shard):
                        pass

                class EnergyAccumulator(Accumulator):
                    def update(self, shard):
                        total = 0.0
                        for device in sorted({d for d in shard.devices}):
                            total += device.joules
                        self.total = total
            """,
        },
        rules=["flt-unordered-reduce"],
    )
    assert result.findings == []


def test_accumulation_outside_fold_paths_is_not_flagged(lint_tree):
    result = lint_tree(
        {
            "fleet/reducers.py": """
                class Accumulator:
                    def update(self, shard):
                        pass
            """,
            "fleet/elsewhere.py": """
                def tally(items):
                    total = 0.0
                    for item in {i for i in items}:
                        total += item
                    return total
            """,
        },
        rules=["flt-unordered-reduce"],
    )
    assert result.findings == []
