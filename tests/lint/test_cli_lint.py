"""The ``repro-snip lint`` command: exit codes, formats, baselines."""

from __future__ import annotations

import io
import json
import textwrap

from repro.cli import main

DIRTY = """
import time

def stamp():
    return time.time()
"""

CLEAN = "x = 1\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


def test_clean_tree_exits_zero(tmp_path):
    target = _write(tmp_path, "clean.py", CLEAN)
    out = io.StringIO()
    assert main(["lint", target], out=out) == 0
    assert "0 findings" in out.getvalue()


def test_findings_exit_nonzero(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    out = io.StringIO()
    assert main(["lint", target], out=out) == 1
    assert "det-wallclock" in out.getvalue()


def test_json_format_is_machine_readable(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    out = io.StringIO()
    assert main(["lint", target, "--format", "json"], out=out) == 1
    document = json.loads(out.getvalue())
    assert document["findings"][0]["rule"] == "det-wallclock"


def test_rules_flag_narrows_the_pack(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    out = io.StringIO()
    assert main(["lint", target, "--rules", "det-set-iter"], out=out) == 0


def test_unknown_rule_id_exits_two(tmp_path):
    target = _write(tmp_path, "clean.py", CLEAN)
    assert main(
        ["lint", target, "--rules", "no-such-rule"], out=io.StringIO()
    ) == 2


def test_missing_path_exits_two(tmp_path):
    assert main(
        ["lint", str(tmp_path / "missing")], out=io.StringIO()
    ) == 2


def test_write_then_use_baseline(tmp_path):
    target = _write(tmp_path, "dirty.py", DIRTY)
    baseline = str(tmp_path / "baseline.json")
    out = io.StringIO()
    assert main(["lint", target, "--write-baseline", baseline], out=out) == 0
    assert "1 accepted finding keys" in out.getvalue()
    assert main(["lint", target, "--baseline", baseline], out=io.StringIO()) == 0
    # The baseline only covers what it recorded: a clean slate baseline
    # on a different file does not absorb this file's findings.
    other = _write(tmp_path, "other.py", DIRTY)
    assert main(["lint", other, "--baseline", baseline], out=io.StringIO()) == 1


def test_list_rules_names_every_pack(tmp_path):
    out = io.StringIO()
    assert main(["lint", "--list-rules"], out=out) == 0
    listing = out.getvalue()
    for rule_id in ("det-wallclock", "det-unseeded-random", "det-env-read",
                    "det-set-iter", "pck-payload", "unt-mixed-units",
                    "con-game-registry", "con-scheme-contract"):
        assert rule_id in listing
