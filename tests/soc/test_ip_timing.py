"""Timing-model tests for IP invocations and session wall time."""

import pytest

from repro.soc.energy import EnergyMeter
from repro.soc.ip import Gpu
from repro.soc.power_profiles import pixel_xl_profiles
from repro.soc.soc import snapdragon_821


class TestIpTiming:
    def test_duration_follows_work_rate(self):
        profiles = pixel_xl_profiles()
        gpu = Gpu("gpu", EnergyMeter(), profiles.gpu)
        invocation = gpu.invoke(profiles.gpu.work_rate_per_second)
        assert invocation.seconds == pytest.approx(1.0)

    def test_zero_work_takes_no_time(self):
        profiles = pixel_xl_profiles()
        gpu = Gpu("gpu", EnergyMeter(), profiles.gpu)
        invocation = gpu.invoke(0.0, bytes_in=1000)
        assert invocation.seconds == 0.0
        assert invocation.energy_joules > 0  # setup + bytes still paid

    def test_display_frame_takes_a_sixtieth(self):
        soc = snapdragon_821()
        invocation = soc.ip("display").invoke(1.0)
        assert invocation.seconds == pytest.approx(1.0 / 60.0)

    def test_invocation_record_fields(self):
        soc = snapdragon_821()
        invocation = soc.ip("dsp").invoke(2.0, bytes_in=10, bytes_out=20)
        assert invocation.ip_name == "dsp"
        assert invocation.work_units == 2.0
        assert invocation.bytes_moved == 30


class TestTableEntryMath:
    def test_avg_cycles_is_mean_over_occurrences(self, ab_records, ab_package,
                                                  snip_config):
        from collections import defaultdict

        from repro.core.table import SnipTable

        table = SnipTable.build(ab_records, ab_package.selection, snip_config)
        # Recompute one entry's mean by hand.
        sums = defaultdict(list)
        for record in ab_records:
            fields = ab_package.selection.fields_for(record.event_type)
            key = SnipTable.key_for_record(record, fields)
            sums[(record.event_type, key)].append(record.trace.total_cycles)
        checked = 0
        for (event_type, key), cycles in sums.items():
            entry = table.lookup(event_type, key)
            if entry is None:
                continue
            assert entry.avg_cycles == pytest.approx(sum(cycles) / len(cycles))
            checked += 1
            if checked > 20:
                break
        assert checked > 0
