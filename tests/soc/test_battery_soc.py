"""Tests for the battery model and the assembled SoC."""

import pytest

from repro.errors import BatteryDepletedError, SimulationError
from repro.soc.battery import PIXEL_XL_CAPACITY_MAH, Battery
from repro.soc.component import ComponentGroup
from repro.soc.soc import (
    IP_DISPLAY,
    IP_GPU,
    SENSOR_TOUCH,
    snapdragon_821,
)


class TestBattery:
    def test_full_on_creation(self):
        battery = Battery()
        assert battery.remaining_fraction == 1.0
        assert not battery.is_depleted

    def test_drain_reduces_charge(self):
        battery = Battery()
        battery.drain(battery.capacity_joules / 2)
        assert battery.remaining_fraction == pytest.approx(0.5)

    def test_drain_clamps_at_zero(self):
        battery = Battery()
        battery.drain(battery.capacity_joules * 2)
        assert battery.remaining_fraction == 0.0
        assert battery.is_depleted

    def test_drain_after_depletion_raises(self):
        battery = Battery()
        battery.drain(battery.capacity_joules)
        with pytest.raises(BatteryDepletedError):
            battery.drain(1.0)

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery().drain(-1.0)

    def test_recharge(self):
        battery = Battery()
        battery.drain(battery.capacity_joules)
        battery.recharge_full()
        assert battery.remaining_fraction == 1.0

    def test_hours_to_empty(self):
        battery = Battery()
        watts = battery.capacity_joules / 3600.0
        assert battery.hours_to_empty(watts) == pytest.approx(1.0)

    def test_hours_to_empty_requires_positive_power(self):
        with pytest.raises(ValueError):
            Battery().hours_to_empty(0.0)

    def test_default_capacity_is_pixel_xl(self):
        assert Battery().capacity_mah == PIXEL_XL_CAPACITY_MAH

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)


class TestSoc:
    def test_all_components_present(self):
        soc = snapdragon_821()
        components = soc.all_components()
        assert "cpu" in components and "dram" in components
        assert IP_GPU in components and SENSOR_TOUCH in components
        assert len(soc.ips) == 7
        assert len(soc.sensors) == 5

    def test_unknown_ip_rejected(self):
        with pytest.raises(SimulationError):
            snapdragon_821().ip("npu")

    def test_unknown_sensor_rejected(self):
        with pytest.raises(SimulationError):
            snapdragon_821().sensor("barometer")

    def test_advance_time_charges_idle_power(self):
        soc = snapdragon_821()
        soc.advance_time(10.0)
        assert soc.elapsed_seconds == 10.0
        assert soc.meter.total_joules > 0
        # Idle phone draws well under a watt but well over 100 mW.
        watts = soc.average_watts()
        assert 0.3 < watts < 1.2

    def test_advance_time_zero_is_noop(self):
        soc = snapdragon_821()
        soc.advance_time(0.0)
        assert soc.meter.total_joules == 0.0

    def test_advance_time_negative_rejected(self):
        with pytest.raises(SimulationError):
            snapdragon_821().advance_time(-1.0)

    def test_average_watts_requires_elapsed_time(self):
        with pytest.raises(SimulationError):
            snapdragon_821().average_watts()

    def test_platform_floor_charged_under_idle(self):
        soc = snapdragon_821()
        soc.advance_time(1.0)
        assert soc.meter.component_joules("platform_floor") == pytest.approx(
            soc.profiles.platform_floor_watts
        )

    def test_idle_battery_life_near_twenty_hours(self):
        # The paper's Fig. 3 idle-phone reference point.
        soc = snapdragon_821()
        soc.advance_time(60.0)
        hours = soc.battery.hours_to_empty(soc.average_watts())
        assert 15.0 < hours < 25.0

    def test_display_dominates_idle_ips(self):
        soc = snapdragon_821()
        soc.advance_time(10.0)
        assert soc.meter.component_joules(IP_DISPLAY) > soc.meter.component_joules(IP_GPU)

    def test_groups_cover_all_charges(self):
        soc = snapdragon_821()
        soc.cpu.execute(1_000_000)
        soc.ip(IP_GPU).invoke(1.0)
        soc.sensor(SENSOR_TOUCH).sample()
        soc.memory.transfer(1000)
        report = soc.report()
        group_sum = sum(report.by_group.values())
        assert group_sum == pytest.approx(report.total_joules)
        assert set(report.by_group) == set(ComponentGroup)
