"""Sanity tests over the calibrated power constants."""

import pytest

from repro.soc.power_profiles import pixel_xl_profiles


@pytest.fixture(scope="module")
def profiles():
    return pixel_xl_profiles()


class TestCalibrationInvariants:
    def test_big_cores_cost_more_per_cycle(self, profiles):
        assert profiles.cpu.big_energy_per_cycle > profiles.cpu.little_energy_per_cycle

    def test_big_cores_are_faster(self, profiles):
        assert profiles.cpu.big_freq_hz > profiles.cpu.little_freq_hz

    def test_sleep_cheaper_than_idle_everywhere(self, profiles):
        for name in ("gpu", "display", "video_codec", "audio_codec", "isp",
                     "dsp", "sensor_hub"):
            ip = getattr(profiles, name)
            assert ip.sleep_power_watts < ip.idle_power_watts, name

    def test_gps_is_the_power_hungry_sensor(self, profiles):
        mems = (profiles.touch, profiles.gyro, profiles.accel)
        assert all(
            profiles.gps.sample_energy_joules > 100 * s.sample_energy_joules
            for s in mems
        )

    def test_camera_frame_costs_more_than_touch(self, profiles):
        assert profiles.camera.sample_energy_joules > \
            100 * profiles.touch.sample_energy_joules

    def test_display_is_the_big_idle_ip(self, profiles):
        others = (profiles.gpu, profiles.video_codec, profiles.audio_codec,
                  profiles.isp, profiles.dsp, profiles.sensor_hub)
        assert all(
            profiles.display.idle_power_watts > ip.idle_power_watts
            for ip in others
        )

    def test_platform_floor_positive(self, profiles):
        assert 0.0 < profiles.platform_floor_watts < 1.0

    def test_wake_energies_amortise_over_a_frame(self, profiles):
        # Sleeping between 60 Hz frames must be net-positive for the GPU
        # (the Max-IP premise): idle power over 16 ms > wake energy.
        frame_s = 1.0 / 60.0
        assert profiles.gpu.idle_power_watts * frame_s > \
            profiles.gpu.wake_energy_joules

    def test_memory_bandwidth_plausible(self, profiles):
        assert 1e9 < profiles.memory.bandwidth_bytes_per_second < 1e11
