"""Tests for the energy ledger."""

import pytest

from repro.soc.component import ComponentGroup
from repro.soc.energy import (
    EnergyMeter,
    TAG_EVENT,
    TAG_IDLE,
    TAG_LOOKUP,
    merge_reports,
)


class TestCharging:
    def test_total_accumulates(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 1.0)
        meter.charge("gpu", ComponentGroup.IP, 2.0)
        assert meter.total_joules == pytest.approx(3.0)

    def test_negative_charge_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.charge("cpu", ComponentGroup.CPU, -0.1)

    def test_zero_charge_is_noop(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 0.0)
        assert meter.total_joules == 0.0
        assert meter.component_joules("cpu") == 0.0

    def test_component_accumulates_across_tags(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 1.0, tag=TAG_EVENT)
        meter.charge("cpu", ComponentGroup.CPU, 2.0, tag=TAG_LOOKUP)
        assert meter.component_joules("cpu") == pytest.approx(3.0)

    def test_group_and_tag_marginals(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 1.0, tag=TAG_EVENT)
        meter.charge("gpu", ComponentGroup.IP, 2.0, tag=TAG_IDLE)
        assert meter.group_joules(ComponentGroup.CPU) == pytest.approx(1.0)
        assert meter.tag_joules(TAG_IDLE) == pytest.approx(2.0)

    def test_reset_clears_everything(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 5.0)
        meter.reset()
        assert meter.total_joules == 0.0
        assert meter.report().by_component == {}


class TestReport:
    def test_report_is_snapshot(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 1.0)
        report = meter.report()
        meter.charge("cpu", ComponentGroup.CPU, 1.0)
        assert report.total_joules == pytest.approx(1.0)

    def test_group_fraction(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 3.0)
        meter.charge("gpu", ComponentGroup.IP, 1.0)
        assert meter.report().group_fraction(ComponentGroup.CPU) == pytest.approx(0.75)

    def test_group_fraction_empty_meter(self):
        assert EnergyMeter().report().group_fraction(ComponentGroup.CPU) == 0.0

    def test_tag_fraction(self):
        meter = EnergyMeter()
        meter.charge("cpu", ComponentGroup.CPU, 1.0, tag=TAG_LOOKUP)
        meter.charge("cpu", ComponentGroup.CPU, 3.0, tag=TAG_EVENT)
        assert meter.report().tag_fraction(TAG_LOOKUP) == pytest.approx(0.25)

    def test_joint_group_tag(self):
        meter = EnergyMeter()
        meter.charge("gpu", ComponentGroup.IP, 2.0, tag=TAG_LOOKUP)
        report = meter.report()
        assert report.by_group_and_tag[(ComponentGroup.IP, TAG_LOOKUP)] == pytest.approx(2.0)


class TestMerge:
    def test_merge_sums_totals(self):
        first = EnergyMeter()
        first.charge("cpu", ComponentGroup.CPU, 1.0)
        second = EnergyMeter()
        second.charge("cpu", ComponentGroup.CPU, 2.0)
        merged = merge_reports([first.report(), second.report()])
        assert merged.total_joules == pytest.approx(3.0)
        assert merged.by_component["cpu"] == pytest.approx(3.0)

    def test_merge_empty(self):
        merged = merge_reports([])
        assert merged.total_joules == 0.0

    def test_merge_preserves_disjoint_components(self):
        first = EnergyMeter()
        first.charge("cpu", ComponentGroup.CPU, 1.0)
        second = EnergyMeter()
        second.charge("gpu", ComponentGroup.IP, 2.0)
        merged = merge_reports([first.report(), second.report()])
        assert set(merged.by_component) == {"cpu", "gpu"}
