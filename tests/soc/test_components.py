"""Tests for the power-state machine, CPU, IPs, memory, and sensors."""

import pytest

from repro.errors import PowerStateError
from repro.soc.component import ComponentGroup, HardwareComponent, PowerState
from repro.soc.cpu import CpuCluster
from repro.soc.energy import EnergyMeter
from repro.soc.ip import Gpu
from repro.soc.memory import Memory
from repro.soc.power_profiles import pixel_xl_profiles
from repro.soc.sensors import TouchPanel


@pytest.fixture()
def meter():
    return EnergyMeter()


@pytest.fixture()
def profiles():
    return pixel_xl_profiles()


def make_component(meter, **kwargs):
    defaults = dict(
        name="unit",
        group=ComponentGroup.IP,
        meter=meter,
        idle_power_watts=0.1,
        sleep_power_watts=0.01,
        wake_energy_joules=0.005,
    )
    defaults.update(kwargs)
    return HardwareComponent(**defaults)


class TestPowerStates:
    def test_starts_idle(self, meter):
        assert make_component(meter).state is PowerState.IDLE

    def test_sleep_then_wake_charges_wake_energy(self, meter):
        component = make_component(meter)
        component.sleep()
        assert component.state is PowerState.SLEEP
        component.wake()
        assert component.state is PowerState.IDLE
        assert component.wake_count == 1
        assert meter.total_joules == pytest.approx(0.005)

    def test_illegal_transition_rejected(self, meter):
        component = make_component(meter)
        component.sleep()
        with pytest.raises(PowerStateError):
            component.transition(PowerState.ACTIVE)

    def test_transition_to_same_state_is_noop(self, meter):
        component = make_component(meter)
        component.transition(PowerState.IDLE)
        assert component.wake_count == 0

    def test_sleep_power_must_not_exceed_idle(self, meter):
        with pytest.raises(ValueError):
            make_component(meter, idle_power_watts=0.01, sleep_power_watts=0.02)

    def test_negative_power_rejected(self, meter):
        with pytest.raises(ValueError):
            make_component(meter, idle_power_watts=-0.1)


class TestBackgroundPower:
    def test_idle_accrual(self, meter):
        component = make_component(meter)
        charged = component.accrue_background(10.0)
        assert charged == pytest.approx(1.0)

    def test_sleep_accrual_is_cheaper(self, meter):
        component = make_component(meter)
        component.sleep()
        meter.reset()
        assert component.accrue_background(10.0) == pytest.approx(0.1)

    def test_off_accrues_nothing(self, meter):
        component = make_component(meter)
        component.sleep()
        component.transition(PowerState.OFF)
        meter.reset()
        assert component.accrue_background(10.0) == 0.0

    def test_negative_interval_rejected(self, meter):
        with pytest.raises(ValueError):
            make_component(meter).accrue_background(-1.0)


class TestCpuCluster:
    def test_execute_charges_energy(self, meter, profiles):
        cpu = CpuCluster(meter, profiles.cpu)
        cpu.execute(1_000_000, big=True)
        expected = 1_000_000 * profiles.cpu.big_energy_per_cycle
        assert meter.component_joules("cpu") == pytest.approx(expected)

    def test_little_cheaper_than_big(self, meter, profiles):
        cpu = CpuCluster(meter, profiles.cpu)
        assert cpu.energy_for(1_000, big=False) < cpu.energy_for(1_000, big=True)

    def test_execute_returns_wall_time(self, meter, profiles):
        cpu = CpuCluster(meter, profiles.cpu)
        seconds = cpu.execute(int(profiles.cpu.big_freq_hz), big=True)
        assert seconds == pytest.approx(1.0)

    def test_cycle_counters(self, meter, profiles):
        cpu = CpuCluster(meter, profiles.cpu)
        cpu.execute(100, big=True)
        cpu.execute(50, big=False)
        assert cpu.big_cycles_executed == 100
        assert cpu.little_cycles_executed == 50
        assert cpu.total_cycles_executed == 150

    def test_zero_cycles_free(self, meter, profiles):
        cpu = CpuCluster(meter, profiles.cpu)
        assert cpu.execute(0) == 0.0
        assert meter.total_joules == 0.0

    def test_negative_cycles_rejected(self, meter, profiles):
        cpu = CpuCluster(meter, profiles.cpu)
        with pytest.raises(ValueError):
            cpu.execute(-1)
        with pytest.raises(ValueError):
            cpu.energy_for(-1)


class TestIpBlock:
    def test_invoke_charges_setup_plus_work(self, meter, profiles):
        gpu = Gpu("gpu", meter, profiles.gpu)
        invocation = gpu.invoke(2.0, bytes_in=1000)
        expected = (
            profiles.gpu.setup_energy_joules
            + 2.0 * profiles.gpu.energy_per_work_unit
            + 1000 * profiles.gpu.energy_per_byte
        )
        assert invocation.energy_joules == pytest.approx(expected)
        assert meter.component_joules("gpu") == pytest.approx(expected)

    def test_energy_for_matches_invoke(self, meter, profiles):
        gpu = Gpu("gpu", meter, profiles.gpu)
        assert gpu.energy_for(3.0, bytes_in=10, bytes_out=20) == pytest.approx(
            gpu.invoke(3.0, bytes_in=10, bytes_out=20).energy_joules
        )

    def test_invoke_wakes_sleeping_block(self, meter, profiles):
        gpu = Gpu("gpu", meter, profiles.gpu)
        gpu.sleep()
        meter.reset()
        gpu.invoke(1.0)
        assert gpu.wake_count == 1
        assert meter.component_joules("gpu") > gpu.energy_for(1.0)

    def test_invocation_counters(self, meter, profiles):
        gpu = Gpu("gpu", meter, profiles.gpu)
        gpu.invoke(1.5)
        gpu.invoke(2.5)
        assert gpu.invocation_count == 2
        assert gpu.total_work_units == pytest.approx(4.0)

    def test_block_returns_to_idle(self, meter, profiles):
        gpu = Gpu("gpu", meter, profiles.gpu)
        gpu.invoke(1.0)
        assert gpu.state is PowerState.IDLE

    def test_negative_parameters_rejected(self, meter, profiles):
        gpu = Gpu("gpu", meter, profiles.gpu)
        with pytest.raises(ValueError):
            gpu.invoke(-1.0)
        with pytest.raises(ValueError):
            gpu.invoke(1.0, bytes_in=-1)


class TestMemory:
    def test_transfer_charges_per_byte(self, meter, profiles):
        memory = Memory(meter, profiles.memory)
        memory.transfer(1_000_000)
        expected = 1_000_000 * profiles.memory.energy_per_byte
        assert meter.component_joules("dram") == pytest.approx(expected)

    def test_transfer_tracks_bytes(self, meter, profiles):
        memory = Memory(meter, profiles.memory)
        memory.transfer(100)
        memory.transfer(200)
        assert memory.bytes_moved == 300

    def test_transfer_time_from_bandwidth(self, meter, profiles):
        memory = Memory(meter, profiles.memory)
        seconds = memory.transfer(int(profiles.memory.bandwidth_bytes_per_second))
        assert seconds == pytest.approx(1.0)

    def test_negative_transfer_rejected(self, meter, profiles):
        memory = Memory(meter, profiles.memory)
        with pytest.raises(ValueError):
            memory.transfer(-1)


class TestSensor:
    def test_sample_charges_fixed_energy(self, meter, profiles):
        touch = TouchPanel("touch", meter, profiles.touch)
        energy = touch.sample()
        assert energy == pytest.approx(profiles.touch.sample_energy_joules)
        assert touch.sample_count == 1

    def test_sensor_group(self, meter, profiles):
        touch = TouchPanel("touch", meter, profiles.touch)
        touch.sample()
        assert meter.group_joules(ComponentGroup.SENSOR) > 0
