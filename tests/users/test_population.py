"""Tests for user populations and archetypes."""

import pytest

from repro.android.events import EventType
from repro.users.population import (
    DEFAULT_ARCHETYPES,
    Population,
    UserArchetype,
)


class TestArchetype:
    def test_defaults_sane(self):
        names = [a.name for a in DEFAULT_ARCHETYPES]
        assert names == ["casual", "regular", "intense"]

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            UserArchetype(name="x", tempo=0.0, session_scale=1.0)
        with pytest.raises(ValueError):
            UserArchetype(name="x", tempo=1.0, session_scale=-1.0)


class TestPopulation:
    def test_assignment_is_stable(self):
        population = Population(seed=5)
        first = [population.archetype_of(i).name for i in range(20)]
        second = [population.archetype_of(i).name for i in range(20)]
        assert first == second

    def test_census_counts_everyone(self):
        population = Population(seed=5)
        census = population.census(50)
        assert sum(census.values()) == 50
        assert set(census) == {"casual", "regular", "intense"}

    def test_weights_shape_the_mix(self):
        lopsided = Population(weights=(1.0, 0.0, 0.0), seed=5)
        census = lopsided.census(30)
        assert census["casual"] == 30

    def test_misaligned_weights_rejected(self):
        with pytest.raises(ValueError):
            Population(weights=(1.0,))

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            Population(archetypes=(), weights=())


class TestUserTraces:
    def test_tempo_scales_gesture_rate(self):
        population = Population(seed=5)
        casual = UserArchetype("c", tempo=0.6, session_scale=1.0)
        intense = UserArchetype("i", tempo=1.8, session_scale=1.0)
        slow = Population(archetypes=(casual,), weights=(1.0,), seed=5)
        fast = Population(archetypes=(intense,), weights=(1.0,), seed=5)
        slow_events = slow.user_gestures("greenwall", 1, 0, 20.0)
        fast_events = fast.user_gestures("greenwall", 1, 0, 20.0)
        assert len(fast_events) > len(slow_events) * 1.5

    def test_gesture_timestamps_within_duration(self):
        population = Population(seed=5)
        events = population.user_gestures("candy_crush", 2, 0, 10.0)
        assert all(0.0 <= e.timestamp <= 10.0 + 1e-9 for e in events)

    def test_user_trace_includes_ticks(self):
        population = Population(seed=5)
        trace = population.user_trace("candy_crush", 2, 0, 10.0)
        types = {record.event_type for record in trace}
        assert EventType.FRAME_TICK in types
        assert EventType.SWIPE in types

    def test_sessions_differ(self):
        population = Population(seed=5)
        a = population.user_trace("candy_crush", 2, 0, 8.0)
        b = population.user_trace("candy_crush", 2, 1, 8.0)
        assert a.to_dict() != b.to_dict()

    def test_users_differ(self):
        population = Population(seed=5)
        a = population.user_trace("candy_crush", 2, 0, 8.0)
        b = population.user_trace("candy_crush", 3, 0, 8.0)
        assert a.to_dict()["events"] != b.to_dict()["events"]

    def test_trace_replayable(self):
        from repro.android.emulator import Emulator
        from repro.games.registry import GAME_CONTENT_SEED, create_game

        population = Population(seed=5)
        trace = population.user_trace("colorphun", 4, 0, 8.0)
        game = create_game("colorphun", seed=GAME_CONTENT_SEED)
        records = Emulator(verify=True).replay(game, trace)
        assert len(records) == len(trace)
