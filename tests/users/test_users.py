"""Tests for behaviour models, trace generation, and sessions."""

import pytest

from repro.android.events import EventType
from repro.errors import UnknownGameError
from repro.games.registry import GAME_NAMES
from repro.rng import ReproRng
from repro.users.behavior import behavior_for
from repro.users.sessions import estimate_trace_energy, run_baseline_session
from repro.users.tracegen import TICK_HZ, generate_events, generate_trace


class TestBehaviorModels:
    def test_every_game_has_a_model(self):
        for name in GAME_NAMES:
            assert behavior_for(name).game_name == name

    def test_unknown_game_rejected(self):
        with pytest.raises(UnknownGameError):
            behavior_for("pong")

    def test_gestures_deterministic_per_seed(self):
        model = behavior_for("ab_evolution")
        first = model.gestures(ReproRng(5), 10.0)
        second = behavior_for("ab_evolution").gestures(ReproRng(5), 10.0)
        assert len(first) == len(second)
        assert all(a == b for a, b in zip(first, second))

    def test_gestures_within_duration(self):
        for name in GAME_NAMES:
            events = behavior_for(name).gestures(ReproRng(3), 5.0)
            assert all(0.0 <= event.timestamp < 5.0 for event in events)

    def test_gestures_match_handled_types(self):
        from repro.games.registry import create_game

        for name in GAME_NAMES:
            handled = set(create_game(name).handled_event_types)
            produced = {e.event_type for e in behavior_for(name).gestures(ReproRng(3), 8.0)}
            assert produced <= handled

    def test_chase_produces_camera_stream(self):
        events = behavior_for("chase_whisply").gestures(ReproRng(3), 3.0)
        cameras = [e for e in events if e.event_type is EventType.CAMERA_FRAME]
        assert len(cameras) == pytest.approx(90, abs=3)


class TestTraceGen:
    def test_sequences_strictly_increase(self):
        events = generate_events("colorphun", seed=1, duration_s=3.0)
        sequences = [event.sequence for event in events]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_timestamps_sorted(self):
        events = generate_events("race_kings", seed=1, duration_s=3.0)
        stamps = [event.timestamp for event in events]
        assert stamps == sorted(stamps)

    def test_tick_rate(self):
        events = generate_events("candy_crush", seed=1, duration_s=4.0)
        ticks = [e for e in events if e.event_type is EventType.FRAME_TICK]
        assert len(ticks) == int(4.0 * TICK_HZ)

    def test_chase_has_no_ticks(self):
        events = generate_events("chase_whisply", seed=1, duration_s=3.0)
        assert not any(e.event_type is EventType.FRAME_TICK for e in events)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            generate_events("colorphun", seed=1, duration_s=0.0)

    def test_trace_wraps_events(self):
        trace = generate_trace("colorphun", seed=2, duration_s=2.0)
        events = generate_events("colorphun", seed=2, duration_s=2.0)
        assert len(trace) == len(events)
        assert trace.game_name == "colorphun"
        assert trace.seed == 2

    def test_different_seeds_different_streams(self):
        first = generate_events("greenwall", seed=1, duration_s=5.0)
        second = generate_events("greenwall", seed=2, duration_s=5.0)
        firsts = [e for e in first if e.event_type is EventType.SWIPE]
        seconds = [e for e in second if e.event_type is EventType.SWIPE]
        assert [e.values for e in firsts] != [e.values for e in seconds]


class TestSessions:
    def test_session_result_consistency(self, colorphun_session):
        result = colorphun_session
        assert result.duration_s == 30.0
        assert len(result.traces) == len(result.events)
        assert result.report.total_joules > 0
        assert result.average_watts == pytest.approx(
            result.report.total_joules / 30.0
        )

    def test_session_is_reproducible(self, colorphun_session):
        again = run_baseline_session("colorphun", seed=1, duration_s=30.0)
        assert again.report.total_joules == pytest.approx(
            colorphun_session.report.total_joules
        )

    def test_user_traces_exclude_ticks(self, colorphun_session):
        user = colorphun_session.user_traces()
        assert all(t.event_type is not EventType.FRAME_TICK for t in user)
        assert 0 < len(user) < len(colorphun_session.traces)

    def test_useless_fraction_in_unit_interval(self, colorphun_session):
        assert 0.0 < colorphun_session.useless_user_fraction < 1.0
        assert 0.0 <= colorphun_session.wasted_energy_fraction < 1.0

    def test_estimate_trace_energy_positive(self, colorphun_session):
        soc = colorphun_session.soc
        energies = [
            estimate_trace_energy(soc, trace) for trace in colorphun_session.traces[:50]
        ]
        assert all(energy > 0 for energy in energies)

    def test_battery_hours_plausible(self, colorphun_session):
        assert 5.0 < colorphun_session.battery_hours < 15.0
