"""Edge-case tests for event-stream assembly."""

import pytest

from repro.android.events import EventType, make_touch
from repro.users.tracegen import assemble_events, generate_events


class TestAssembleEvents:
    def test_gestures_beyond_duration_dropped(self):
        late = make_touch(1, 2, timestamp=99.0)
        events = assemble_events("colorphun", [late], duration_s=2.0)
        assert all(e.event_type is EventType.FRAME_TICK for e in events)

    def test_no_ticks_for_camera_games(self):
        events = assemble_events("chase_whisply", [], duration_s=2.0)
        assert events == []

    def test_sequences_renumbered(self):
        gestures = [make_touch(1, 2, sequence=999, timestamp=0.5)]
        events = assemble_events("colorphun", gestures, duration_s=1.0)
        assert [e.sequence for e in events] == list(range(1, len(events) + 1))

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            assemble_events("colorphun", [], duration_s=0.0)

    def test_generate_events_stable(self):
        first = generate_events("greenwall", seed=8, duration_s=3.0)
        second = generate_events("greenwall", seed=8, duration_s=3.0)
        assert [e.values for e in first] == [e.values for e in second]
