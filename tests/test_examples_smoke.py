"""Smoke tests for the ``examples/`` scripts.

Every example must at least import cleanly (its main path resolves all
library symbols it uses); the two fleet-routed examples additionally
*run* end-to-end with shrunken workloads to prove the fleet wiring, and
their output must not depend on the worker count.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLE_NAMES = [
    "quickstart",
    "compare_schemes",
    "continuous_learning",
    "custom_game",
    "characterize_games",
    "federated_fleet",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_example_imports_and_exposes_main(name):
    module = _load_example(name)
    assert callable(getattr(module, "main"))


def test_characterize_games_runs_through_fleet(capsys):
    module = _load_example("characterize_games")
    module.DURATION_S = 5.0
    module.main()
    out = capsys.readouterr().out
    assert "Fig. 2" in out and "Fig. 3" in out and "Fig. 4" in out
    assert "race_kings" in out


def test_federated_fleet_runs_and_is_jobs_invariant(capsys):
    module = _load_example("federated_fleet")
    module.DEVICES = 3
    module.SESSIONS_PER_DEVICE = 1
    module.SESSION_S = 6.0
    module.main()
    serial = capsys.readouterr().out
    assert "fleet table:" in serial
    assert "no raw events leave any device" in serial

    module.JOBS = 2
    module.main()
    parallel = capsys.readouterr().out
    assert parallel == serial
