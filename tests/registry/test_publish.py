"""Profiler/scheme integration: publishing candidates, serving champions."""

import pytest

from repro.core.config import SnipConfig
from repro.core.package_cache import package_digest
from repro.core.serialization import table_to_dict
from repro.errors import SchemeError
from repro.registry import PackageRegistry, publish_candidate
from repro.schemes.snip_scheme import SnipScheme

from tests.registry.conftest import GAME, make_metrics


class TestPublishCandidate:
    def test_entry_keyed_by_profiler_digest(self, tmp_path, config):
        registry = PackageRegistry(tmp_path)
        entry, package, created = publish_candidate(
            registry, GAME, seeds=[1], duration_s=6.0, config=config,
            eval_duration_s=6.0, measure_energy=False,
        )
        assert created
        assert entry.digest == package_digest(GAME, config, [1], 6.0)
        assert registry.load_package(entry).table_bytes == package.table_bytes

    def test_republish_is_a_noop(self, tmp_path, config):
        registry = PackageRegistry(tmp_path)
        first, _, created = publish_candidate(
            registry, GAME, seeds=[1], duration_s=6.0, config=config,
            eval_duration_s=6.0, measure_energy=False,
        )
        again, _, created_again = publish_candidate(
            registry, GAME, seeds=[1], duration_s=6.0, config=config,
            eval_duration_s=6.0, measure_energy=False,
        )
        assert created and not created_again
        assert again.version == first.version

    def test_metrics_are_measured(self, tmp_path, config):
        registry = PackageRegistry(tmp_path)
        entry, _, _ = publish_candidate(
            registry, GAME, seeds=[1], duration_s=6.0, config=config,
            eval_duration_s=6.0,
        )
        assert 0.0 < entry.metrics.hit_rate <= 1.0
        assert 0.0 < entry.metrics.selection_accuracy <= 1.0
        assert entry.metrics.energy_saved_fraction is not None
        assert entry.metrics.table_bytes > 0


class TestSchemeRegistry:
    def test_prepare_serves_the_champion(
        self, tmp_path, config, package_a, package_b
    ):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        # The scheme's own profile settings differ from the champion's,
        # so only the registry can explain serving package_a.
        scheme = SnipScheme(
            config=config,
            profile_seeds=(9,),
            profile_duration_s=5.0,
            cache=None,
            registry=registry,
        )
        served = scheme.prepare(GAME)
        assert table_to_dict(served.table) == table_to_dict(package_a.table)

    def test_prepare_falls_back_without_champion(self, tmp_path, config):
        registry = PackageRegistry(tmp_path)
        scheme = SnipScheme(
            config=config,
            profile_seeds=(1,),
            profile_duration_s=6.0,
            cache=None,
            registry=registry,
        )
        package = scheme.prepare(GAME)
        assert package.game_name == GAME

    def test_publish_registers_a_candidate(self, tmp_path, config):
        registry = PackageRegistry(tmp_path)
        scheme = SnipScheme(
            config=config,
            profile_seeds=(1,),
            profile_duration_s=6.0,
            registry=registry,
        )
        entry = scheme.publish(GAME, measure_energy=False)
        assert entry.version == 1
        state = registry.load_state(GAME, config)
        assert state.champion_version is None  # candidates still gated

    def test_publish_without_registry_raises(self):
        with pytest.raises(SchemeError, match="registry"):
            SnipScheme().publish(GAME)
