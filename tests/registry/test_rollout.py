"""Staged rollout: cohort dealing, determinism, and the online verdict."""

import pytest

from repro.errors import FleetError, PromotionError
from repro.fleet import FleetSpec, ProcessFleetExecutor, SerialExecutor
from repro.fleet.engine import FleetEngine
from repro.fleet.spec import (
    COHORT_CHALLENGER,
    COHORT_CHAMPION,
    assign_cohort,
)
from repro.registry import (
    PackageRegistry,
    PromotionPolicy,
    STATUS_CHAMPION,
    judge_cohorts,
    run_staged_rollout,
)
from repro.registry.rollout import ACTION_PROMOTED, ACTION_ROLLED_BACK

from tests.registry.conftest import GAME, make_metrics


def rollout_spec(**overrides):
    payload = dict(
        game_name=GAME,
        devices=6,
        duration_s=4.0,
        seed=3,
        shard_size=2,
        profile_seeds=(1,),
        profile_duration_s=6.0,
        challenger_fraction=0.5,
    )
    payload.update(overrides)
    return FleetSpec(**payload)


class TestCohortAssignment:
    def test_pure_function_of_salt_and_device(self):
        for device_id in range(200):
            first = assign_cohort(device_id, 0.3, salt=7)
            assert assign_cohort(device_id, 0.3, salt=7) == first

    def test_extremes(self):
        assert assign_cohort(5, 0.0, salt=1) == COHORT_CHAMPION
        assert assign_cohort(5, 1.0, salt=1) == COHORT_CHALLENGER

    def test_fraction_growth_only_adds_testers(self):
        # Widening a rollout must never evict an enrolled device.
        for fraction, wider in ((0.1, 0.3), (0.3, 0.7)):
            for device_id in range(300):
                if assign_cohort(device_id, fraction, salt=3) == COHORT_CHALLENGER:
                    assert (
                        assign_cohort(device_id, wider, salt=3)
                        == COHORT_CHALLENGER
                    )

    def test_fraction_roughly_respected(self):
        dealt = sum(
            assign_cohort(device_id, 0.25, salt=9) == COHORT_CHALLENGER
            for device_id in range(2000)
        )
        assert 0.18 < dealt / 2000 < 0.32

    def test_salt_reshuffles(self):
        assignments = [
            tuple(assign_cohort(d, 0.5, salt=salt) for d in range(64))
            for salt in (1, 2)
        ]
        assert assignments[0] != assignments[1]

    def test_stable_across_shard_sizes(self, config, package_a, package_b):
        # Cohort membership lives in the per-device results, so the
        # census of each cohort must be invariant under resharding.
        def cohorts_text(shard_size, executor=None):
            engine = FleetEngine(
                rollout_spec(shard_size=shard_size),
                executor=executor,
                config=config,
                package=package_a,
                challenger=package_b,
            )
            return engine.run().to_text()

        reference = cohorts_text(2)
        assert "cohort challenger" in reference
        for shard_size in (1, 3, 6):
            assert cohorts_text(shard_size) == reference
        assert cohorts_text(2, ProcessFleetExecutor(4)) == reference


class TestEngineCohorts:
    def test_challenger_fraction_requires_challenger(self, config, package_a):
        with pytest.raises(FleetError, match="challenger"):
            FleetEngine(rollout_spec(), config=config, package=package_a)

    def test_no_split_reports_no_cohorts(self, config, package_a):
        engine = FleetEngine(
            rollout_spec(challenger_fraction=0.0),
            config=config,
            package=package_a,
        )
        report = engine.run()
        assert report.cohorts is None
        assert "rollout:" not in report.to_text()

    def test_cohort_totals_partition_the_fleet(
        self, config, package_a, package_b
    ):
        report = FleetEngine(
            rollout_spec(), config=config,
            package=package_a, challenger=package_b,
        ).run()
        assert report.cohorts is not None
        assert sum(t.devices for t in report.cohorts.values()) == 6
        assert sum(t.events for t in report.cohorts.values()) == (
            report.totals.events
        )


class TestJudgeCohorts:
    def _totals(self, savings, hit_rate, devices=3):
        from repro.fleet.reducers import FleetTotals

        baseline = 100.0
        return FleetTotals(
            devices=devices,
            sessions=devices,
            events=100,
            snip_joules=baseline * (1 - savings),
            baseline_joules=baseline,
            hits=int(hit_rate * 1000),
            misses=1000 - int(hit_rate * 1000),
            avoided_cycles=1.0,
            executed_cycles=1.0,
            raw_uplink_bytes=0,
        )

    def test_better_cohort_promotes(self):
        decision = judge_cohorts(
            2, 1,
            {
                COHORT_CHAMPION: self._totals(0.30, 0.90),
                COHORT_CHALLENGER: self._totals(0.35, 0.95),
            },
            PromotionPolicy(),
        )
        assert decision.promoted

    def test_worse_cohort_rolls_back(self):
        decision = judge_cohorts(
            2, 1,
            {
                COHORT_CHAMPION: self._totals(0.35, 0.95),
                COHORT_CHALLENGER: self._totals(0.30, 0.90),
            },
            PromotionPolicy(),
        )
        assert not decision.promoted

    def test_energy_floor_gates_the_cohort(self):
        decision = judge_cohorts(
            2, 1,
            {
                COHORT_CHAMPION: self._totals(0.05, 0.50),
                COHORT_CHALLENGER: self._totals(0.10, 0.60),
            },
            PromotionPolicy(min_energy_saved_fraction=0.20),
        )
        assert not decision.promoted
        assert any("floor" in reason for reason in decision.reasons)

    def test_empty_challenger_cohort_keeps_champion(self):
        decision = judge_cohorts(
            2, 1,
            {COHORT_CHAMPION: self._totals(0.30, 0.90)},
            PromotionPolicy(),
        )
        assert not decision.promoted
        assert any("empty" in reason for reason in decision.reasons)


class TestStagedRollout:
    def _seeded_registry(self, root, config, package_a, package_b):
        registry = PackageRegistry(root)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        registry.publish(GAME, config, package_b, make_metrics())
        return registry

    def test_requires_cohort_split(
        self, tmp_path, config, package_a, package_b
    ):
        registry = self._seeded_registry(
            tmp_path, config, package_a, package_b
        )
        with pytest.raises(PromotionError, match="challenger_fraction"):
            run_staged_rollout(
                registry, GAME,
                rollout_spec(challenger_fraction=0.0), config=config,
            )

    def test_requires_champion(self, tmp_path, config, package_a):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        with pytest.raises(PromotionError, match="no champion"):
            run_staged_rollout(registry, GAME, rollout_spec(), config=config)

    def test_verdict_is_recorded_and_applied(
        self, tmp_path, config, package_a, package_b
    ):
        registry = self._seeded_registry(
            tmp_path, config, package_a, package_b
        )
        result = run_staged_rollout(
            registry, GAME, rollout_spec(), config=config
        )
        state = registry.load_state(GAME, config)
        assert result.challenger_version == 2
        assert state.entries[2].decision == result.decision
        if result.action == ACTION_PROMOTED:
            assert state.champion_version == 2
            assert state.entries[2].status == STATUS_CHAMPION
        else:
            assert result.action == ACTION_ROLLED_BACK
            assert state.champion_version == 1
        assert "rollout verdict" in result.to_text()

    def test_registry_state_identical_across_jobs(
        self, tmp_path, config, package_a, package_b
    ):
        texts = []
        states = []
        for label, executor in (
            ("serial", SerialExecutor()),
            ("parallel", ProcessFleetExecutor(4)),
        ):
            registry = self._seeded_registry(
                tmp_path / label, config, package_a, package_b
            )
            result = run_staged_rollout(
                registry, GAME, rollout_spec(), config=config,
                executor=executor,
            )
            texts.append(result.to_text())
            states.append(registry.state_path(GAME, config).read_bytes())
        assert texts[0] == texts[1]
        assert states[0] == states[1]
