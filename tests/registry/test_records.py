"""Canonical JSON round-trips of the ledger record types."""

import dataclasses

import pytest

from repro.core.config import SnipConfig
from repro.errors import RegistryError
from repro.registry import (
    PromotionDecision,
    RegistryEntry,
    RegistryState,
    STATUS_CANDIDATE,
    config_fingerprint,
)
from repro.registry.records import PackageMetrics

from tests.registry.conftest import make_metrics


class TestConfigFingerprint:
    def test_stable(self):
        assert config_fingerprint(SnipConfig()) == config_fingerprint(
            SnipConfig()
        )

    def test_sensitive_to_config(self):
        base = SnipConfig()
        tweaked = dataclasses.replace(
            base, forest_trees=base.forest_trees + 1
        )
        assert config_fingerprint(base) != config_fingerprint(tweaked)


class TestRoundTrips:
    def test_metrics(self):
        metrics = make_metrics()
        assert PackageMetrics.from_dict(metrics.to_dict()) == metrics
        unmeasured = make_metrics(energy_saved_fraction=None)
        assert (
            PackageMetrics.from_dict(unmeasured.to_dict()) == unmeasured
        )

    def test_decision(self):
        decision = PromotionDecision(
            version=2,
            promoted=False,
            champion_version=1,
            challenger_score=1.25,
            champion_score=2.5,
            reasons=("too slow", "too big"),
        )
        assert PromotionDecision.from_dict(decision.to_dict()) == decision

    def test_state_with_entries(self):
        entry = RegistryEntry(
            version=1,
            digest="abc123",
            game_name="candy_crush",
            status=STATUS_CANDIDATE,
            metrics=make_metrics(),
            source="fig12",
        )
        state = RegistryState(
            game_name="candy_crush",
            config_fingerprint=config_fingerprint(SnipConfig()),
            entries={1: entry},
        )
        rebuilt = RegistryState.from_dict(state.to_dict())
        assert rebuilt.entries[1] == entry
        assert rebuilt.champion_version is None
        assert rebuilt.next_version == 2

    def test_unknown_status_rejected(self):
        with pytest.raises(RegistryError, match="status"):
            RegistryEntry(
                version=1,
                digest="abc",
                game_name="candy_crush",
                status="shiny",
                metrics=make_metrics(),
            )

    def test_bad_format_version_rejected(self):
        with pytest.raises(RegistryError, match="format"):
            RegistryState.from_dict({"format_version": 99, "entries": []})
