"""Shared fixtures for the registry test suite.

Two real (but tiny) profiled packages with distinct digests, built once
per session; metric records are synthesized per test so promotion
behaviour can be steered precisely without re-profiling.
"""

import pytest

from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler

GAME = "candy_crush"


@pytest.fixture(scope="session")
def config():
    return SnipConfig()


@pytest.fixture(scope="session")
def package_a(config):
    return CloudProfiler(config, cache=None).build_package_from_sessions(
        GAME, seeds=[1], duration_s=6.0
    )


@pytest.fixture(scope="session")
def package_b(config):
    return CloudProfiler(config, cache=None).build_package_from_sessions(
        GAME, seeds=[1, 2], duration_s=6.0
    )


def make_metrics(**overrides):
    """A healthy metric record, tweakable per test."""
    from repro.registry import PackageMetrics

    payload = dict(
        hit_rate=0.95,
        selection_accuracy=0.999,
        selected_fields=4,
        table_entries=12,
        table_bytes=624,
        energy_saved_fraction=0.30,
    )
    payload.update(overrides)
    return PackageMetrics(**payload)
