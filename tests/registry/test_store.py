"""The registry store: publish, promote, rollback, gc, determinism."""

import pytest

from repro.errors import PromotionError, RegistryError
from repro.registry import (
    PackageRegistry,
    PromotionPolicy,
    RegistryState,
    STATUS_CANDIDATE,
    STATUS_CHAMPION,
    STATUS_REJECTED,
    STATUS_RETIRED,
    STATUS_ROLLED_BACK,
)

from tests.registry.conftest import GAME, make_metrics


class TestPublish:
    def test_versions_are_dense_and_entries_candidates(
        self, tmp_path, config, package_a, package_b
    ):
        registry = PackageRegistry(tmp_path)
        entry_a, created_a = registry.publish(
            GAME, config, package_a, make_metrics()
        )
        entry_b, created_b = registry.publish(
            GAME, config, package_b, make_metrics()
        )
        assert (entry_a.version, entry_b.version) == (1, 2)
        assert created_a and created_b
        assert entry_a.status == entry_b.status == STATUS_CANDIDATE

    def test_republish_same_digest_is_a_noop(
        self, tmp_path, config, package_a
    ):
        registry = PackageRegistry(tmp_path)
        first, created = registry.publish(GAME, config, package_a, make_metrics())
        before = registry.state_path(GAME, config).read_bytes()
        again, created_again = registry.publish(
            GAME, config, package_a, make_metrics(hit_rate=0.1)
        )
        assert created and not created_again
        assert again.version == first.version
        assert registry.state_path(GAME, config).read_bytes() == before

    def test_payload_resolves_through_cache(
        self, tmp_path, config, package_a
    ):
        registry = PackageRegistry(tmp_path)
        entry, _ = registry.publish(GAME, config, package_a, make_metrics())
        loaded = registry.load_package(entry)
        assert loaded.game_name == GAME
        assert loaded.table.entry_count == package_a.table.entry_count

    def test_missing_payload_raises(self, tmp_path, config, package_a):
        registry = PackageRegistry(tmp_path)
        entry, _ = registry.publish(GAME, config, package_a, make_metrics())
        registry.cache.remove(entry.digest)
        with pytest.raises(RegistryError, match="missing"):
            registry.load_package(entry)

    def test_state_survives_reload(self, tmp_path, config, package_a):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        reread = PackageRegistry(tmp_path).load_state(GAME, config)
        assert isinstance(reread, RegistryState)
        assert reread.entries[1].metrics == make_metrics()


class TestPromotion:
    def test_first_clean_candidate_becomes_champion(
        self, tmp_path, config, package_a
    ):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        decision = registry.promote(GAME, config)
        state = registry.load_state(GAME, config)
        assert decision.promoted
        assert state.champion_version == 1
        assert state.champion_history == (1,)

    def test_challenger_below_floors_rejected(
        self, tmp_path, config, package_a, package_b
    ):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        registry.publish(
            GAME, config, package_b, make_metrics(selection_accuracy=0.5)
        )
        decision = registry.promote(GAME, config)
        state = registry.load_state(GAME, config)
        assert not decision.promoted
        assert state.champion_version == 1
        assert state.entries[2].status == STATUS_REJECTED
        assert state.entries[2].decision == decision

    def test_challenger_beating_champion_promoted(
        self, tmp_path, config, package_a, package_b
    ):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        registry.publish(
            GAME, config, package_b,
            make_metrics(energy_saved_fraction=0.45),
        )
        decision = registry.promote(GAME, config)
        state = registry.load_state(GAME, config)
        assert decision.promoted
        assert state.champion_version == 2
        assert state.champion_history == (1, 2)
        assert state.entries[1].status == STATUS_RETIRED
        assert state.entries[2].status == STATUS_CHAMPION

    def test_promote_without_candidates_raises(self, tmp_path, config):
        with pytest.raises(PromotionError, match="no pending candidates"):
            PackageRegistry(tmp_path).promote(GAME, config)

    def test_promoting_current_champion_is_idempotent(
        self, tmp_path, config, package_a
    ):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        first = registry.promote(GAME, config)
        before = registry.state_path(GAME, config).read_bytes()
        again = registry.promote(GAME, config, version=1)
        assert again == first
        assert registry.state_path(GAME, config).read_bytes() == before

    def test_custom_floor_policy_applies(self, tmp_path, config, package_a):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics(hit_rate=0.4))
        decision = registry.promote(
            GAME, config, policy=PromotionPolicy(min_hit_rate=0.9)
        )
        assert not decision.promoted


class TestRollback:
    def _two_champions(self, tmp_path, config, package_a, package_b):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        registry.publish(
            GAME, config, package_b,
            make_metrics(energy_saved_fraction=0.45),
        )
        registry.promote(GAME, config)
        return registry

    def test_rollback_restores_previous_champion(
        self, tmp_path, config, package_a, package_b
    ):
        registry = self._two_champions(tmp_path, config, package_a, package_b)
        reinstated = registry.rollback(GAME, config)
        state = registry.load_state(GAME, config)
        assert reinstated.version == 1
        assert state.champion_version == 1
        assert state.entries[1].status == STATUS_CHAMPION
        assert state.entries[2].status == STATUS_ROLLED_BACK
        assert state.champion_history == (1,)

    def test_rollback_without_predecessor_raises(
        self, tmp_path, config, package_a
    ):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        with pytest.raises(PromotionError, match="no predecessor"):
            registry.rollback(GAME, config)

    def test_rollback_to_explicit_version(
        self, tmp_path, config, package_a, package_b
    ):
        registry = self._two_champions(tmp_path, config, package_a, package_b)
        reinstated = registry.rollback(GAME, config, version=1)
        assert reinstated.version == 1
        assert registry.load_state(GAME, config).champion_version == 1

    def test_rollback_without_champion_raises(self, tmp_path, config):
        with pytest.raises(PromotionError, match="no champion"):
            PackageRegistry(tmp_path).rollback(GAME, config)


class TestGc:
    def test_gc_reclaims_rejected_payloads(
        self, tmp_path, config, package_a, package_b
    ):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        entry_b, _ = registry.publish(
            GAME, config, package_b, make_metrics(selection_accuracy=0.5)
        )
        registry.promote(GAME, config)  # rejected
        dead_size = registry.cache.path_for(entry_b.digest).stat().st_size
        stats = registry.gc(GAME, config)
        state = registry.load_state(GAME, config)
        assert stats.entries_removed == 1
        assert stats.payloads_removed == 1
        assert stats.bytes_reclaimed == dead_size
        assert 2 not in state.entries
        assert state.champion_version == 1
        # Champion payload untouched.
        assert registry.load_package(state.champion()) is not None

    def test_gc_on_clean_slot_is_a_noop(self, tmp_path, config, package_a):
        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        stats = registry.gc(GAME, config)
        assert (stats.entries_removed, stats.bytes_reclaimed) == (0, 0)

    def test_gc_keeps_shared_digests_alive(
        self, tmp_path, config, package_a
    ):
        # The same content rejected in one slot but championed in
        # another must keep its payload.
        other_config = config  # same slot twice is impossible; use two games
        registry = PackageRegistry(tmp_path)
        entry, _ = registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        package_a2 = package_a
        other_entry, _ = registry.publish(
            "colorphun", other_config, package_a2,
            make_metrics(selection_accuracy=0.5),
            source_digest=entry.digest,
        )
        registry.promote("colorphun", other_config)  # rejected
        stats = registry.gc("colorphun", other_config)
        assert stats.entries_removed == 1
        assert stats.payloads_removed == 0
        assert registry.cache.load(entry.digest) is not None


class TestDeterminism:
    def _drive(self, root, config, package_a, package_b):
        registry = PackageRegistry(root)
        registry.publish(GAME, config, package_a, make_metrics())
        registry.promote(GAME, config)
        registry.publish(
            GAME, config, package_b,
            make_metrics(energy_saved_fraction=0.45),
        )
        registry.promote(GAME, config)
        registry.rollback(GAME, config)
        return registry.state_path(GAME, config).read_bytes()

    def test_identical_histories_yield_identical_bytes(
        self, tmp_path, config, package_a, package_b
    ):
        first = self._drive(tmp_path / "one", config, package_a, package_b)
        second = self._drive(tmp_path / "two", config, package_a, package_b)
        assert first == second
        assert first.endswith(b"\n")

    def test_state_has_no_wallclock_fields(
        self, tmp_path, config, package_a
    ):
        import json

        registry = PackageRegistry(tmp_path)
        registry.publish(GAME, config, package_a, make_metrics())
        payload = json.loads(registry.state_path(GAME, config).read_text())

        def keys_of(node):
            if isinstance(node, dict):
                for key, value in node.items():
                    yield key
                    yield from keys_of(value)
            elif isinstance(node, list):
                for item in node:
                    yield from keys_of(item)

        for key in keys_of(payload):
            for forbidden in ("time", "date", "stamp"):
                assert forbidden not in key
