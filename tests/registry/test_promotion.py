"""Floors and ranked scoring: the gated promotion judgement."""

import pytest

from repro.errors import PromotionError
from repro.registry import PromotionPolicy, judge

from tests.registry.conftest import make_metrics


class TestFloors:
    def test_healthy_metrics_clear_default_floors(self):
        assert PromotionPolicy().floors_unmet(make_metrics()) == []

    def test_accuracy_floor(self):
        unmet = PromotionPolicy().floors_unmet(
            make_metrics(selection_accuracy=0.90)
        )
        assert any("selection_accuracy" in reason for reason in unmet)

    def test_hit_rate_floor(self):
        policy = PromotionPolicy(min_hit_rate=0.8)
        unmet = policy.floors_unmet(make_metrics(hit_rate=0.5))
        assert any("hit_rate" in reason for reason in unmet)

    def test_energy_floor_enforced_when_measured(self):
        policy = PromotionPolicy(min_energy_saved_fraction=0.25)
        unmet = policy.floors_unmet(
            make_metrics(energy_saved_fraction=0.10)
        )
        assert any("energy_saved_fraction" in reason for reason in unmet)

    def test_energy_floor_skipped_when_unmeasured(self):
        policy = PromotionPolicy(min_energy_saved_fraction=0.25)
        assert policy.floors_unmet(
            make_metrics(energy_saved_fraction=None)
        ) == []

    def test_size_ceiling(self):
        policy = PromotionPolicy(max_table_bytes=100)
        unmet = policy.floors_unmet(make_metrics(table_bytes=1000))
        assert any("table_bytes" in reason for reason in unmet)
        assert PromotionPolicy().floors_unmet(
            make_metrics(table_bytes=10**9)
        ) == []  # ceiling disabled by default

    def test_invalid_policy_rejected(self):
        with pytest.raises(PromotionError):
            PromotionPolicy(min_hit_rate=1.5)
        with pytest.raises(PromotionError):
            PromotionPolicy(max_table_bytes=-1)


class TestJudge:
    def test_no_incumbent_floors_suffice(self):
        decision = judge(1, make_metrics(), None, None, PromotionPolicy())
        assert decision.promoted
        assert decision.champion_version is None
        assert decision.reasons == ()

    def test_challenger_below_floors_rejected(self):
        decision = judge(
            2,
            make_metrics(selection_accuracy=0.5),
            1,
            make_metrics(),
            PromotionPolicy(),
        )
        assert not decision.promoted
        assert decision.reasons

    def test_challenger_beating_champion_promoted(self):
        decision = judge(
            2,
            make_metrics(energy_saved_fraction=0.40),
            1,
            make_metrics(energy_saved_fraction=0.30),
            PromotionPolicy(),
        )
        assert decision.promoted
        assert decision.challenger_score > decision.champion_score

    def test_tie_keeps_champion(self):
        decision = judge(
            2, make_metrics(), 1, make_metrics(), PromotionPolicy()
        )
        assert not decision.promoted
        assert any("does not beat" in reason for reason in decision.reasons)

    def test_size_penalty_breaks_metric_ties(self):
        small = make_metrics(table_bytes=1024)
        large = make_metrics(table_bytes=64 * 1024 * 1024)
        decision = judge(2, small, 1, large, PromotionPolicy())
        assert decision.promoted
