"""Tests for the OTA table serialization format."""

import json

import pytest

from repro.android.events import EventType
from repro.core.serialization import (
    FORMAT_VERSION,
    dump_table,
    load_table,
    selection_from_dict,
    selection_to_dict,
    table_from_dict,
    table_to_dict,
)
from repro.errors import MemoizationError


class TestSelectionRoundtrip:
    def test_roundtrip_preserves_fields(self, ab_package):
        payload = selection_to_dict(ab_package.selection)
        rebuilt = selection_from_dict(payload)
        for event_type, fields in ab_package.selection.by_event_type.items():
            assert [f.name for f in rebuilt.fields_for(event_type)] == [
                f.name for f in fields
            ]
            assert rebuilt.comparison_bytes(event_type) == \
                ab_package.selection.comparison_bytes(event_type)

    def test_payload_is_json_serialisable(self, ab_package):
        json.dumps(selection_to_dict(ab_package.selection))


class TestTableRoundtrip:
    def test_roundtrip_preserves_entries(self, ab_package):
        payload = table_to_dict(ab_package.table)
        rebuilt = table_from_dict(payload)
        assert rebuilt.entry_count == ab_package.table.entry_count
        assert rebuilt.total_bytes == ab_package.table.total_bytes
        for event_type in ab_package.table.event_types():
            original = ab_package.table._entries[event_type]
            for key, entry in original.items():
                loaded = rebuilt.lookup(event_type, key)
                assert loaded is not None
                assert loaded.writes == entry.writes
                assert loaded.avg_cycles == pytest.approx(entry.avg_cycles)

    def test_payload_is_json_serialisable(self, ab_package):
        json.dumps(table_to_dict(ab_package.table))

    def test_version_checked(self, ab_package):
        payload = table_to_dict(ab_package.table)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(MemoizationError):
            table_from_dict(payload)

    def test_malformed_document_rejected(self):
        with pytest.raises(MemoizationError):
            table_from_dict({"format_version": FORMAT_VERSION, "oops": 1})

    def test_file_roundtrip(self, ab_package, tmp_path):
        path = str(tmp_path / "table.json")
        nbytes = dump_table(ab_package.table, path)
        assert nbytes > 0
        loaded = load_table(path)
        assert loaded.entry_count == ab_package.table.entry_count

    def test_loaded_table_serves_lookups(self, ab_package, tmp_path):
        path = str(tmp_path / "table.json")
        dump_table(ab_package.table, path)
        loaded = load_table(path)
        event_type = EventType.FRAME_TICK
        key = next(iter(ab_package.table._entries[event_type]))
        assert loaded.lookup(event_type, key) is not None
