"""The fast paths change nothing observable: golden equivalence.

Every optimisation in the PR — compiled runtime probes, vectorized
forests feeding PFI, the package cache — must leave selections, tables,
runtime counters, and energy byte-identical to the reference
implementations. These tests run both paths side by side on real
sessions and assert exact equality, not tolerances.
"""

import dataclasses

from repro.core.package_cache import PackageCache, package_digest
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.core.serialization import table_to_dict
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.tracegen import generate_events

GAME = "ab_evolution"
EVAL_SEED = 9
EVAL_DURATION_S = 30.0


def _run_session(package, config, use_reference_probes=False):
    """One evaluated session; returns (stats, joules)."""
    soc = snapdragon_821()
    game = create_game(GAME, seed=GAME_CONTENT_SEED)
    runtime = SnipRuntime(soc, game, package.table.clone(), config)
    if use_reference_probes:
        runtime.live_key = runtime.live_key_reference
    clock = 0.0
    for event in generate_events(GAME, seed=EVAL_SEED, duration_s=EVAL_DURATION_S):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runtime.deliver(event)
    soc.advance_time(max(0.0, EVAL_DURATION_S - clock))
    return runtime.stats, soc.meter.total_joules


class TestCompiledProbeEquivalence:
    def test_live_key_matches_reference_on_every_event(self, ab_package, snip_config):
        soc = snapdragon_821()
        game = create_game(GAME, seed=GAME_CONTENT_SEED)
        runtime = SnipRuntime(soc, game, ab_package.table.clone(), snip_config)
        clock = 0.0
        checked = 0
        for event in generate_events(GAME, seed=EVAL_SEED,
                                     duration_s=EVAL_DURATION_S):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            # Probe both ways against the *same* live state, before the
            # delivery below mutates it.
            assert runtime.live_key(event) == runtime.live_key_reference(event)
            checked += 1
            runtime.deliver(event)
        assert checked > 100

    def test_unknown_event_types_yield_empty_key(self, ab_package, snip_config):
        runtime = SnipRuntime(
            snapdragon_821(), create_game(GAME, seed=GAME_CONTENT_SEED),
            ab_package.table.clone(), snip_config,
        )
        for event in generate_events(GAME, seed=EVAL_SEED, duration_s=5.0):
            if not ab_package.table.knows(event.event_type):
                assert runtime.live_key(event) == ()

    def test_session_counters_identical_under_reference_probes(
        self, ab_package, snip_config
    ):
        fast_stats, fast_joules = _run_session(ab_package, snip_config)
        ref_stats, ref_joules = _run_session(
            ab_package, snip_config, use_reference_probes=True
        )
        assert dataclasses.asdict(fast_stats) == dataclasses.asdict(ref_stats)
        assert fast_joules == ref_joules
        assert fast_stats.hits > 0  # the session actually exercised the table


class TestPipelineEquivalence:
    def test_cached_package_drives_identical_sessions(
        self, tmp_path, snip_config
    ):
        """A cache round-trip changes nothing the runtime can observe."""
        seeds, duration = [1], 10.0
        built = CloudProfiler(snip_config, cache=None).build_package_from_sessions(
            GAME, seeds=seeds, duration_s=duration
        )
        cache = PackageCache(tmp_path)
        cache.store(package_digest(GAME, snip_config, seeds, duration), built)
        loaded = CloudProfiler(snip_config, cache=cache).build_package_from_sessions(
            GAME, seeds=seeds, duration_s=duration
        )
        assert table_to_dict(loaded.table) == table_to_dict(built.table)
        assert loaded.selection.by_event_type == built.selection.by_event_type
        built_stats, built_joules = _run_session(built, snip_config)
        loaded_stats, loaded_joules = _run_session(loaded, snip_config)
        assert dataclasses.asdict(built_stats) == dataclasses.asdict(loaded_stats)
        assert built_joules == loaded_joules

    def test_profiles_survive_the_cache_for_downstream_analysis(
        self, tmp_path, snip_config
    ):
        seeds, duration = [1], 10.0
        built = CloudProfiler(snip_config, cache=None).build_package_from_sessions(
            GAME, seeds=seeds, duration_s=duration
        )
        cache = PackageCache(tmp_path)
        cache.store("key", built)
        loaded = cache.load("key")
        for event_type, profile in built.analysis.profiles.items():
            lazy = loaded.analysis.profiles[event_type]
            assert lazy.session_count == profile.session_count
            assert lazy.total_cycles == profile.total_cycles
            assert [info.name for info in lazy.universe] == [
                info.name for info in profile.universe
            ]
