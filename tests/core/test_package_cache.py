"""The content-addressed package cache: keys, round-trips, hygiene."""

import dataclasses

import pytest

from repro.core.config import SnipConfig
from repro.core.overrides import DeveloperOverrides
from repro.core.package_cache import (
    PackageCache,
    code_digest,
    default_cache_root,
    default_package_cache,
    package_digest,
)
from repro.core.profiler import CloudProfiler, SnipPackage
from repro.core.serialization import table_to_dict
from repro.schemes.snip_scheme import SnipScheme

GAME = "candy_crush"
SEEDS = [1]
DURATION = 10.0


@pytest.fixture(scope="module")
def built_package():
    return CloudProfiler(SnipConfig(), cache=None).build_package_from_sessions(
        GAME, seeds=SEEDS, duration_s=DURATION
    )


class TestPackageDigest:
    def test_stable_across_calls(self):
        config = SnipConfig()
        assert package_digest(GAME, config, SEEDS, DURATION) == package_digest(
            GAME, config, SEEDS, DURATION
        )

    def test_sensitive_to_every_input(self):
        config = SnipConfig()
        base = package_digest(GAME, config, SEEDS, DURATION)
        assert package_digest("ab_evolution", config, SEEDS, DURATION) != base
        assert package_digest(GAME, config, [2], DURATION) != base
        assert package_digest(GAME, config, SEEDS, DURATION + 1) != base
        tweaked = dataclasses.replace(config, forest_trees=config.forest_trees + 1)
        assert package_digest(GAME, tweaked, SEEDS, DURATION) != base
        forced = DeveloperOverrides(forced_everywhere={"score"})
        assert package_digest(GAME, config, SEEDS, DURATION, forced) != base

    def test_default_overrides_match_none(self):
        config = SnipConfig()
        assert package_digest(GAME, config, SEEDS, DURATION) == package_digest(
            GAME, config, SEEDS, DURATION, DeveloperOverrides()
        )

    def test_code_digest_memoized_and_hexadecimal(self):
        first = code_digest()
        assert first == code_digest()
        int(first, 16)


class TestPackageCacheStore:
    def test_round_trip_preserves_package(self, tmp_path, built_package):
        cache = PackageCache(tmp_path)
        key = package_digest(GAME, SnipConfig(), SEEDS, DURATION)
        cache.store(key, built_package)
        loaded = cache.load(key)
        assert isinstance(loaded, SnipPackage)
        assert loaded.game_name == built_package.game_name
        assert loaded.profile_events == built_package.profile_events
        assert loaded.uplink_bytes == built_package.uplink_bytes
        assert loaded.table_bytes == built_package.table_bytes
        assert table_to_dict(loaded.table) == table_to_dict(built_package.table)
        assert (
            loaded.selection.by_event_type == built_package.selection.by_event_type
        )

    def test_lazy_profiles_load_on_demand(self, tmp_path, built_package):
        cache = PackageCache(tmp_path)
        cache.store("key", built_package)
        loaded = cache.load("key")
        originals = built_package.analysis.profiles
        assert set(loaded.analysis.profiles) == set(originals)
        for event_type, profile in originals.items():
            assert (
                len(loaded.analysis.profiles[event_type].records)
                == len(profile.records)
            )

    def test_miss_returns_none(self, tmp_path):
        assert PackageCache(tmp_path).load("no-such-key") is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, built_package):
        cache = PackageCache(tmp_path)
        path = cache.store("key", built_package)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load("key") is None
        assert not path.exists()

    def test_corrupt_evictions_are_counted(self, tmp_path, built_package):
        cache = PackageCache(tmp_path)
        assert cache.stats().corrupt_evictions == 0
        for round_ in range(2):
            path = cache.store("key", built_package)
            path.write_bytes(b"not a package")
            assert cache.load("key") is None
            assert cache.stats().corrupt_evictions == round_ + 1
        # A clean hit does not move the counter.
        cache.store("key", built_package)
        assert cache.load("key") is not None
        assert cache.corrupt_evictions() == 2

    def test_remove_returns_reclaimed_bytes(self, tmp_path, built_package):
        cache = PackageCache(tmp_path)
        path = cache.store("a", built_package)
        size = path.stat().st_size
        assert cache.remove("a") == size
        assert cache.remove("a") is None
        assert cache.load("a") is None

    def test_stats_and_clear(self, tmp_path, built_package):
        cache = PackageCache(tmp_path)
        assert cache.stats().entries == 0
        cache.store("a", built_package)
        cache.store("b", built_package)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.root == str(tmp_path)
        assert stats.to_dict()["entries"] == 2
        cleared = cache.clear()
        assert cleared.entries == 2
        assert cleared.bytes_reclaimed == stats.total_bytes
        assert cache.stats().entries == 0


class TestCacheConfiguration:
    def test_env_overrides_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNIP_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere"

    def test_opt_out_disables_default_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNIP_NO_CACHE", "1")
        assert default_package_cache() is None
        monkeypatch.delenv("REPRO_SNIP_NO_CACHE")
        assert default_package_cache() is not None

    def test_profiler_cache_none_disables(self):
        assert CloudProfiler(cache=None).cache is None


class TestCacheHits:
    def test_second_build_skips_profiling(self, tmp_path, monkeypatch):
        cache = PackageCache(tmp_path)
        builds = []
        original = CloudProfiler.build_package

        def counting(self, game_name, traces):
            builds.append(game_name)
            return original(self, game_name, traces)

        monkeypatch.setattr(CloudProfiler, "build_package", counting)
        first = CloudProfiler(cache=cache).build_package_from_sessions(
            GAME, seeds=SEEDS, duration_s=DURATION
        )
        second = CloudProfiler(cache=cache).build_package_from_sessions(
            GAME, seeds=SEEDS, duration_s=DURATION
        )
        assert builds == [GAME]
        assert table_to_dict(first.table) == table_to_dict(second.table)

    def test_scheme_prepare_hits_shared_cache(self, tmp_path, monkeypatch):
        cache = PackageCache(tmp_path)
        builds = []
        original = CloudProfiler.build_package

        def counting(self, game_name, traces):
            builds.append(game_name)
            return original(self, game_name, traces)

        monkeypatch.setattr(CloudProfiler, "build_package", counting)

        def prepare():
            # Fresh scheme each time: only the on-disk cache is shared.
            scheme = SnipScheme(
                profile_seeds=SEEDS, profile_duration_s=DURATION, cache=cache
            )
            return scheme.prepare(GAME)

        first = prepare()
        second = prepare()
        assert builds == [GAME]
        assert table_to_dict(first.table) == table_to_dict(second.table)

    def test_different_config_misses(self, tmp_path, monkeypatch):
        cache = PackageCache(tmp_path)
        builds = []
        original = CloudProfiler.build_package

        def counting(self, game_name, traces):
            builds.append(game_name)
            return original(self, game_name, traces)

        monkeypatch.setattr(CloudProfiler, "build_package", counting)
        CloudProfiler(cache=cache).build_package_from_sessions(
            GAME, seeds=SEEDS, duration_s=DURATION
        )
        other = SnipConfig(forest_trees=SnipConfig().forest_trees + 1)
        CloudProfiler(other, cache=cache).build_package_from_sessions(
            GAME, seeds=SEEDS, duration_s=DURATION
        )
        assert builds == [GAME, GAME]
