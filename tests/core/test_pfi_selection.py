"""Tests for PFI analysis and necessary-input selection."""

import pytest

from repro.android.events import EventType
from repro.core.overrides import DeveloperOverrides
from repro.core.pfi import build_event_profiles
from repro.core.selection import (
    gated_table_stats,
    select_necessary_inputs,
    table_error,
    trimming_curve,
)
from repro.errors import ProfilerError
from repro.games.base import InputCategory


class TestEventProfiles:
    def test_one_profile_per_event_type(self, ab_records, snip_config):
        profiles = build_event_profiles(ab_records, snip_config)
        assert set(profiles) == {record.event_type for record in ab_records}

    def test_dataset_shape(self, ab_records, snip_config):
        profiles = build_event_profiles(ab_records, snip_config)
        profile = profiles[EventType.MULTI_TOUCH]
        assert profile.dataset.n_rows == len(profile.records)
        assert profile.dataset.n_features == len(profile.universe)

    def test_weights_are_cycles(self, ab_records, snip_config):
        profiles = build_event_profiles(ab_records, snip_config)
        profile = profiles[EventType.SWIPE]
        expected = [float(r.trace.total_cycles) for r in profile.records]
        assert profile.dataset.sample_weight.tolist() == expected

    def test_empty_profile_rejected(self, snip_config):
        with pytest.raises(ProfilerError):
            build_event_profiles([], snip_config)

    def test_session_count(self, ab_package):
        profile = ab_package.analysis.profiles[EventType.FRAME_TICK]
        assert profile.session_count == 2


class TestPfi:
    def test_importances_cover_universe(self, ab_analysis):
        for event_type, ranked in ab_analysis.importances.items():
            universe_names = {
                info.name for info in ab_analysis.profiles[event_type].universe
            }
            assert {imp.name for imp in ranked} == universe_names

    def test_importances_sorted_descending(self, ab_analysis):
        for ranked in ab_analysis.importances.values():
            values = [imp.importance for imp in ranked]
            assert values == sorted(values, reverse=True)

    def test_stretch_matters_for_drags(self, ab_analysis):
        # The catapult stretch is the dominant drag input; PFI must not
        # rank it at the bottom.
        ranked = ab_analysis.importances[EventType.MULTI_TOUCH]
        position = next(
            i for i, imp in enumerate(ranked) if imp.name == "hist:stretch"
        )
        assert position < len(ranked) / 2

    def test_event_types_ordered_by_cycles(self, ab_analysis):
        ordered = ab_analysis.event_types()
        cycles = [ab_analysis.profiles[t].total_cycles for t in ordered]
        assert cycles == sorted(cycles, reverse=True)


class TestTableError:
    def test_full_universe_error_is_zero(self, ab_analysis):
        # Keying on every input location reproduces outputs exactly.
        for profile in ab_analysis.profiles.values():
            assert table_error(profile, profile.universe) == pytest.approx(0.0)

    def test_empty_key_error_is_high(self, ab_analysis):
        profile = ab_analysis.profiles[EventType.FRAME_TICK]
        assert table_error(profile, []) > 0.3

    def test_error_monotone_under_refinement(self, ab_analysis):
        profile = ab_analysis.profiles[EventType.MULTI_TOUCH]
        subset = profile.universe[:3]
        superset = profile.universe[:8]
        assert table_error(profile, superset) <= table_error(profile, subset) + 1e-9


class TestGatedStats:
    def test_coverage_and_error_in_unit_interval(self, ab_analysis, snip_config):
        profile = ab_analysis.profiles[EventType.FRAME_TICK]
        stats = gated_table_stats(profile, profile.universe[:4], snip_config)
        assert 0.0 <= stats.coverage <= 1.0
        assert 0.0 <= stats.error <= 1.0

    def test_gate_kills_fragmenting_keys(self, ab_analysis, snip_config):
        profile = ab_analysis.profiles[EventType.FRAME_TICK]
        score = [info for info in profile.universe if info.name == "hist:score"]
        with_score = gated_table_stats(profile, profile.universe, snip_config)
        # Keying on everything (incl. per-session-unique combos) can
        # never beat the curated selection.
        selection = select_necessary_inputs(ab_analysis, snip_config)
        selected = selection.fields_for(EventType.FRAME_TICK)
        curated = gated_table_stats(profile, selected, snip_config)
        assert curated.coverage >= with_score.coverage - 1e-9
        assert score  # the fragmenting field exists in the universe

    def test_error_stays_below_consistency_slack(self, ab_analysis, snip_config):
        selection = select_necessary_inputs(ab_analysis, snip_config)
        for event_type, profile in ab_analysis.profiles.items():
            stats = gated_table_stats(
                profile, selection.fields_for(event_type), snip_config
            )
            # The consistency gate bounds in-profile error.
            assert stats.error <= (1 - snip_config.table_consistency) + 0.01


class TestSelection:
    def test_selected_fields_subset_of_universe(self, ab_package):
        for event_type, fields in ab_package.selection.by_event_type.items():
            universe = {
                info.name for info in ab_package.analysis.profiles[event_type].universe
            }
            assert {info.name for info in fields} <= universe

    def test_selection_sheds_wide_blobs(self, ab_package):
        # The 100+ kB layout buffer must never survive into a key.
        for event_type in ab_package.selection.by_event_type:
            assert ab_package.selection.comparison_bytes(event_type) < 1_000

    def test_selection_is_tiny_fraction_of_record(self, ab_package):
        # Fig. 9: necessary inputs are a sliver of the full record.
        full = ab_package.full_record_bytes / max(1, ab_package.profile_events)
        assert ab_package.selection.total_bytes < full * 0.05

    def test_forced_fields_kept(self, ab_analysis, snip_config):
        overrides = DeveloperOverrides()
        overrides.force("hist:wind", EventType.MULTI_TOUCH)
        selection = select_necessary_inputs(ab_analysis, snip_config, overrides)
        names = {info.name for info in selection.fields_for(EventType.MULTI_TOUCH)}
        assert "hist:wind" in names

    def test_category_breakdown_sums(self, ab_package):
        split = ab_package.selection.category_breakdown()
        assert sum(split.values()) == ab_package.selection.total_bytes

    def test_unknown_event_type_empty(self, ab_package):
        assert ab_package.selection.fields_for(EventType.GPS) == []
        assert ab_package.selection.comparison_bytes(EventType.GPS) == 0


class TestTrimmingCurve:
    def test_starts_accurate_ends_inaccurate(self, ab_analysis):
        points = trimming_curve(ab_analysis)
        assert points[0].error == pytest.approx(0.0, abs=1e-9)
        assert points[-1].error > points[0].error

    def test_bytes_monotone_decreasing(self, ab_analysis):
        points = trimming_curve(ab_analysis)
        sizes = [point.bytes_kept for point in points]
        assert sizes == sorted(sizes, reverse=True)

    def test_one_point_per_removable_field(self, ab_analysis):
        points = trimming_curve(ab_analysis)
        removable = sum(
            len(profile.universe) for profile in ab_analysis.profiles.values()
        )
        assert len(points) == removable + 1

    def test_removal_metadata_populated(self, ab_analysis):
        points = trimming_curve(ab_analysis)
        assert points[0].removed_field is None
        assert all(point.removed_field for point in points[1:])
        assert all(
            isinstance(point.removed_category, InputCategory)
            for point in points[1:]
        )
