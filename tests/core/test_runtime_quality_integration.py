"""Integration: quality controller riding a full scheme-style session."""

import pytest

from repro.core.quality import QualityController
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.sessions import run_baseline_session
from repro.users.tracegen import generate_events

GAME = "candy_crush"
DURATION = 20.0


class TestSupervisedSession:
    @pytest.fixture(scope="class")
    def supervised(self, snip_config):
        from repro.core.profiler import CloudProfiler

        package = CloudProfiler(snip_config).build_package_from_sessions(
            GAME, seeds=[1, 2], duration_s=20.0
        )
        soc = snapdragon_821()
        runtime = SnipRuntime(
            soc, create_game(GAME, GAME_CONTENT_SEED),
            package.table.clone(), snip_config,
        )
        controller = QualityController(
            runtime, audit_rate=0.1, clear_threshold=0.3
        )
        clock = 0.0
        for event in generate_events(GAME, 9, DURATION):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            controller.deliver(event)
        soc.advance_time(max(0.0, DURATION - clock))
        return controller

    def test_supervision_leaves_savings_intact(self, supervised):
        baseline = run_baseline_session(GAME, seed=9, duration_s=DURATION)
        supervised_joules = supervised.runtime.soc.meter.total_joules
        savings = 1 - supervised_joules / baseline.report.total_joules
        assert savings > 0.15  # audits are sampled, not ruinous

    def test_audits_happened_and_were_clean(self, supervised):
        report = supervised.report()
        assert report.audited_hits > 5
        assert report.snip_enabled
        assert report.rolling_error <= 0.3

    def test_runtime_still_short_circuits(self, supervised):
        assert supervised.runtime.stats.hit_rate > 0.5
