"""Tests for the SNIP table, device runtime, profiler, and learning."""

import pytest

from repro.android.events import EventType, make_frame_tick
from repro.core.config import SnipConfig
from repro.core.learning import ContinuousLearner
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.core.table import SnipTable
from repro.errors import MemoizationError, ProfilerError, SchemeError
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.energy import TAG_LOOKUP
from repro.soc.soc import snapdragon_821
from repro.users.tracegen import generate_events, generate_trace


class TestSnipTable:
    def test_build_requires_records(self, ab_package):
        with pytest.raises(MemoizationError):
            SnipTable.build([], ab_package.selection)

    def test_entries_are_gated(self, ab_records, ab_package, snip_config):
        table = SnipTable.build(ab_records, ab_package.selection, snip_config)
        # A single 30 s session: every entry needed >= table_min_count
        # occurrences, so the entry count is far below the event count.
        assert 0 < table.entry_count < len(ab_records) / 2

    def test_knows_vs_lookup(self, ab_package):
        table = ab_package.table
        assert table.knows(EventType.FRAME_TICK)
        assert not table.knows(EventType.GPS)
        assert table.lookup(EventType.GPS, ()) is None

    def test_total_bytes_positive_and_small(self, ab_package):
        assert 0 < ab_package.table.total_bytes < ab_package.full_record_bytes / 100

    def test_event_types_listed(self, ab_package):
        assert EventType.FRAME_TICK in ab_package.table.event_types()

    def test_key_for_record_uses_selection_order(self, ab_records, ab_package):
        record = ab_records[0]
        fields = ab_package.selection.fields_for(record.event_type)
        key = SnipTable.key_for_record(record, fields)
        assert len(key) == len(fields)


class TestSnipRuntime:
    @pytest.fixture()
    def runtime(self, ab_package, snip_config):
        soc = snapdragon_821()
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        return SnipRuntime(soc, game, ab_package.table, snip_config)

    def _run(self, runtime, seed=7, duration=20.0):
        clock = 0.0
        for event in generate_events("ab_evolution", seed, duration):
            if event.timestamp > clock:
                runtime.soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)

    def test_short_circuits_most_events(self, runtime):
        self._run(runtime)
        assert runtime.stats.hit_rate > 0.5
        assert runtime.stats.events == runtime.stats.hits + runtime.stats.misses

    def test_saves_energy_vs_baseline(self, runtime):
        from repro.users.sessions import run_baseline_session

        self._run(runtime)
        runtime.soc.advance_time(max(0.0, 20.0 - runtime.soc.elapsed_seconds))
        baseline = run_baseline_session("ab_evolution", seed=7, duration_s=20.0)
        assert runtime.soc.meter.total_joules < baseline.report.total_joules

    def test_lookup_costs_tagged(self, runtime):
        self._run(runtime, duration=5.0)
        assert runtime.soc.meter.tag_joules(TAG_LOOKUP) > 0

    def test_engine_advances_even_on_hits(self, runtime):
        # Deliver many ticks; the AB engine has no tick bookkeeping, but
        # a snipped race tick must still advance the track.
        from repro.schemes.snip_scheme import SnipScheme

        scheme = SnipScheme(SnipConfig(), profile_seeds=(1,), profile_duration_s=20.0)
        soc = snapdragon_821()
        game = create_game("race_kings", seed=GAME_CONTENT_SEED)
        runner = scheme.make_runner(soc, game)
        for index in range(120):
            runner.deliver(make_frame_tick(slot=index % 4, sequence=index + 1))
        assert game.state.peek("track_pos") == 120

    def test_online_learning_promotes_entries(self, ab_package, snip_config):
        soc = snapdragon_821()
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        empty_table = SnipTable(ab_package.selection)
        runtime = SnipRuntime(soc, game, empty_table, snip_config)
        self._run(runtime, seed=11, duration=20.0)
        assert runtime.stats.online_promotions > 0
        assert runtime.stats.hits > 0  # promoted entries fire later

    def test_online_learning_disabled(self, ab_package):
        config = SnipConfig(online_warmup=0)
        soc = snapdragon_821()
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        runtime = SnipRuntime(soc, game, SnipTable(ab_package.selection), config)
        self._run(runtime, seed=11, duration=10.0)
        assert runtime.stats.online_promotions == 0
        assert runtime.stats.hits == 0

    def test_would_be_correct_on_live_state(self, runtime):
        events = generate_events("ab_evolution", 7, 10.0)
        clock = 0.0
        checked = 0
        for event in events:
            if event.timestamp > clock:
                runtime.soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.game.advance_engine(event)
            verdict = runtime.would_be_correct(event)
            if verdict is not None:
                checked += 1
                assert verdict in (True, False)
            runtime.game.process(event)
        assert checked > 0


class TestCloudProfiler:
    def test_package_accounting(self, ab_package):
        assert ab_package.profile_events > 0
        assert ab_package.uplink_bytes < ab_package.full_record_bytes / 1000
        assert ab_package.shrink_factor > 100
        assert ab_package.backend_seconds > 0

    def test_replay_requires_traces(self, snip_config):
        with pytest.raises(ProfilerError):
            CloudProfiler(snip_config).replay_traces("ab_evolution", [])

    def test_sessions_tagged_by_index(self, snip_config):
        profiler = CloudProfiler(snip_config)
        traces = [generate_trace("colorphun", s, 5.0) for s in (1, 2)]
        records = profiler.replay_traces("colorphun", traces)
        assert {record.session for record in records} == {0, 1}


class TestContinuousLearning:
    def test_fig12_shape_on_colorphun(self):
        # Insufficient initial profile -> heavy errors; more sessions ->
        # near-zero errors (the paper's Fig. 12 trajectory).
        learner = ContinuousLearner(
            "colorphun", session_duration_s=15.0, initial_events=40, ramp=2.5
        )
        results = learner.run(4)
        assert len(results) == 4
        assert results[0].error_fraction > 0.10
        assert not results[0].confident
        assert results[-1].error_fraction < 0.01
        assert results[-1].error_fraction < results[0].error_fraction
        assert results[-1].training_events > results[0].training_events

    def test_errors_decay_on_ab_evolution(self):
        learner = ContinuousLearner(
            "ab_evolution", session_duration_s=15.0, initial_events=50, ramp=2.5
        )
        results = learner.run(4)
        assert results[-1].error_fraction < max(0.01, results[0].error_fraction)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ContinuousLearner("colorphun", initial_events=0)
        with pytest.raises(ValueError):
            ContinuousLearner("colorphun", ramp=1.0)


class TestSchemeGuards:
    def test_package_required_before_sessions(self):
        from repro.schemes.snip_scheme import SnipScheme

        with pytest.raises(SchemeError):
            SnipScheme().package_for("colorphun")
