"""Tests for the quality controller and federated table building."""

import pytest

from repro.core.config import SnipConfig
from repro.core.federated import (
    FederatedAggregator,
    build_device_contribution,
    federate,
)
from repro.core.quality import QualityController
from repro.core.runtime import SnipRuntime
from repro.core.table import TableEntry
from repro.errors import ProfilerError
from repro.games.base import FieldWrite, OutputCategory
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.population import Population
from repro.users.tracegen import generate_events


def _runtime(table, config=None):
    soc = snapdragon_821()
    game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
    return SnipRuntime(soc, game, table, config or SnipConfig())


def _drive(controller, seed=7, duration=15.0):
    soc = controller.runtime.soc
    clock = 0.0
    for event in generate_events("ab_evolution", seed, duration):
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        controller.deliver(event)


class TestQualityController:
    def test_healthy_runtime_stays_enabled(self, ab_package):
        controller = QualityController(
            _runtime(ab_package.table.clone()), audit_rate=0.2
        )
        _drive(controller)
        report = controller.report()
        assert report.snip_enabled
        assert report.audited_hits > 0
        assert report.rolling_error < 0.2

    def test_poisoned_table_triggers_clear(self, ab_package):
        # Corrupt every stored output: audits must catch it.
        poisoned = ab_package.table.clone()
        for event_type in list(poisoned._entries):
            for key, entry in list(poisoned._entries[event_type].items()):
                bad_writes = tuple(
                    FieldWrite(w.name, w.category, ("corrupt", w.value),
                               w.nbytes, w.changed)
                    for w in entry.writes
                ) or (FieldWrite("hist:fake", OutputCategory.HISTORY,
                                 1, 4, True),)
                poisoned.install_entry(
                    event_type, key,
                    TableEntry(bad_writes, entry.avg_cycles, entry.profile_weight),
                )
        controller = QualityController(
            _runtime(poisoned, SnipConfig(online_warmup=0)),
            audit_rate=0.5, window=20, clear_threshold=0.2, max_clears=1,
        )
        _drive(controller, duration=20.0)
        report = controller.report()
        assert report.clears >= 1 or not report.snip_enabled
        assert report.audit_errors > 0

    def test_user_complaints_disable_snip(self, ab_package):
        controller = QualityController(
            _runtime(ab_package.table.clone()), complaint_limit=2
        )
        controller.user_feedback(satisfied=False)
        assert controller.runtime.enabled
        controller.user_feedback(satisfied=False)
        assert not controller.runtime.enabled

    def test_satisfied_feedback_heals(self, ab_package):
        controller = QualityController(
            _runtime(ab_package.table.clone()), complaint_limit=2
        )
        controller.user_feedback(satisfied=False)
        controller.user_feedback(satisfied=True)
        controller.user_feedback(satisfied=False)
        assert controller.runtime.enabled  # never reached the limit

    def test_disabled_runtime_takes_baseline_path(self, ab_package):
        runtime = _runtime(ab_package.table.clone())
        runtime.enabled = False
        clock = 0.0
        for event in generate_events("ab_evolution", 7, 5.0):
            if event.timestamp > clock:
                runtime.soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        assert runtime.stats.hits == 0
        assert runtime.soc.meter.tag_joules("lookup") == 0.0

    def test_parameters_validated(self, ab_package):
        runtime = _runtime(ab_package.table.clone())
        with pytest.raises(ValueError):
            QualityController(runtime, audit_rate=0.0)
        with pytest.raises(ValueError):
            QualityController(runtime, window=2)
        with pytest.raises(ValueError):
            QualityController(runtime, clear_threshold=1.0)


class TestFederated:
    @pytest.fixture(scope="class")
    def fleet(self, ab_package):
        population = Population(seed=3)
        per_device = {
            device_id: [
                population.user_trace("ab_evolution", device_id, session, 20.0)
                for session in range(2)
            ]
            for device_id in range(3)
        }
        return per_device

    def test_contribution_carries_statistics(self, ab_package, fleet):
        contribution = build_device_contribution(
            0, "ab_evolution", fleet[0], ab_package.selection
        )
        assert contribution.events_observed > 0
        assert contribution.signature_weight
        assert contribution.upload_bytes > 0

    def test_contribution_requires_sessions(self, ab_package):
        with pytest.raises(ProfilerError):
            build_device_contribution(0, "ab_evolution", [], ab_package.selection)

    def test_federate_builds_working_table(self, ab_package, fleet):
        table, uplink = federate(
            "ab_evolution", fleet, ab_package.selection, SnipConfig()
        )
        assert table.entry_count > 0
        assert uplink > 0
        # The fleet table must serve a fresh user.
        runtime = _runtime(table, SnipConfig())
        clock = 0.0
        for event in generate_events("ab_evolution", 99, 15.0):
            if event.timestamp > clock:
                runtime.soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        assert runtime.stats.hit_rate > 0.3

    def test_uplink_is_kilobytes_not_gigabytes(self, ab_package, fleet):
        _, uplink = federate(
            "ab_evolution", fleet, ab_package.selection, SnipConfig()
        )
        # The federated upload is per-key statistics: kilobytes, versus
        # the multi-gigabyte naive record store the central profiler
        # would otherwise have to materialise (and zero raw events).
        assert uplink < 2_000_000
        assert uplink < ab_package.full_record_bytes / 1000

    def test_aggregator_requires_contributions(self, ab_package):
        aggregator = FederatedAggregator(ab_package.selection, SnipConfig())
        with pytest.raises(ProfilerError):
            aggregator.build_table()

    def test_fleet_confirmation_promotes_keys(self, ab_package, fleet):
        config = SnipConfig()
        aggregator = FederatedAggregator(ab_package.selection, config)
        for device_id, traces in fleet.items():
            aggregator.merge(
                build_device_contribution(
                    device_id, "ab_evolution", traces, ab_package.selection
                )
            )
        assert aggregator.contribution_count == len(fleet)
        table = aggregator.build_table()
        assert table.entry_count > 0
