"""Ground-truth recovery: selection must find known necessary inputs.

These tests build a tiny synthetic game whose outputs depend on a KNOWN
subset of inputs, run the full profile -> PFI -> selection pipeline, and
check that the necessary fields are recovered, the decoys are trimmed,
and the resulting table generalizes.
"""

import pytest

from repro.android.emulator import Emulator
from repro.android.events import EventType, make_touch
from repro.android.tracing import EventTracer
from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.core.table import SnipTable
from repro.games.base import Game, HandlerContext, mix_values
from repro.rng import ReproRng


class OracleGame(Game):
    """Outputs depend ONLY on (event x-bucket, hist:mode).

    Everything else is decoys: ``noise`` is an engine-maintained wall
    clock (changes every event, influences nothing), ``constant`` never
    changes, ``wide_blob`` is a huge engine-maintained buffer that
    mirrors ``mode`` (the cheap/wide duplicate pair).
    """

    name = "oracle"
    handled_event_types = (EventType.TOUCH,)

    def build_state(self) -> None:
        self.state.declare("mode", 0, 1)
        self.state.declare("noise", 0, 4)
        self.state.declare("constant", 7, 4)
        self.state.declare("wide_blob", 0, 50_000)

    def advance_engine(self, event) -> None:
        self.state.write("noise", self.state.peek("noise") + 1)
        self.state.write("wide_blob", self.state.peek("mode"))

    def on_event(self, ctx: HandlerContext) -> None:
        x = ctx.ev("x")
        mode = ctx.hist("mode")
        ctx.cpu(100_000)
        bucket = x // 480  # three buckets across the screen
        result = mix_values("f", bucket, mode) % 1000
        ctx.out_temp("result", result, 8)
        # Mode flips when the user taps the right edge.
        new_mode = 1 - mode if bucket == 2 else mode
        ctx.out_hist("mode", new_mode)


def _session(seed: int, events: int = 400):
    rng = ReproRng(seed)
    tracer = EventTracer("oracle", seed=seed)
    for index in range(1, events + 1):
        tracer.record(
            make_touch(rng.integer(0, 1440), rng.integer(0, 2560),
                       sequence=index, timestamp=index * 0.05)
        )
    return tracer.trace


@pytest.fixture(scope="module")
def oracle_pipeline():
    config = SnipConfig()
    profiler = CloudProfiler(config)
    records = []
    for session, seed in enumerate((1, 2, 3)):
        records.extend(
            profiler.emulator.replay(OracleGame(seed=0), _session(seed),
                                     session=session)
        )
    analysis = profiler.analyze(records)
    selection = profiler.select(analysis)
    table = SnipTable.build(records, selection, config)
    return config, records, analysis, selection, table


class TestGroundTruthRecovery:
    def test_necessary_fields_recovered(self, oracle_pipeline):
        _, _, _, selection, _ = oracle_pipeline
        names = {info.name for info in selection.fields_for(EventType.TOUCH)}
        assert "event:x" in names
        # mode's information must be present — either directly or via
        # its narrow... the blob is 50 kB, so the selection must carry
        # the 1-byte mode, not the blob.
        assert "hist:mode" in names

    def test_decoys_trimmed(self, oracle_pipeline):
        _, _, _, selection, _ = oracle_pipeline
        names = {info.name for info in selection.fields_for(EventType.TOUCH)}
        assert "hist:noise" not in names       # wall clock fragments keys
        assert "hist:wide_blob" not in names   # 50 kB duplicate of mode
        assert "hist:outputs_count" not in names

    def test_comparison_is_bytes_not_kilobytes(self, oracle_pipeline):
        _, _, _, selection, _ = oracle_pipeline
        assert selection.comparison_bytes(EventType.TOUCH) < 64

    def test_pfi_ranks_true_inputs_highly(self, oracle_pipeline):
        _, _, analysis, _, _ = oracle_pipeline
        ranked = [imp.name for imp in analysis.importances[EventType.TOUCH]]
        top_half = set(ranked[: len(ranked) // 2])
        assert "event:x" in top_half

    def test_table_generalizes_to_unseen_session(self, oracle_pipeline):
        config, _, _, selection, table = oracle_pipeline
        emulator = Emulator(verify=False)
        hits = 0
        correct = 0
        for record in emulator.replay(OracleGame(seed=0), _session(99),
                                      session=9):
            key = SnipTable.key_for_record(
                record, selection.fields_for(EventType.TOUCH)
            )
            entry = table.lookup(EventType.TOUCH, key)
            if entry is None:
                continue
            hits += 1
            predicted = {w.name: w.value for w in entry.writes}
            actual = {w.name: w.value for w in record.trace.writes}
            if predicted == actual:
                correct += 1
        assert hits > 0
        assert correct / hits > 0.98

    def test_full_universe_error_zero_on_oracle(self, oracle_pipeline):
        from repro.core.selection import table_error

        _, _, analysis, _, _ = oracle_pipeline
        profile = analysis.profiles[EventType.TOUCH]
        assert table_error(profile, profile.universe) == pytest.approx(0.0)
