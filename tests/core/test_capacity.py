"""Tests for capacity-bounded on-device tables and forest OOB."""

import numpy as np
import pytest

from repro.android.events import EventType
from repro.core.config import SnipConfig
from repro.core.runtime import SnipRuntime
from repro.core.table import SnipTable, TableEntry
from repro.errors import ConfigurationError
from repro.games.base import FieldWrite, OutputCategory
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.ml.forest import RandomForestClassifier
from repro.soc.soc import snapdragon_821
from repro.users.tracegen import generate_events


def _entry(weight):
    return TableEntry(
        writes=(FieldWrite("temp:x", OutputCategory.TEMP, weight, 8, True),),
        avg_cycles=1000.0,
        profile_weight=weight,
    )


class TestEviction:
    def test_evicts_lowest_confidence(self, ab_package):
        table = SnipTable(ab_package.selection)
        table.install_entry(EventType.FRAME_TICK, (1,), _entry(100.0))
        table.install_entry(EventType.FRAME_TICK, (2,), _entry(5.0))
        table.install_entry(EventType.TOUCH, (3,), _entry(50.0))
        assert table.evict_weakest()
        assert table.lookup(EventType.FRAME_TICK, (2,)) is None
        assert table.lookup(EventType.FRAME_TICK, (1,)) is not None
        assert table.entry_count == 2

    def test_evict_empty_table(self, ab_package):
        table = SnipTable(ab_package.selection)
        assert not table.evict_weakest()

    def test_capacity_enforced_at_runtime(self, ab_package):
        config = SnipConfig(table_capacity_entries=10)
        soc = snapdragon_821()
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        runtime = SnipRuntime(soc, game, SnipTable(ab_package.selection), config)
        clock = 0.0
        for event in generate_events("ab_evolution", 11, 20.0):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        assert runtime.table.entry_count <= 10
        assert runtime.stats.evictions > 0
        assert runtime.stats.online_promotions > runtime.stats.evictions

    def test_unbounded_when_zero(self, ab_package):
        config = SnipConfig(table_capacity_entries=0)
        soc = snapdragon_821()
        game = create_game("ab_evolution", seed=GAME_CONTENT_SEED)
        runtime = SnipRuntime(soc, game, SnipTable(ab_package.selection), config)
        clock = 0.0
        for event in generate_events("ab_evolution", 11, 10.0):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        assert runtime.stats.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SnipConfig(table_capacity_entries=-1)


class TestForestOob:
    def test_oob_estimates_generalization(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(0, 4, size=(500, 2))
        labels = features[:, 0].astype(int)
        forest = RandomForestClassifier(n_trees=9, seed=0).fit(features, labels)
        assert forest.oob_accuracy_ is not None
        assert forest.oob_accuracy_ > 0.85

    def test_oob_reflects_noise_floor(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(size=(300, 2))
        labels = rng.integers(0, 2, size=300)  # pure noise
        forest = RandomForestClassifier(n_trees=9, seed=0).fit(features, labels)
        assert forest.oob_accuracy_ is not None
        assert forest.oob_accuracy_ < 0.65
