"""Tests for developer overrides (paper Sec. V-B Option 1)."""

from repro.android.events import EventType
from repro.core.overrides import DeveloperOverrides


class TestDeveloperOverrides:
    def test_force_per_event_type(self):
        overrides = DeveloperOverrides()
        overrides.force("hist:score", EventType.TOUCH)
        assert overrides.is_forced(EventType.TOUCH, "hist:score")
        assert not overrides.is_forced(EventType.SWIPE, "hist:score")

    def test_force_everywhere(self):
        overrides = DeveloperOverrides()
        overrides.force("hist:score")
        for event_type in EventType:
            assert overrides.is_forced(event_type, "hist:score")

    def test_defaults_force_nothing(self):
        overrides = DeveloperOverrides()
        assert not overrides.is_forced(EventType.TOUCH, "anything")
        assert not overrides.tolerate_temp_errors

    def test_temp_tolerance_relaxes_signatures(self, ab_analysis, snip_config):
        """Marking Out.Temp tolerant can only help the selection error."""
        from repro.core.selection import table_error

        profile = ab_analysis.profiles[EventType.MULTI_TOUCH]
        subset = profile.universe[:4]
        strict = table_error(profile, subset, ignore_temp=False)
        relaxed = table_error(profile, subset, ignore_temp=True)
        assert relaxed <= strict + 1e-12
