"""Tests for the input-location schema and SNIP configuration."""

import pytest

from repro.android.events import EventType
from repro.core.config import SnipConfig
from repro.core.fields import (
    category_bytes,
    input_universe,
    record_inputs,
    records_by_event_type,
    universe_bytes,
)
from repro.errors import ConfigurationError
from repro.games.base import InputCategory


class TestConfig:
    def test_defaults_valid(self):
        config = SnipConfig()
        assert config.table_consistency == 0.98
        assert config.online_warmup == 2

    def test_forest_params_validated(self):
        with pytest.raises(ConfigurationError):
            SnipConfig(forest_trees=0)

    def test_lookup_costs_validated(self):
        with pytest.raises(ConfigurationError):
            SnipConfig(lookup_base_cycles=-1)

    def test_consistency_validated(self):
        with pytest.raises(ConfigurationError):
            SnipConfig(table_consistency=0.4)

    def test_warmup_validated(self):
        with pytest.raises(ConfigurationError):
            SnipConfig(online_warmup=-1)

    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            SnipConfig(selection_epsilon=0.9)

    def test_frozen(self):
        with pytest.raises(Exception):
            SnipConfig().table_consistency = 0.5


class TestFields:
    def test_grouping_by_event_type(self, ab_records):
        grouped = records_by_event_type(ab_records)
        assert EventType.MULTI_TOUCH in grouped
        assert sum(len(group) for group in grouped.values()) == len(ab_records)

    def test_universe_covers_all_categories(self, ab_records):
        grouped = records_by_event_type(ab_records)
        universe = input_universe(EventType.MULTI_TOUCH, grouped[EventType.MULTI_TOUCH])
        categories = {info.category for info in universe}
        assert InputCategory.EVENT in categories
        assert InputCategory.HISTORY in categories

    def test_universe_event_fields_match_schema(self, ab_records):
        from repro.android.events import schema_for

        grouped = records_by_event_type(ab_records)
        universe = input_universe(EventType.SWIPE, grouped[EventType.SWIPE])
        event_fields = [
            info.name for info in universe if info.category is InputCategory.EVENT
        ]
        expected = [f"event:{name}" for name in schema_for(EventType.SWIPE).field_names]
        assert event_fields == expected

    def test_universe_history_uses_max_size(self, ab_records):
        grouped = records_by_event_type(ab_records)
        universe = input_universe(EventType.FRAME_TICK, grouped[EventType.FRAME_TICK])
        layout = next(info for info in universe if info.name == "hist:level_layout")
        observed = max(
            dict(record.state_snapshot)["level_layout"][1]
            for record in grouped[EventType.FRAME_TICK]
        )
        assert layout.nbytes == observed

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            input_universe(EventType.TOUCH, [])

    def test_record_inputs_prefixes(self, ab_records):
        inputs = record_inputs(ab_records[0])
        assert any(name.startswith("event:") for name in inputs)
        assert any(name.startswith("hist:") for name in inputs)

    def test_record_inputs_values_match_snapshot(self, ab_records):
        record = ab_records[0]
        inputs = record_inputs(record)
        for name, (value, _) in record.state_snapshot:
            assert inputs[f"hist:{name}"] == value

    def test_universe_bytes_and_categories(self, ab_records):
        grouped = records_by_event_type(ab_records)
        universe = input_universe(EventType.MULTI_TOUCH, grouped[EventType.MULTI_TOUCH])
        total = universe_bytes(universe)
        split = category_bytes(universe)
        assert total == sum(split.values())
        assert split[InputCategory.HISTORY] > split[InputCategory.EVENT]
