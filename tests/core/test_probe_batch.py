"""Batched table probing equals the scalar key-build + lookup loop.

``SnipRuntime.probe_batch`` groups a session by event type, builds each
type's key column with the compiled field readers, and gathers entries
through ``SnipTable.lookup_batch``; ``session_keys`` precomputes the
state-independent keys ``deliver`` accepts. Both must match the scalar
``live_key_reference`` + ``lookup`` path exactly, entry for entry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.core.runtime import SnipRuntime
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.tracegen import generate_events

GAME = "candy_crush"
DURATION_S = 10.0


@pytest.fixture(scope="module")
def probe_setup():
    config = SnipConfig()
    package = CloudProfiler(config, cache=None).build_package_from_sessions(
        GAME, seeds=[1], duration_s=DURATION_S
    )
    runtime = SnipRuntime(
        snapdragon_821(),
        create_game(GAME, seed=GAME_CONTENT_SEED),
        package.table,
        config,
    )
    events = list(generate_events(GAME, seed=9, duration_s=DURATION_S))
    return runtime, package.table, events


def test_probe_batch_matches_scalar_loop(probe_setup):
    runtime, table, events = probe_setup
    keys, entries, hit_mask = runtime.probe_batch(events)
    assert len(keys) == len(entries) == len(events)
    assert hit_mask.dtype == np.bool_ and hit_mask.shape == (len(events),)
    checked_hits = 0
    for event, key, entry, hit in zip(events, keys, entries, hit_mask):
        if not table.knows(event.event_type):
            assert key is None and entry is None and not hit
            continue
        scalar_key = runtime.live_key_reference(event)
        assert key == scalar_key
        scalar_entry = table.lookup(event.event_type, scalar_key)
        assert entry is scalar_entry
        assert bool(hit) == (scalar_entry is not None)
        checked_hits += bool(hit)
    assert checked_hits > 100  # the session actually exercised the table


def test_session_keys_cover_event_only_types():
    # chase_whisply is the game whose profiled selection keeps an
    # event-only type (camera_frame) — the others key on state fields,
    # so their sessions legitimately yield no precomputable keys.
    config = SnipConfig()
    package = CloudProfiler(config, cache=None).build_package_from_sessions(
        "chase_whisply", seeds=[1], duration_s=5.0
    )
    runtime = SnipRuntime(
        snapdragon_821(),
        create_game("chase_whisply", seed=GAME_CONTENT_SEED),
        package.table,
        config,
    )
    events = list(generate_events("chase_whisply", seed=9, duration_s=5.0))
    keys = runtime.session_keys(events)
    assert len(keys) == len(events)
    produced = [key for key in keys if key is not None]
    assert produced, "no event-only keys produced for the session"
    for event, key in zip(events, keys):
        if key is not None:
            assert key == runtime.live_key_reference(event)


def test_session_keys_all_none_for_state_keyed_games(probe_setup):
    # candy_crush's selection reads state fields, so no key is valid
    # for the whole session; deliver must fall back to live reads.
    runtime, _, events = probe_setup
    assert runtime.session_keys(events) == [None] * len(events)


def test_probe_batch_empty_session(probe_setup):
    runtime, _, _ = probe_setup
    keys, entries, hit_mask = runtime.probe_batch([])
    assert keys == [] and entries == []
    assert hit_mask.shape == (0,)
