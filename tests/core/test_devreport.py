"""Tests for the developer-intervention report."""

from repro.android.events import EventType
from repro.core.devreport import build_developer_report


class TestDeveloperReport:
    def test_every_profiled_handler_reported(self, ab_package):
        report = build_developer_report(
            "ab_evolution", ab_package.analysis, ab_package.selection
        )
        assert set(report.verdicts) == set(ab_package.analysis.profiles)

    def test_kept_matches_selection(self, ab_package):
        report = build_developer_report(
            "ab_evolution", ab_package.analysis, ab_package.selection
        )
        for event_type in report.verdicts:
            kept = {v.name for v in report.kept_fields(event_type)}
            selected = {
                info.name
                for info in ab_package.selection.fields_for(event_type)
            }
            assert kept == selected

    def test_kept_plus_dropped_is_universe(self, ab_package):
        report = build_developer_report(
            "ab_evolution", ab_package.analysis, ab_package.selection
        )
        for event_type, profile in ab_package.analysis.profiles.items():
            names = {v.name for v in report.verdicts[event_type]}
            assert names == {info.name for info in profile.universe}

    def test_temp_output_candidates_found(self, ab_package):
        report = build_developer_report(
            "ab_evolution", ab_package.analysis, ab_package.selection
        )
        tick_temps = report.temp_output_fields[EventType.FRAME_TICK]
        assert "temp:frame" in tick_temps

    def test_renders(self, ab_package):
        report = build_developer_report(
            "ab_evolution", ab_package.analysis, ab_package.selection
        )
        text = report.to_text()
        assert "Developer report" in text
        assert "KEEP" in text and "drop" in text
        assert "out.temp candidates" in text
