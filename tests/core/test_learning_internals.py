"""Unit tests for the continuous-learning machinery's internals."""

import pytest

from repro.core.learning import ContinuousLearner
from repro.users.tracegen import generate_trace


class TestDataStarvation:
    def test_available_events_ramp(self):
        learner = ContinuousLearner("colorphun", initial_events=40, ramp=2.0)
        assert learner._available_events(0) == 40
        assert learner._available_events(1) == 80
        assert learner._available_events(3) == 320

    def test_truncation_caps_each_session(self):
        learner = ContinuousLearner("colorphun")
        trace = generate_trace("colorphun", seed=1, duration_s=10.0)
        truncated = learner._truncate(trace, 25)
        assert len(truncated) == 25
        assert truncated.game_name == trace.game_name
        assert truncated.events == trace.events[:25]

    def test_truncation_beyond_length_is_identity(self):
        learner = ContinuousLearner("colorphun")
        trace = generate_trace("colorphun", seed=1, duration_s=5.0)
        assert len(learner._truncate(trace, 10**6)) == len(trace)


class TestEpochBookkeeping:
    def test_traces_accumulate_across_epochs(self):
        learner = ContinuousLearner(
            "colorphun", session_duration_s=8.0, initial_events=30, ramp=3.0
        )
        learner.run_epoch(0)
        learner.run_epoch(1)
        assert len(learner._traces) == 2
        assert len(learner.history) == 2
        assert learner.history[0].epoch == 0

    def test_epochs_are_deterministic(self):
        def run():
            learner = ContinuousLearner(
                "colorphun", session_duration_s=8.0, initial_events=30,
                ramp=3.0, seed=4,
            )
            return learner.run_epoch(0)

        first, second = run(), run()
        assert first.error_fraction == pytest.approx(second.error_fraction)
        assert first.table_entries == second.table_entries

    def test_ungated_epochs_fire_harder(self):
        kwargs = dict(
            session_duration_s=10.0, initial_events=40, ramp=3.0, seed=2
        )
        gated = ContinuousLearner("colorphun", **kwargs).run_epoch(0)
        ungated = ContinuousLearner(
            "colorphun", ungated_epochs=1, **kwargs
        ).run_epoch(0)
        # Without the confidence gate the starved table substitutes far
        # more aggressively (and pays for it in errors).
        assert ungated.hit_fraction >= gated.hit_fraction
        assert ungated.error_fraction >= gated.error_fraction


class TestEvaluation:
    def test_evaluate_counts_every_event(self, ab_package):
        learner = ContinuousLearner("ab_evolution")
        trace = generate_trace("ab_evolution", seed=42, duration_s=8.0)
        hit_fraction, error_fraction = learner.evaluate(ab_package.table, trace)
        assert 0.0 <= hit_fraction <= 1.0
        assert 0.0 <= error_fraction <= 1.0

    def test_empty_table_never_errs(self, ab_package):
        from repro.core.table import SnipTable

        learner = ContinuousLearner("ab_evolution")
        trace = generate_trace("ab_evolution", seed=42, duration_s=8.0)
        hit_fraction, error_fraction = learner.evaluate(
            SnipTable(ab_package.selection), trace
        )
        assert hit_fraction == 0.0
        assert error_fraction == 0.0
