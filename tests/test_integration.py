"""End-to-end integration tests across the whole SNIP pipeline."""

import pytest

from repro import (
    CloudProfiler,
    GAME_CONTENT_SEED,
    GAME_NAMES,
    SnipConfig,
    SnipRuntime,
    create_game,
    generate_events,
    generate_trace,
    run_baseline_session,
    snapdragon_821,
)
from repro.android.emulator import Emulator
from repro.android.events import EventType


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestEveryGameEndToEnd:
    """The full pipeline must work on every catalogue game."""

    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_baseline_session_runs(self, game_name):
        result = run_baseline_session(game_name, seed=3, duration_s=10.0)
        assert result.report.total_joules > 0
        assert len(result.traces) > 100

    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_replay_is_deterministic(self, game_name):
        trace = generate_trace(game_name, seed=3, duration_s=8.0)
        game = create_game(game_name, seed=GAME_CONTENT_SEED)
        # verify=True replays twice and raises on divergence.
        records = Emulator(verify=True).replay(game, trace)
        assert len(records) == len(trace)

    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_snip_pipeline_saves_energy(self, game_name):
        profiler = CloudProfiler(SnipConfig())
        package = profiler.build_package_from_sessions(
            game_name, seeds=[1, 2], duration_s=25.0
        )
        soc = snapdragon_821()
        game = create_game(game_name, seed=GAME_CONTENT_SEED)
        runtime = SnipRuntime(soc, game, package.table, profiler.config)
        clock = 0.0
        duration = 25.0
        for event in generate_events(game_name, seed=9, duration_s=duration):
            if event.timestamp > clock:
                soc.advance_time(event.timestamp - clock)
                clock = event.timestamp
            runtime.deliver(event)
        soc.advance_time(max(0.0, duration - clock))
        baseline = run_baseline_session(game_name, seed=9, duration_s=duration)
        savings = 1.0 - soc.meter.total_joules / baseline.report.total_joules
        assert savings > 0.10, f"{game_name}: only {savings:.1%} saved"
        assert runtime.stats.hit_rate > 0.25
        # Necessary-input keys stay scalar-sized on every game: no
        # kilobyte state blob may survive into the comparisons.
        for event_type in package.selection.by_event_type:
            assert package.selection.comparison_bytes(event_type) < 4096, (
                game_name, event_type)


class TestSessionDeterminism:
    def test_identical_runs_produce_identical_energy(self):
        first = run_baseline_session("greenwall", seed=5, duration_s=10.0)
        second = run_baseline_session("greenwall", seed=5, duration_s=10.0)
        assert first.report.total_joules == pytest.approx(
            second.report.total_joules, rel=1e-12
        )

    def test_device_and_emulator_agree(self):
        """The cloud replay sees exactly the outputs the device saw."""
        trace = generate_trace("candy_crush", seed=4, duration_s=10.0)
        device = run_baseline_session("candy_crush", seed=4, duration_s=10.0)
        game = create_game("candy_crush", seed=GAME_CONTENT_SEED)
        records = Emulator(verify=False).replay(game, trace)
        assert len(records) == len(device.traces)
        for device_trace, record in zip(device.traces, records):
            assert device_trace.output_signature() == record.trace.output_signature()


class TestCrossGameShape:
    def test_event_type_ownership(self):
        """Each game only ever sees the event types it registered for."""
        for game_name in GAME_NAMES:
            game = create_game(game_name)
            handled = set(game.handled_event_types)
            for event in generate_events(game_name, seed=2, duration_s=5.0):
                assert event.event_type in handled

    def test_games_do_not_share_state(self):
        a = create_game("colorphun")
        b = create_game("colorphun")
        a.state.write("score", 99)
        assert b.state.peek("score") == 0

    def test_frame_tick_subscription_split(self):
        with_ticks = set()
        for game_name in GAME_NAMES:
            game = create_game(game_name)
            if EventType.FRAME_TICK in game.handled_event_types:
                with_ticks.add(game_name)
        assert "chase_whisply" not in with_ticks  # renders on camera frames
        assert len(with_ticks) == 6
