"""Tests for the shared handler building blocks."""

import pytest

from repro.android.events import make_touch
from repro.games.base import Game, HandlerContext, OutputCategory
from repro.games.common import (
    FRAME_TILE_BYTES,
    bucket,
    haptic_buzz,
    physics_step,
    play_sound,
    render_frame,
)
from repro.android.events import EventType


class _Shell(Game):
    name = "shell"
    handled_event_types = (EventType.TOUCH,)

    def build_state(self) -> None:
        self.state.declare("x", 0, 4)

    def on_event(self, ctx: HandlerContext) -> None:  # pragma: no cover
        pass


@pytest.fixture()
def ctx():
    game = _Shell()
    return HandlerContext(make_touch(1, 2), game.state, game.screen,
                          game.extern_source)


class TestRenderFrame:
    def test_produces_gpu_display_and_tile(self, ctx):
        render_frame(ctx, content=123, gpu_units=2.0)
        ips = {call.ip_name for call in ctx.trace.ip_calls}
        assert ips == {"gpu", "display"}
        temp = ctx.trace.writes_in(OutputCategory.TEMP)
        assert temp[0].value == 123
        assert temp[0].nbytes == FRAME_TILE_BYTES

    def test_same_content_is_unchanged(self, ctx):
        render_frame(ctx, content=5, gpu_units=1.0)
        render_frame(ctx, content=5, gpu_units=1.0)
        first, second = ctx.trace.writes_in(OutputCategory.TEMP)
        assert first.changed and not second.changed

    def test_compose_is_not_register_reusable(self, ctx):
        render_frame(ctx, content=5, gpu_units=1.0)
        compose = next(c for c in ctx.trace.cpu_funcs if c.name == "compose_frame")
        assert not compose.reusable

    def test_ip_calls_keyed_on_content(self, ctx):
        render_frame(ctx, content=7, gpu_units=1.0)
        keys = {call.key for call in ctx.trace.ip_calls}
        assert ("frame", 7) in keys
        assert ("scanout", 7) in keys


class TestSoundAndHaptics:
    def test_play_sound_uses_codec(self, ctx):
        play_sound(ctx, sound_id=3)
        assert ctx.trace.ip_calls[0].ip_name == "audio_codec"
        assert ctx.trace.writes_in(OutputCategory.TEMP)[0].value == 3

    def test_haptic_is_cpu_only(self, ctx):
        haptic_buzz(ctx, pattern=2)
        assert not ctx.trace.ip_calls
        assert ctx.trace.cpu_little_cycles > 0


class TestPhysicsStep:
    def test_cpu_only_by_default(self, ctx):
        physics_step(ctx, key=(1, 2), cpu_cycles=1000)
        assert not ctx.trace.ip_calls
        assert ctx.trace.func_cycles == 1000

    def test_dsp_offload(self, ctx):
        physics_step(ctx, key=(1, 2), cpu_cycles=1000, dsp_units=2.0)
        assert ctx.trace.ip_calls[0].ip_name == "dsp"


class TestBucket:
    def test_quantises(self):
        assert bucket(37.0, 15.0) == 2
        assert bucket(0.0, 15.0) == 0
        assert bucket(14.9, 15.0) == 0
