"""Behavioural tests for each of the seven game workloads."""

import pytest

from repro.android.events import (
    make_camera_frame,
    make_frame_tick,
    make_gyro,
    make_multi_touch,
    make_swipe,
    make_touch,
)
from repro.games import ab_evolution, candy_crush, chase_whisply
from repro.games import greenwall, memory_game, race_kings
from repro.games.registry import GAME_NAMES, GAMES, create_game, game_info
from repro.errors import UnknownGameError


class TestRegistry:
    def test_seven_games(self):
        assert len(GAME_NAMES) == 7

    def test_complexity_order(self):
        ranks = [GAMES[name].complexity_rank for name in GAME_NAMES]
        assert ranks == sorted(ranks)
        assert GAME_NAMES[0] == "colorphun"
        assert GAME_NAMES[-1] == "race_kings"

    def test_create_game_instances_match_names(self):
        for name in GAME_NAMES:
            assert create_game(name).name == name

    def test_unknown_game_rejected(self):
        with pytest.raises(UnknownGameError):
            game_info("tetris")

    def test_categories_match_paper(self):
        assert game_info("colorphun").category == "simple touch"
        assert game_info("candy_crush").category == "swipe"
        assert game_info("race_kings").category == "multi in.event"


class TestColorphun:
    def test_correct_tap_scores(self):
        game = create_game("colorphun")
        top = game.state.peek("top_color")
        bottom = game.state.peek("bottom_color")
        y = 400 if top > bottom else 2000
        trace = game.process(make_touch(700, y))
        assert game.state.peek("score") == 1
        assert not trace.useless

    def test_wrong_tap_costs_life(self):
        game = create_game("colorphun")
        top = game.state.peek("top_color")
        y = 2000 if top > game.state.peek("bottom_color") else 400
        game.process(make_touch(700, y))
        assert game.state.peek("lives") == 2

    def test_game_over_resets(self):
        game = create_game("colorphun")
        top = game.state.peek("top_color")
        wrong_y = 2000 if top > game.state.peek("bottom_color") else 400
        for _ in range(3):
            game.state.write("cooldown", 0)
            game.process(make_touch(700, wrong_y))
        assert game.state.peek("lives") == 3
        assert game.state.peek("score") == 0

    def test_margin_tap_useless(self):
        game = create_game("colorphun")
        trace = game.process(make_touch(10, 400))
        assert trace.useless

    def test_touch_up_useless(self):
        game = create_game("colorphun")
        trace = game.process(make_touch(700, 400, action=1))
        assert trace.useless

    def test_cooldown_blocks_taps(self):
        game = create_game("colorphun")
        game.state.write("cooldown", 3)
        trace = game.process(make_touch(700, 400))
        assert trace.useless

    def test_static_ticks_become_useless(self):
        game = create_game("colorphun")
        game.process(make_frame_tick())
        second = game.process(make_frame_tick())
        assert second.useless


class TestMemoryGame:
    def test_first_flip_reveals(self):
        game = create_game("memory_game")
        trace = game.process(make_touch(120, 180))
        assert game.state.peek("first_pick") == 0
        assert not trace.useless

    def test_match_marks_cards(self):
        game = create_game("memory_game")
        kinds = [memory_game.card_kind(game.state.peek(f"card_{i}")) for i in range(36)]
        first = 0
        partner = next(i for i in range(1, 36) if kinds[i] == kinds[first])
        cell_w, cell_h = memory_game.CELL_W, memory_game.CELL_H
        game.process(make_touch(first % 6 * cell_w + 50, first // 6 * cell_h + 50))
        game.process(make_touch(partner % 6 * cell_w + 50, partner // 6 * cell_h + 50))
        for cell in (first, partner):
            face = memory_game.card_face(game.state.peek(f"card_{cell}"))
            assert face == memory_game.FACE_MATCHED
        assert game.state.peek("score") == 10

    def test_mismatch_schedules_hide(self):
        game = create_game("memory_game")
        kinds = [memory_game.card_kind(game.state.peek(f"card_{i}")) for i in range(36)]
        first = 0
        other = next(i for i in range(1, 36) if kinds[i] != kinds[first])
        cell_w, cell_h = memory_game.CELL_W, memory_game.CELL_H
        game.process(make_touch(50, 50))
        game.process(make_touch(other % 6 * cell_w + 50, other // 6 * cell_h + 50))
        assert game.state.peek("hide_timer") == memory_game.HIDE_TICKS

    def test_hide_timer_flips_back(self):
        game = create_game("memory_game")
        game.state.write("hide_timer", 1)
        game.state.write("hide_a", 0)
        card = game.state.peek("card_0")
        game.state.write("card_0", memory_game.card_value(
            memory_game.card_kind(card), memory_game.FACE_UP))
        game.process(make_frame_tick())
        assert memory_game.card_face(game.state.peek("card_0")) == memory_game.FACE_DOWN

    def test_tap_on_matched_card_useless(self):
        game = create_game("memory_game")
        card = game.state.peek("card_0")
        game.state.write("card_0", memory_game.card_value(
            memory_game.card_kind(card), memory_game.FACE_MATCHED))
        trace = game.process(make_touch(50, 50))
        assert trace.useless

    def test_deals_differ_per_level(self):
        assert memory_game.deal_kinds(1) != memory_game.deal_kinds(2)

    def test_deal_has_18_pairs(self):
        kinds = memory_game.deal_kinds(1)
        assert sorted(kinds) == sorted(list(range(18)) * 2)


class TestCandyCrush:
    def test_deal_board_has_no_matches(self):
        board = candy_crush.deal_board(0)
        assert candy_crush.find_matches(board) == frozenset()

    def test_find_matches_detects_rows(self):
        board = list(candy_crush.deal_board(0))
        board[0] = board[1] = board[2] = 0
        hits = candy_crush.find_matches(tuple(board))
        assert {0, 1, 2} <= hits

    def test_collapse_refills_fully(self):
        board = candy_crush.deal_board(0)
        removed = frozenset({0, 1, 2})
        refilled = candy_crush.collapse(board, removed, fill_seed=9)
        assert len(refilled) == 64
        assert all(0 <= candy < candy_crush.COLORS for candy in refilled)

    def test_slow_swipe_ignored(self):
        game = create_game("candy_crush")
        trace = game.process(make_swipe(100, 100, 300, 150, 400.0, 2, 100))
        assert trace.useless

    def test_invalid_swap_wobbles_without_board_change(self):
        game = create_game("candy_crush")
        board = game.state.peek("board")
        # Find an invalid horizontal swap.
        for cell in range(64):
            row, col = divmod(cell, 8)
            if col >= 7:
                continue
            swapped = list(board)
            swapped[cell], swapped[cell + 1] = swapped[cell + 1], swapped[cell]
            if not candy_crush.find_matches(tuple(swapped)):
                x = col * candy_crush.CELL_PX + 20
                y = row * candy_crush.CELL_PX + 20
                game.process(make_swipe(x, y, x + 100, y, 1600.0, 2, 100))
                assert game.state.peek("board") == board
                return
        pytest.skip("board had no invalid swap")

    def test_cascade_lock_blocks_swipes(self):
        game = create_game("candy_crush")
        game.state.write("cascade", 3)
        trace = game.process(make_swipe(100, 100, 300, 150, 1600.0, 2, 100))
        assert trace.useless

    def test_shimmer_cycles_with_slot(self):
        game = create_game("candy_crush")
        first = game.process(make_frame_tick(slot=0))
        game.process(make_frame_tick(slot=1))
        repeat = game.process(make_frame_tick(slot=0))
        assert repeat.output_signature() == first.output_signature()


class TestGreenwall:
    def test_fruit_positions_deterministic(self):
        assert greenwall.fruit_position(3, 1, 40) == greenwall.fruit_position(3, 1, 40)

    def test_tick_advances_phase(self):
        game = create_game("greenwall")
        game.process(make_frame_tick())
        assert game.state.peek("phase") == 1

    def test_wave_rolls_over(self):
        game = create_game("greenwall")
        game.state.write("phase", greenwall.WAVE_TICKS)
        game.process(make_frame_tick())
        assert game.state.peek("phase") == 0
        assert game.state.peek("wave_index") == 1
        assert game.state.peek("alive") == (1 << greenwall.FRUITS_PER_WAVE) - 1

    def test_slice_through_fruit_scores(self):
        game = create_game("greenwall")
        game.state.write("phase", 40)
        fx, fy = greenwall.fruit_position(game.state.peek("pattern"), 0, 40)
        fy = max(0, min(2559, int(fy)))
        fx = max(0, min(1439, int(fx)))
        trace = game.process(
            make_swipe(max(0, fx - 200), fy, min(1439, fx + 200), fy, 2000.0, 2, 80)
        )
        assert game.state.peek("score") > 0
        assert not trace.useless

    def test_whiff_is_useless(self):
        game = create_game("greenwall")
        # Slice across the very top where no fruit ever flies early on.
        trace = game.process(make_swipe(100, 0, 1300, 0, 2000.0, 2, 80))
        assert trace.useless


class TestAbEvolution:
    def test_drag_stretches_catapult(self):
        game = create_game("ab_evolution")
        game.process(make_multi_touch(500, 1900, 600, 2000, 0, 10.0))
        assert game.state.peek("stretch") == 10

    def test_drag_at_max_stretch_useless(self):
        game = create_game("ab_evolution")
        game.state.write("stretch", ab_evolution.MAX_STRETCH)
        first = game.process(make_multi_touch(500, 1900, 600, 2000, 0, 10.0))
        repeat = game.process(make_multi_touch(500, 1900, 600, 2000, 0, 12.0))
        assert repeat.useless

    def test_drag_during_flight_useless(self):
        game = create_game("ab_evolution")
        game.state.write("flight", 10)
        trace = game.process(make_multi_touch(500, 1900, 600, 2000, 0, 10.0))
        assert trace.useless

    def test_fling_launches_bird(self):
        game = create_game("ab_evolution")
        game.state.write("stretch", 80)
        game.process(make_swipe(500, 1900, 500, 1200, 2000.0, 0, 100))
        assert game.state.peek("flight") == ab_evolution.FLIGHT_TICKS
        assert game.state.peek("stretch") == 0
        assert game.state.peek("birds_left") == ab_evolution.BIRDS_PER_LEVEL - 1

    def test_weak_fling_does_not_launch(self):
        game = create_game("ab_evolution")
        game.state.write("stretch", 5)
        game.process(make_swipe(500, 1900, 500, 1200, 2000.0, 0, 100))
        assert game.state.peek("flight") == 0

    def test_flight_resolves_to_impact(self):
        game = create_game("ab_evolution")
        game.state.write("stretch", 80)
        game.process(make_swipe(500, 1900, 500, 1200, 2000.0, 0, 100))
        targets_before = game.state.peek("targets")
        for _ in range(ab_evolution.FLIGHT_TICKS):
            game.process(make_frame_tick())
        assert game.state.peek("flight") == 0
        assert game.state.peek("targets") != targets_before

    def test_layout_grows_with_level(self):
        assert ab_evolution.layout_bytes(1) < ab_evolution.layout_bytes(5)
        assert ab_evolution.layout_bytes(200) == 119_000

    def test_menu_tap_toggles(self):
        game = create_game("ab_evolution")
        game.process(make_touch(50, 50))
        assert game.state.peek("menu_open") == 1


class TestChaseWhisply:
    def _frame(self, complexity=100, motion=0.0, rois=None, **kwargs):
        return make_camera_frame(
            frame_id=1,
            scene_complexity=complexity,
            feature_count=complexity // 2,
            roi_values=rois or [5] * 25,
            motion_score=motion,
            **kwargs,
        )

    def test_camera_updates_surface_map(self):
        game = create_game("chase_whisply")
        game.process(self._frame(complexity=200))
        expected = chase_whisply.surface_map_bytes(200 // 8)
        assert game.state.size_of("surface_map") == expected

    def test_map_digest_mirrors_map(self):
        game = create_game("chase_whisply")
        game.process(self._frame())
        assert game.state.peek("map_digest") == game.state.peek("surface_map")

    def test_stable_scene_makes_useless_frames(self):
        game = create_game("chase_whisply")
        game.process(self._frame())
        repeat = game.process(self._frame())
        assert repeat.useless

    def test_gyro_wobble_within_bucket_useless(self):
        game = create_game("chase_whisply")
        game.process(make_gyro(30.0, 180.0, 0.0, 1.0))
        repeat = game.process(make_gyro(31.0, 181.0, 0.0, 1.0))
        assert repeat.useless

    def test_shot_at_visible_ghost_scores(self):
        game = create_game("chase_whisply")
        game.state.write("ghost_visible", 1)
        game.process(make_touch(700, 1300))
        assert game.state.peek("score") == 100
        assert game.state.peek("ammo") == chase_whisply.MAX_AMMO

    def test_missed_shot_spends_ammo(self):
        game = create_game("chase_whisply")
        game.process(make_touch(700, 1300))
        assert game.state.peek("ammo") == chase_whisply.MAX_AMMO - 1

    def test_dry_fire_useless_on_repeat(self):
        game = create_game("chase_whisply")
        game.state.write("ammo", 0)
        game.process(make_touch(700, 1300))
        repeat = game.process(make_touch(700, 1300))
        assert repeat.useless

    def test_surface_map_size_spread_matches_paper(self):
        # Fig. 7c: ~600 B empty room up to ~119 kB cluttered.
        assert chase_whisply.surface_map_bytes(0) == 600
        assert chase_whisply.surface_map_bytes(31) > 100_000


class TestRaceKings:
    def test_engine_advances_track(self):
        game = create_game("race_kings")
        game.advance_engine(make_frame_tick())
        assert game.state.peek("track_pos") == 1
        assert game.state.peek("scroll") == 1

    def test_lap_awards_bonus(self):
        game = create_game("race_kings")
        game.state.write("track_pos", race_kings.TRACK_SLOTS - 1)
        game.advance_engine(make_frame_tick())
        assert game.state.peek("lap") == 1
        assert game.state.peek("score") > 0
        assert game.state.peek("nitro_ready") == 1

    def test_engine_ignores_gestures(self):
        game = create_game("race_kings")
        game.advance_engine(make_touch(1, 2))
        assert game.state.peek("track_pos") == 0

    def test_tick_converges_to_cruise_speed(self):
        game = create_game("race_kings")
        for _ in range(10):
            game.advance_engine(make_frame_tick())
            game.process(make_frame_tick())
        assert game.state.peek("speed") == race_kings.SPEED_BUCKETS - 2

    def test_nitro_tap_fires_once(self):
        game = create_game("race_kings")
        game.process(make_touch(1300, 2400))
        assert game.state.peek("nitro_ticks") == race_kings.NITRO_TICKS
        repeat = game.process(make_touch(1300, 2400))
        assert repeat.useless  # recharging

    def test_nitro_timer_is_engine_driven(self):
        game = create_game("race_kings")
        game.process(make_touch(1300, 2400))
        game.advance_engine(make_frame_tick())
        assert game.state.peek("nitro_ticks") == race_kings.NITRO_TICKS - 1

    def test_tilt_deadzone(self):
        game = create_game("race_kings")
        game.process(make_gyro(0.0, 90.0, 4.0, 1.0))
        assert game.state.peek("lane") == 1
        game.process(make_gyro(0.0, 90.0, 20.0, 1.0))
        assert game.state.peek("lane") == 2

    def test_segment_of(self):
        assert race_kings.segment_of(0) == 0
        assert race_kings.segment_of(race_kings.TRACK_SLOTS - 1) == 47
