"""The determinism contract every game must honour (docs/INTERNALS.md).

Handlers must be pure functions of their context reads; engine hooks
must be pure functions of event order; and identical input streams must
produce bit-identical state trajectories. These tests hammer that
contract harder than the emulator's two-run verify.
"""

import pytest

from repro.games.registry import GAME_CONTENT_SEED, GAME_NAMES, create_game
from repro.users.tracegen import generate_events


def drive(game, events):
    signatures = []
    for event in events:
        game.advance_engine(event)
        signatures.append(game.process(event).output_signature())
    return signatures


class TestDeterminismContract:
    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_three_replays_identical(self, game_name):
        events = generate_events(game_name, seed=6, duration_s=6.0)
        runs = [
            drive(create_game(game_name, GAME_CONTENT_SEED), events)
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_state_trajectory_identical(self, game_name):
        events = generate_events(game_name, seed=6, duration_s=6.0)
        first = create_game(game_name, GAME_CONTENT_SEED)
        second = create_game(game_name, GAME_CONTENT_SEED)
        for event in events:
            first.advance_engine(event)
            first.process(event)
            second.advance_engine(event)
            second.process(event)
            assert first.state.snapshot() == second.state.snapshot()

    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_content_is_shared_across_users(self, game_name):
        """Fixed app content: two users see identical initial state."""
        a = create_game(game_name, GAME_CONTENT_SEED)
        b = create_game(game_name, GAME_CONTENT_SEED)
        assert a.state.snapshot() == b.state.snapshot()

    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_handlers_never_mutate_events(self, game_name):
        events = generate_events(game_name, seed=6, duration_s=3.0)
        game = create_game(game_name, GAME_CONTENT_SEED)
        for event in events:
            before = dict(event.values)
            game.advance_engine(event)
            game.process(event)
            assert event.values == before
