"""Tests for the game framework: context, traces, and contracts."""

import pytest

from repro.android.events import EventType, make_touch
from repro.errors import GameError
from repro.games.base import (
    ExternSource,
    Game,
    HandlerContext,
    InputCategory,
    OutputCategory,
    mix_values,
)


class ToyGame(Game):
    """Minimal game exercising every context facility."""

    name = "toy"
    handled_event_types = (EventType.TOUCH,)
    upkeep_cycles = {EventType.TOUCH: 1000}

    def build_state(self) -> None:
        self.state.declare("counter", 0, 4)
        self.state.declare("blob", 0, 2048)

    def on_event(self, ctx: HandlerContext) -> None:
        x = ctx.ev("x")
        counter = ctx.hist("counter")
        ctx.cpu(10_000)
        ctx.cpu(5_000, big=False)
        ctx.cpu_func("kernel", (x,), 20_000)
        ctx.cpu_func("walker", (counter,), 7_000, reusable=False)
        ctx.ip("gpu", 1.0, bytes_in=100, key=("draw", x))
        ctx.mem(256)
        if x > 0:
            ctx.out_hist("counter", counter + 1)
        else:
            ctx.out_hist("counter", counter)  # unchanged write
        ctx.out_temp("tile", x, 16)
        if x > 900:
            asset = ctx.extern("asset")
            ctx.out_extern("upload", asset, 64)


@pytest.fixture()
def game():
    return ToyGame(seed=3)


class TestProcessing:
    def test_unhandled_event_type_rejected(self, game):
        from repro.android.events import make_gyro

        with pytest.raises(GameError):
            game.process(make_gyro(0, 0, 0, 0))

    def test_trace_records_reads_by_category(self, game):
        trace = game.process(make_touch(100, 0))
        event_reads = trace.reads_in(InputCategory.EVENT)
        history_reads = trace.reads_in(InputCategory.HISTORY)
        assert [read.name for read in event_reads] == ["event:x"]
        assert [read.name for read in history_reads] == ["hist:counter"]

    def test_trace_records_work(self, game):
        trace = game.process(make_touch(100, 0))
        assert trace.cpu_big_cycles == 10_000
        assert trace.cpu_little_cycles == 5_000
        assert trace.func_cycles == 27_000
        assert trace.total_cycles == 42_000
        assert trace.memory_bytes == 256
        assert len(trace.ip_calls) == 1

    def test_reusability_flag_recorded(self, game):
        trace = game.process(make_touch(100, 0))
        by_name = {call.name: call for call in trace.cpu_funcs}
        assert by_name["kernel"].reusable
        assert not by_name["walker"].reusable

    def test_useful_event_changes_state(self, game):
        trace = game.process(make_touch(100, 0))
        assert not trace.useless
        assert game.state.peek("counter") == 1

    def test_useless_event_detected(self, game):
        game.process(make_touch(100, 0))  # tile now 96 (quantised)
        trace = game.process(make_touch(0, 0))
        # counter unchanged and tile changed 96 -> 0, so not useless...
        assert not trace.useless
        repeat = game.process(make_touch(0, 0))  # everything identical now
        assert repeat.useless

    def test_extern_read_charges_memory(self, game):
        trace = game.process(make_touch(1000, 0))
        extern_reads = trace.reads_in(InputCategory.EXTERN)
        assert len(extern_reads) == 1
        assert trace.memory_bytes > 1_000_000  # the 1 MB asset transit

    def test_out_extern_always_changed(self, game):
        trace = game.process(make_touch(1000, 0))
        extern_writes = trace.writes_in(OutputCategory.EXTERN)
        assert extern_writes and all(write.changed for write in extern_writes)

    def test_output_signature_stable(self, game):
        trace_a = ToyGame(seed=3).process(make_touch(100, 0))
        trace_b = ToyGame(seed=3).process(make_touch(100, 0))
        assert trace_a.output_signature() == trace_b.output_signature()
        assert trace_a.output_class() == trace_b.output_class()

    def test_input_output_byte_accounting(self, game):
        trace = game.process(make_touch(100, 0))
        assert trace.input_bytes(InputCategory.EVENT) == 2
        assert trace.input_bytes(InputCategory.HISTORY) == 4
        assert trace.output_bytes(OutputCategory.TEMP) == 16

    def test_negative_work_rejected(self, game):
        ctx = HandlerContext(
            make_touch(1, 2), game.state, game.screen, game.extern_source
        )
        with pytest.raises(GameError):
            ctx.cpu(-1)
        with pytest.raises(GameError):
            ctx.cpu_func("k", (), -1)
        with pytest.raises(GameError):
            ctx.ip("gpu", -1.0)
        with pytest.raises(GameError):
            ctx.mem(-1)

    def test_events_processed_counter(self, game):
        game.process(make_touch(1, 2))
        game.process(make_touch(3, 4))
        assert game.events_processed == 2


class TestApplyOutputs:
    def test_apply_replays_writes(self, game):
        trace = game.process(make_touch(100, 0))
        fresh = ToyGame(seed=3)
        fresh.apply_outputs(trace.writes)
        assert fresh.state.peek("counter") == 1
        assert fresh.screen["tile"] == 96  # quantised x

    def test_apply_ignores_extern(self, game):
        trace = game.process(make_touch(1000, 0))
        fresh = ToyGame(seed=3)
        fresh.apply_outputs(trace.writes)  # must not raise

    def test_fresh_restores_initial_conditions(self, game):
        game.process(make_touch(100, 0))
        clone = game.fresh()
        assert clone.state.peek("counter") == 0
        assert clone.seed == game.seed


class TestExternSource:
    def test_fetch_deterministic_per_seed(self):
        assert ExternSource(1).fetch("k") == ExternSource(1).fetch("k")
        assert ExternSource(1).fetch("k") != ExternSource(2).fetch("k")

    def test_peek_does_not_count(self):
        source = ExternSource(1)
        source.peek("k")
        assert source.fetch_count == 0
        source.fetch("k")
        assert source.fetch_count == 1

    def test_payload_is_a_megabyte(self):
        _, nbytes = ExternSource(1).fetch("k")
        assert nbytes == 1_048_576


class TestMixValues:
    def test_deterministic(self):
        assert mix_values("a", 1, (2, 3)) == mix_values("a", 1, (2, 3))

    def test_sensitive_to_inputs(self):
        assert mix_values("a", 1) != mix_values("a", 2)
        assert mix_values("a", 1) != mix_values("b", 1)

    def test_upkeep_defaults_to_zero(self):
        assert Game.upkeep_cycles_for(EventType.GPS) == 0
        assert Game.upkeep_ip_units_for(EventType.GPS) == {}
