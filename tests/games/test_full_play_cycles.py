"""Full play-cycle tests: drive each game through a complete loop.

These go beyond single-handler behaviour: they script entire gameplay
arcs (stretch -> fling -> flight -> impact -> level-up, match a whole
board, complete a lap, empty a clip) and check the cross-event
invariants the memoization machinery silently depends on.
"""

from repro.android.events import (
    make_camera_frame,
    make_frame_tick,
    make_gyro,
    make_multi_touch,
    make_swipe,
    make_touch,
)
from repro.games import ab_evolution, candy_crush, chase_whisply
from repro.games import memory_game, race_kings
from repro.games.registry import create_game


def tick(game, n=1, slot0=0):
    """Deliver n engine-advanced frame ticks."""
    last = None
    for index in range(n):
        event = make_frame_tick(slot=(slot0 + index) % 4)
        game.advance_engine(event)
        last = game.process(event)
    return last


class TestAbEvolutionFullShot:
    def _launch(self, game, stretch=80):
        game.state.write("stretch", stretch)
        game.process(make_swipe(500, 1900, 500, 1200, 2000.0, 0, 100))

    def test_full_shot_cycle(self):
        game = create_game("ab_evolution")
        self._launch(game)
        # Bird flies for exactly FLIGHT_TICKS frames.
        for remaining in range(ab_evolution.FLIGHT_TICKS - 1, -1, -1):
            tick(game)
            assert game.state.peek("flight") == remaining
        # Impact resolved: some targets destroyed, score credited.
        assert game.state.peek("targets") != (1 << ab_evolution.TARGETS) - 1
        assert game.state.peek("score") > 0

    def test_level_up_after_all_birds(self):
        game = create_game("ab_evolution")
        for _ in range(ab_evolution.BIRDS_PER_LEVEL):
            self._launch(game)
            for _ in range(ab_evolution.FLIGHT_TICKS):
                tick(game)
            if game.state.peek("level") > 1:
                break
        assert game.state.peek("level") >= 2
        # Level-up refreshed the catapult and the targets.
        assert game.state.peek("birds_left") == ab_evolution.BIRDS_PER_LEVEL
        assert game.state.peek("targets") == (1 << ab_evolution.TARGETS) - 1
        # The new layout is bigger (richer scene graph).
        assert game.state.size_of("level_layout") == ab_evolution.layout_bytes(
            game.state.peek("level")
        )
        # A network asset was fetched for the bundle.
        assert game.extern_source.fetch_count >= 1

    def test_drags_resume_after_flight(self):
        game = create_game("ab_evolution")
        self._launch(game)
        for _ in range(ab_evolution.FLIGHT_TICKS):
            tick(game)
        trace = game.process(make_multi_touch(500, 1900, 600, 2000, 0, 10.0))
        assert game.state.peek("stretch") > 0
        assert not trace.useless


class TestCandyCrushLevelCycle:
    def _valid_swipe(self, game):
        """Find and play one valid move; returns True on success."""
        board = game.state.peek("board")
        for cell in range(64):
            row, col = divmod(cell, 8)
            if col >= 7:
                continue
            swapped = list(board)
            swapped[cell], swapped[cell + 1] = swapped[cell + 1], swapped[cell]
            if candy_crush.find_matches(tuple(swapped)):
                # Aim at the cell centre so the 64-px capture grid cannot
                # shift the tap into the neighbouring cell.
                x = col * candy_crush.CELL_PX + 90
                y = row * candy_crush.CELL_PX + 90
                game.process(make_swipe(x, y, x + 180, y, 1600.0, 2, 100))
                return True
        return False

    def test_valid_move_starts_cascade_and_scores(self):
        game = create_game("candy_crush")
        assert self._valid_swipe(game)
        assert game.state.peek("score") > 0
        assert game.state.peek("cascade") == candy_crush.CASCADE_TICKS
        assert game.state.peek("moves_left") == candy_crush.MOVES_PER_LEVEL - 1

    def test_cascade_animation_drains(self):
        game = create_game("candy_crush")
        assert self._valid_swipe(game)
        tick(game, n=candy_crush.CASCADE_TICKS)
        assert game.state.peek("cascade") == 0

    def test_level_up_fetches_assets(self):
        game = create_game("candy_crush")
        game.state.write("moves_left", 1)
        played = False
        for _ in range(40):  # boards occasionally lack an easy move
            if self._valid_swipe(game):
                played = True
                break
            tick(game)
        assert played
        assert game.state.peek("level") == 2
        assert game.state.peek("moves_left") == candy_crush.MOVES_PER_LEVEL
        assert game.extern_source.fetch_count == 1


class TestMemoryGameLevelCycle:
    def test_clearing_the_board_deals_next_level(self):
        game = create_game("memory_game")
        kinds = [
            memory_game.card_kind(game.state.peek(f"card_{i}")) for i in range(36)
        ]
        pairs = {}
        for cell, kind in enumerate(kinds):
            pairs.setdefault(kind, []).append(cell)
        cw, ch = memory_game.CELL_W, memory_game.CELL_H
        for kind, (first, second) in pairs.items():
            game.process(make_touch(first % 6 * cw + 40, first // 6 * ch + 40))
            game.process(make_touch(second % 6 * cw + 40, second // 6 * ch + 40))
        assert game.state.peek("level") == 2
        # Fresh deal: everything face-down again.
        faces = {
            memory_game.card_face(game.state.peek(f"card_{i}")) for i in range(36)
        }
        assert faces == {memory_game.FACE_DOWN}
        assert game.state.peek("score") == 18 * 10

    def test_mismatch_lock_expires_via_ticks(self):
        game = create_game("memory_game")
        kinds = [
            memory_game.card_kind(game.state.peek(f"card_{i}")) for i in range(36)
        ]
        other = next(i for i in range(1, 36) if kinds[i] != kinds[0])
        cw, ch = memory_game.CELL_W, memory_game.CELL_H
        game.process(make_touch(40, 40))
        game.process(make_touch(other % 6 * cw + 40, other // 6 * ch + 40))
        tick(game, n=memory_game.HIDE_TICKS)
        assert game.state.peek("hide_timer") == 0
        # Both cards flipped back; board playable again.
        trace = game.process(make_touch(40, 40))
        assert not trace.useless


class TestRaceKingsLapCycle:
    def test_full_lap(self):
        game = create_game("race_kings")
        for _ in range(race_kings.TRACK_SLOTS):
            tick(game)
        assert game.state.peek("lap") == 1
        assert game.state.peek("score") > 0
        assert game.state.peek("track_pos") == 0

    def test_nitro_cycle(self):
        game = create_game("race_kings")
        game.process(make_touch(1300, 2400))  # fire nitro
        assert game.state.peek("nitro_active") == 1
        for _ in range(race_kings.NITRO_TICKS):
            tick(game)
        assert game.state.peek("nitro_active") == 0
        assert game.state.peek("nitro_ticks") == 0
        # Recharges at the lap line.
        game.state.write("track_pos", race_kings.TRACK_SLOTS - 1)
        tick(game)
        assert game.state.peek("nitro_ready") == 1

    def test_speed_boost_under_nitro(self):
        game = create_game("race_kings")
        tick(game, n=10)  # reach cruise speed
        cruise = game.state.peek("speed")
        game.process(make_touch(1300, 2400))
        tick(game, n=5)
        assert game.state.peek("speed") > cruise


class TestChaseWhisplyHuntCycle:
    def test_aim_then_shoot_cycle(self):
        game = create_game("chase_whisply")
        ghost_x = game.state.peek("ghost_x")
        ghost_y = game.state.peek("ghost_y")
        # Tilt the phone until the reticle lands on the ghost.
        game.process(
            make_gyro(ghost_x * chase_whisply.AIM_STEP + 2.0,
                      ghost_y * chase_whisply.AIM_STEP + 2.0, 0.0, 1.0)
        )
        assert game.state.peek("ghost_visible") == 1
        game.process(make_touch(700, 1300))
        assert game.state.peek("score") == 100
        # The ghost respawned somewhere else and hid.
        assert game.state.peek("ghost_visible") == 0

    def test_clip_empties_then_reload_on_capture(self):
        game = create_game("chase_whisply")
        for expected in range(chase_whisply.MAX_AMMO - 1, -1, -1):
            game.process(make_touch(700, 1300))
            assert game.state.peek("ammo") == expected
        # Dry fire forever after.
        trace = game.process(make_touch(700, 1300))
        assert game.state.peek("ammo") == 0

    def test_scene_change_resizes_surface_map(self):
        game = create_game("chase_whisply")
        sizes = set()
        for complexity in (8, 120, 248):
            game.process(
                make_camera_frame(
                    frame_id=1, scene_complexity=complexity,
                    feature_count=complexity // 2, roi_values=[5] * 25,
                    motion_score=5.0,
                )
            )
            sizes.add(game.state.size_of("surface_map"))
        assert len(sizes) == 3  # clutter drives the map size (Fig. 7c)


class TestGreenwallWaveCycle:
    def test_combo_builds_and_resets(self):
        from repro.games.greenwall import WAVE_TICKS, fruit_position

        game = create_game("greenwall")
        # Slice through a fruit to start a combo.
        game.state.write("phase", 40)
        fx, fy = fruit_position(game.state.peek("pattern"), 0, 40)
        fx = max(0, min(1439, int(fx)))
        fy = max(0, min(2559, int(fy)))
        game.process(make_swipe(max(0, fx - 200), fy, min(1439, fx + 200), fy,
                                2000.0, 2, 80))
        assert game.state.peek("combo") > 0
        # Riding out the wave resets the combo with the next wave.
        game.state.write("phase", WAVE_TICKS)
        tick(game)
        assert game.state.peek("combo") == 0
        assert game.state.peek("wave_index") == 1

    def test_wave_patterns_cycle_through_catalogue(self):
        from repro.games.greenwall import PATTERNS, WAVE_TICKS

        game = create_game("greenwall")
        seen = set()
        for _ in range(16):
            seen.add(game.state.peek("pattern"))
            game.state.write("phase", WAVE_TICKS)
            tick(game)
        assert len(seen) > 3  # several of the shipped patterns appear
        assert all(0 <= pattern < PATTERNS for pattern in seen)


class TestColorphunScoreArc:
    def _correct_tap(self, game):
        top = game.state.peek("top_color")
        bottom = game.state.peek("bottom_color")
        y = 400 if top > bottom else 2000
        game.state.write("cooldown", 0)
        return game.process(make_touch(700, y))

    def test_score_run_with_cooldowns(self):
        from repro.games.colorphun import COOLDOWN_TICKS

        game = create_game("colorphun")
        for expected in range(1, 6):
            self._correct_tap(game)
            assert game.state.peek("score") == expected
            assert game.state.peek("cooldown") == COOLDOWN_TICKS
            tick(game, n=COOLDOWN_TICKS)
            assert game.state.peek("cooldown") == 0

    def test_colors_reroll_every_round(self):
        game = create_game("colorphun")
        seen = set()
        for _ in range(8):
            self._correct_tap(game)
            seen.add((game.state.peek("top_color"),
                      game.state.peek("bottom_color")))
        assert len(seen) > 4
