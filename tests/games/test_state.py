"""Tests for the instrumented game-state store."""

import pytest

from repro.errors import StateError
from repro.games.state import StateStore


@pytest.fixture()
def store():
    built = StateStore()
    built.declare("score", 0, 4)
    built.declare("layout", "blob", 1024)
    return built


class TestDeclaration:
    def test_duplicate_rejected(self, store):
        with pytest.raises(StateError):
            store.declare("score", 0, 4)

    def test_nonpositive_size_rejected(self):
        store = StateStore()
        with pytest.raises(StateError):
            store.declare("bad", 0, 0)

    def test_has(self, store):
        assert store.has("score")
        assert not store.has("missing")


class TestAccess:
    def test_read_write_roundtrip(self, store):
        store.write("score", 10)
        assert store.read("score") == 10

    def test_unknown_read_rejected(self, store):
        with pytest.raises(StateError):
            store.read("missing")

    def test_unknown_write_rejected(self, store):
        with pytest.raises(StateError):
            store.write("missing", 1)

    def test_resize_on_write(self, store):
        store.write("layout", "bigger", nbytes=4096)
        assert store.size_of("layout") == 4096

    def test_invalid_resize_rejected(self, store):
        with pytest.raises(StateError):
            store.write("layout", "x", nbytes=0)

    def test_peek_matches_read(self, store):
        store.write("score", 7)
        assert store.peek("score") == 7


class TestObservation:
    def test_observer_sees_reads_and_writes(self, store):
        seen = []
        store.set_observer(lambda kind, name, value, nbytes: seen.append((kind, name)))
        store.read("score")
        store.write("score", 1)
        assert seen == [("read", "score"), ("write", "score")]

    def test_peek_and_snapshot_unobserved(self, store):
        seen = []
        store.set_observer(lambda *args: seen.append(args))
        store.peek("score")
        store.snapshot()
        assert seen == []

    def test_observer_cleared(self, store):
        seen = []
        store.set_observer(lambda *args: seen.append(args))
        store.set_observer(None)
        store.read("score")
        assert seen == []


class TestBulk:
    def test_snapshot_contents(self, store):
        snapshot = store.snapshot()
        assert snapshot["score"] == (0, 4)
        assert snapshot["layout"] == ("blob", 1024)

    def test_total_bytes(self, store):
        assert store.total_bytes() == 1028
        store.write("layout", "x", nbytes=2048)
        assert store.total_bytes() == 2052

    def test_field_names_order(self, store):
        assert store.field_names() == ("score", "layout")

    def test_len_and_iter(self, store):
        assert len(store) == 2
        assert {field.name for field in store} == {"score", "layout"}
