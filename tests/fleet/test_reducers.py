"""Accumulator contract: fold == batch, merge == fold, strict ordering.

The streaming engine's byte-identity guarantee rests on these
equivalences: every accumulator, fed devices one at a time in canonical
order, must reproduce the batch reducers exactly (floats included), and
:class:`FleetFold` must refuse anything that would change the fold
order.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core.config import SnipConfig
from repro.errors import FleetError
from repro.fleet.reducers import (
    CensusAccumulator,
    CohortTotalsAccumulator,
    ContributionsAccumulator,
    EnergyAccumulator,
    FleetFold,
    TotalsAccumulator,
    canonical_device_results,
    reduce_census,
    reduce_cohort_totals,
    reduce_contributions,
    reduce_energy,
    reduce_totals,
)


@pytest.fixture(scope="module")
def devices(small_shards, small_spec):
    return canonical_device_results(small_shards, small_spec)


def test_totals_fold_matches_batch(devices):
    accumulator = TotalsAccumulator()
    for device in devices:
        accumulator.update(device)
    assert accumulator.finalize() == reduce_totals(devices)


def test_reducers_accept_single_pass_generators(devices):
    # Iterable, not List: a generator can only be consumed once, so any
    # reducer that iterates twice would come up empty or crash here.
    assert reduce_totals(iter(devices)) == reduce_totals(devices)
    assert reduce_census(iter(devices)) == reduce_census(devices)
    energy = reduce_energy(iter(devices))
    assert energy is not None
    assert energy.total_joules == reduce_energy(devices).total_joules
    assert reduce_cohort_totals(iter(devices)) == reduce_cohort_totals(devices)


def _assert_totals_close(merged, folded):
    """Merged partials agree with a single fold: ints exactly, floats to
    rounding (splitting changes the float summation tree — which is why
    the engine folds with ``update`` only; see the reducers docstring).
    """
    for field in dataclasses.fields(type(folded)):
        mine = getattr(merged, field.name)
        theirs = getattr(folded, field.name)
        if isinstance(theirs, float):
            assert mine == pytest.approx(theirs), field.name
        else:
            assert mine == theirs, field.name


def test_merge_of_split_halves_matches_single_fold(devices):
    half = len(devices) // 2
    whole, left, right = (
        TotalsAccumulator(), TotalsAccumulator(), TotalsAccumulator()
    )
    for device in devices:
        whole.update(device)
    for device in devices[:half]:
        left.update(device)
    for device in devices[half:]:
        right.update(device)
    left.merge(right)
    _assert_totals_close(left.finalize(), whole.finalize())


def test_census_merge_matches_single_fold(devices):
    half = len(devices) // 2
    whole, left, right = (
        CensusAccumulator(), CensusAccumulator(), CensusAccumulator()
    )
    for device in devices:
        whole.update(device)
    for device in devices[:half]:
        left.update(device)
    for device in devices[half:]:
        right.update(device)
    left.merge(right)
    assert left.finalize() == whole.finalize()


def test_cohort_merge_matches_single_fold(devices):
    half = len(devices) // 2
    whole, left, right = (
        CohortTotalsAccumulator(),
        CohortTotalsAccumulator(),
        CohortTotalsAccumulator(),
    )
    for device in devices:
        whole.update(device)
    for device in devices[:half]:
        left.update(device)
    for device in devices[half:]:
        right.update(device)
    left.merge(right)
    merged, folded = left.finalize(), whole.finalize()
    assert merged.keys() == folded.keys()
    for cohort in folded:
        _assert_totals_close(merged[cohort], folded[cohort])


def test_energy_merge_matches_single_fold(devices):
    half = len(devices) // 2
    whole, left, right = (
        EnergyAccumulator(), EnergyAccumulator(), EnergyAccumulator()
    )
    for device in devices:
        whole.update(device)
    for device in devices[:half]:
        left.update(device)
    for device in devices[half:]:
        right.update(device)
    left.merge(right)
    merged, folded = left.finalize(), whole.finalize()
    assert merged is not None and folded is not None
    assert merged.by_component.keys() == folded.by_component.keys()
    assert merged.total_joules == pytest.approx(folded.total_joules)


def test_empty_energy_accumulator_finalizes_to_none():
    assert EnergyAccumulator().finalize() is None
    empty = EnergyAccumulator()
    empty.merge(EnergyAccumulator())
    assert empty.finalize() is None


def test_contributions_fold_matches_batch(devices, small_package):
    config = SnipConfig()
    accumulator = ContributionsAccumulator(small_package.selection, config)
    for device in devices:
        accumulator.update(device)
    streamed = accumulator.finalize()
    batch = reduce_contributions(
        iter(devices), small_package.selection, config
    )
    assert streamed is not None and batch is not None
    streamed_table, streamed_uplink = streamed
    batch_table, batch_uplink = batch
    assert streamed_uplink == batch_uplink
    assert pickle.dumps(streamed_table) == pickle.dumps(batch_table)


def test_contributions_merge_matches_single_fold(devices, small_package):
    config = SnipConfig()
    half = len(devices) // 2
    whole = ContributionsAccumulator(small_package.selection, config)
    left = ContributionsAccumulator(small_package.selection, config)
    right = ContributionsAccumulator(small_package.selection, config)
    for device in devices:
        whole.update(device)
    for device in devices[:half]:
        left.update(device)
    for device in devices[half:]:
        right.update(device)
    left.merge(right)
    merged, folded = left.finalize(), whole.finalize()
    assert merged is not None and folded is not None
    assert merged[1] == folded[1]
    assert merged[0].entry_count == folded[0].entry_count


def test_contributions_without_federation_finalize_to_none(
    devices, small_package
):
    stripped = [
        dataclasses.replace(device, contribution=None) for device in devices
    ]
    config = SnipConfig()
    accumulator = ContributionsAccumulator(small_package.selection, config)
    for device in stripped:
        accumulator.update(device)
    assert accumulator.finalize() is None
    assert reduce_contributions(stripped, small_package.selection, config) is None


# -- FleetFold ordering and validation ------------------------------------


def test_fleet_fold_matches_batch_reducers(
    small_shards, small_spec, small_package, devices
):
    fold = FleetFold(small_spec, small_package.selection, SnipConfig())
    for shard in small_shards:
        fold.fold(shard)
    assert fold.complete
    reduction = fold.finalize()
    assert reduction.totals == reduce_totals(devices)
    assert reduction.census == reduce_census(devices)
    assert reduction.energy.total_joules == reduce_energy(devices).total_joules
    assert reduction.cohorts is None  # no challenger cohort in small_spec


def test_fleet_fold_rejects_out_of_order_shards(
    small_shards, small_spec, small_package
):
    fold = FleetFold(small_spec, small_package.selection, SnipConfig())
    with pytest.raises(FleetError, match="out of order"):
        fold.fold(small_shards[1])


def test_fleet_fold_rejects_foreign_fingerprint(
    small_shards, small_spec, small_package
):
    fold = FleetFold(small_spec, small_package.selection, SnipConfig())
    alien = dataclasses.replace(small_shards[0], spec_fingerprint="deadbeef")
    with pytest.raises(FleetError, match="different"):
        fold.fold(alien)


def test_fleet_fold_rejects_misdealt_devices(
    small_shards, small_spec, small_package
):
    fold = FleetFold(small_spec, small_package.selection, SnipConfig())
    swapped = dataclasses.replace(
        small_shards[0],
        device_results=list(reversed(small_shards[0].device_results)),
    )
    with pytest.raises(FleetError, match="misdealt"):
        fold.fold(swapped)


def test_fleet_fold_finalize_requires_every_shard(
    small_shards, small_spec, small_package
):
    fold = FleetFold(small_spec, small_package.selection, SnipConfig())
    fold.fold(small_shards[0])
    assert not fold.complete
    assert fold.next_index == 1
    with pytest.raises(FleetError, match="incomplete"):
        fold.finalize()
