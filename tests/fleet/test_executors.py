"""Executor contract: ordering, retries, budgets, and pool recovery.

The worker functions live at module level so both executors can pickle
them; the flaky ones coordinate through marker files because a process
pool cannot share in-memory state with the test.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import FleetError, WorkerCrashError
from repro.fleet.executors import (
    ProcessFleetExecutor,
    QueueFleetExecutor,
    SerialExecutor,
    make_executor,
)
from repro.fleet.telemetry import QUEUE_DEPTH, TelemetryBus


def _square(value):
    return value * value


def _slow_square(payload):
    value, delay_s = payload
    time.sleep(delay_s)
    return value * value


def _always_fails(value):
    raise ValueError(f"payload {value} is cursed")


def _flaky(payload):
    """Fail the first time each payload is seen, succeed after."""
    value, marker_dir = payload
    marker = marker_dir / f"seen_{value}"
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError(f"first attempt at {value}")
    return value * value


def test_make_executor_dispatch():
    assert isinstance(make_executor(1), SerialExecutor)
    pool = make_executor(3)
    assert isinstance(pool, ProcessFleetExecutor)
    assert pool.jobs == 3
    with pytest.raises(FleetError):
        make_executor(0)
    with pytest.raises(FleetError):
        ProcessFleetExecutor(1)


def test_make_executor_kinds():
    assert isinstance(make_executor(1, kind="serial"), SerialExecutor)
    assert isinstance(make_executor(2, kind="process"), ProcessFleetExecutor)
    queue = make_executor(2, kind="queue")
    assert isinstance(queue, QueueFleetExecutor)
    assert queue.jobs == 2
    # Queue works even single-worker (the window still bounds memory).
    assert isinstance(make_executor(1, kind="queue"), QueueFleetExecutor)
    with pytest.raises(FleetError, match="one job"):
        make_executor(4, kind="serial")
    with pytest.raises(FleetError, match="unknown executor kind"):
        make_executor(2, kind="threads")


def test_stream_yields_indexed_results():
    pairs = list(SerialExecutor().stream(_square, [3, 1, 2]))
    assert pairs == [(0, 9), (1, 1), (2, 4)]


def test_serial_returns_results_in_payload_order():
    executor = SerialExecutor()
    collected = []
    results = executor.run(
        _square, [3, 1, 2], on_result=lambda i, r: collected.append((i, r))
    )
    assert results == [9, 1, 4]
    assert collected == [(0, 9), (1, 1), (2, 4)]


def test_serial_retries_and_counts_failures(tmp_path):
    executor = SerialExecutor()
    telemetry = TelemetryBus()
    results = executor.run(
        _flaky, [(2, tmp_path), (5, tmp_path)], telemetry=telemetry
    )
    assert results == [4, 25]
    assert telemetry.counters.worker_failures == 2
    assert telemetry.counters.retries == 2


def test_shard_finished_carries_parent_measured_wall_time():
    # Wall time rides on the telemetry event, never on the result
    # object (results are pickled into checkpoints, which must stay
    # byte-stable across identical runs).
    telemetry = TelemetryBus()
    SerialExecutor().run(_square, [2, 3], telemetry=telemetry)
    finished = [
        event for event in telemetry.history if event.kind == "shard_finished"
    ]
    assert len(finished) == 2
    for event in finished:
        assert event.payload["wall_s"] >= 0.0


def test_serial_raises_when_budget_exhausted():
    executor = SerialExecutor()
    with pytest.raises(WorkerCrashError, match="retry budget exhausted"):
        executor.run(_always_fails, [1], retry_budget=2)


def test_negative_budget_rejected():
    with pytest.raises(FleetError):
        SerialExecutor().run(_square, [1], retry_budget=-1)


def test_process_pool_orders_results_despite_completion_order():
    executor = ProcessFleetExecutor(3)
    # Earlier payloads sleep longer, so completion order inverts payload
    # order — the returned list must not.
    payloads = [(4, 0.3), (3, 0.15), (2, 0.0)]
    landed = []
    results = executor.run(
        _slow_square, payloads, on_result=lambda i, r: landed.append(i)
    )
    assert results == [16, 9, 4]
    assert sorted(landed) == [0, 1, 2]


def test_process_pool_retries_worker_exceptions(tmp_path):
    executor = ProcessFleetExecutor(2)
    telemetry = TelemetryBus()
    results = executor.run(
        _flaky,
        [(2, tmp_path), (3, tmp_path), (4, tmp_path)],
        telemetry=telemetry,
        retry_budget=3,
    )
    assert results == [4, 9, 16]
    assert telemetry.counters.worker_failures == 3
    assert telemetry.counters.retries == 3


def test_process_pool_raises_when_budget_exhausted():
    executor = ProcessFleetExecutor(2)
    with pytest.raises(WorkerCrashError, match="retry budget exhausted"):
        executor.run(_always_fails, [1, 2], retry_budget=1)


def test_queue_executor_window_bounds_submission():
    executor = QueueFleetExecutor(jobs=2, prefetch=3)
    assert executor.window == 6
    with pytest.raises(FleetError):
        QueueFleetExecutor(0)
    with pytest.raises(FleetError):
        QueueFleetExecutor(2, prefetch=0)


def test_queue_executor_orders_results_despite_completion_order():
    executor = QueueFleetExecutor(jobs=3)
    payloads = [(4, 0.3), (3, 0.15), (2, 0.0)]
    results = executor.run(_slow_square, payloads)
    assert results == [16, 9, 4]


def test_queue_executor_emits_queue_depth_within_window():
    executor = QueueFleetExecutor(jobs=2, prefetch=2)
    telemetry = TelemetryBus()
    results = executor.run(_square, list(range(9)), telemetry=telemetry)
    assert results == [v * v for v in range(9)]
    depths = [
        event.payload["depth"]
        for event in telemetry.history
        if event.kind == QUEUE_DEPTH
    ]
    assert depths, "queue executor must report its backlog"
    assert telemetry.counters.peak_queue_depth == max(depths)


def test_queue_executor_retries_worker_exceptions(tmp_path):
    executor = QueueFleetExecutor(jobs=2)
    telemetry = TelemetryBus()
    results = executor.run(
        _flaky,
        [(2, tmp_path), (3, tmp_path), (4, tmp_path)],
        telemetry=telemetry,
        retry_budget=3,
    )
    assert results == [4, 9, 16]
    assert telemetry.counters.worker_failures == 3
    assert telemetry.counters.retries == 3


def test_queue_executor_raises_when_budget_exhausted():
    executor = QueueFleetExecutor(jobs=2)
    with pytest.raises(WorkerCrashError, match="retry budget exhausted"):
        executor.run(_always_fails, [1, 2], retry_budget=1)
