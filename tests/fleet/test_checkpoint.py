"""Checkpoint store and interrupt/resume behaviour."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import CheckpointError
from repro.fleet import CheckpointStore, FleetEngine, SerialExecutor
from repro.fleet.work import run_shard


class InterruptingExecutor(SerialExecutor):
    """Serial executor that dies after streaming ``limit`` payloads —
    the test's stand-in for ctrl-C / power loss mid-sweep."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def stream(self, fn, payloads, telemetry=None, retry_budget=3):
        inner = super().stream(
            fn, payloads, telemetry=telemetry, retry_budget=retry_budget
        )
        for count, item in enumerate(inner):
            if count >= self.limit:
                raise KeyboardInterrupt("simulated interrupt")
            yield item


def test_initialise_writes_manifest_and_accepts_same_spec(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    assert store.manifest_path.exists()
    store.initialise(small_spec)  # idempotent


def test_initialise_rejects_different_spec_or_layout(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    with pytest.raises(CheckpointError, match="different"):
        store.initialise(replace(small_spec, seed=small_spec.seed + 1))
    with pytest.raises(CheckpointError, match="different"):
        store.initialise(replace(small_spec, shard_size=small_spec.shard_size + 1))


def test_save_load_roundtrip_and_completed_indices(
    tmp_path, small_spec, small_package
):
    from repro.core.config import SnipConfig
    from repro.fleet.work import ShardTask

    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    assert store.completed_indices() == []
    result = run_shard(
        ShardTask(
            shard_index=1,
            spec=small_spec,
            device_ids=(2, 3),
            selection=small_package.selection,
            table=small_package.table,
            config=SnipConfig(),
        )
    )
    store.save(result)
    assert store.completed_indices() == [1]
    loaded = store.load(1)
    assert loaded.spec_fingerprint == result.spec_fingerprint
    assert loaded.events_processed == result.events_processed


def test_load_rejects_corrupt_shard(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    store.shard_path(0).write_bytes(b"not a pickle")
    with pytest.raises(CheckpointError, match="cannot load"):
        store.load(0)


def test_stray_checkpoint_files_are_loud(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    (store.shard_dir / "shard_oops.pkl").write_bytes(b"")
    with pytest.raises(CheckpointError, match="stray"):
        store.completed_indices()


def test_initialise_race_loser_is_loud(tmp_path, small_spec, monkeypatch):
    """The create/validate race: both stores see no manifest, one wins.

    Reproduced deterministically by publishing the winner's manifest in
    the window between the loser's existence check and its write — the
    loser must surface as :class:`CheckpointError`, not clobber the
    winner (the old plain-rename write did exactly that, silently).
    """
    loser = CheckpointStore(tmp_path / "run")
    winner = CheckpointStore(tmp_path / "run")
    original = CheckpointStore._exclusive_write

    def write_after_winner(path, data):
        monkeypatch.undo()  # the winner publishes unimpeded
        winner.initialise(small_spec)
        original(path, data)

    monkeypatch.setattr(
        CheckpointStore, "_exclusive_write", staticmethod(write_after_winner)
    )
    with pytest.raises(CheckpointError, match="lost initialisation race"):
        loser.initialise(small_spec)
    # The winner's manifest survived intact and still validates.
    CheckpointStore(tmp_path / "run").initialise(small_spec)
    assert not list((tmp_path / "run").glob("*.tmp"))


def test_concurrent_initialise_publishes_exactly_one_manifest(
    tmp_path, small_spec
):
    import threading

    run_dir = tmp_path / "run"
    stores = [CheckpointStore(run_dir) for _ in range(8)]
    barrier = threading.Barrier(len(stores))
    outcomes = [None] * len(stores)

    def start(slot, store):
        barrier.wait()
        try:
            store.initialise(small_spec)
            outcomes[slot] = "ok"
        except CheckpointError:
            outcomes[slot] = "lost"

    threads = [
        threading.Thread(target=start, args=(slot, store))
        for slot, store in enumerate(stores)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Losers are allowed (and loud), silent corruption is not: however
    # the race resolved, the surviving manifest validates the spec.
    assert all(outcome in ("ok", "lost") for outcome in outcomes)
    assert "ok" in outcomes
    CheckpointStore(run_dir).initialise(small_spec)
    assert not list(run_dir.glob("*.tmp"))


def _persist_one_shard(store, spec, package, index=0):
    from repro.core.config import SnipConfig
    from repro.fleet.work import ShardTask

    store.save(
        run_shard(
            ShardTask(
                shard_index=index,
                spec=spec,
                device_ids=spec.shard_at(index).device_ids,
                selection=package.selection,
                table=package.table,
                config=SnipConfig(),
            )
        )
    )


def test_corrupt_evictions_survive_store_restarts(
    tmp_path, small_spec, small_package
):
    """The eviction total is a per-run-dir counter, not per-instance.

    Regression: the counter used to live only on the store object, so
    every resume started back at 0 and the operator-facing telemetry
    undercounted corruption.
    """
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    _persist_one_shard(store, small_spec, small_package)
    store.shard_path(0).write_bytes(b"truncated garbage")
    assert store.resumable_indices() == []
    assert store.corrupt_evictions == 1

    reopened = CheckpointStore(tmp_path / "run")
    assert reopened.corrupt_evictions == 1  # before initialise, even
    reopened.initialise(small_spec)
    assert reopened.corrupt_evictions == 1

    # A second eviction in the new instance keeps accumulating.
    _persist_one_shard(reopened, small_spec, small_package)
    reopened.shard_path(0).write_bytes(b"more garbage")
    assert reopened.resumable_indices() == []
    assert reopened.corrupt_evictions == 2
    assert CheckpointStore(tmp_path / "run").corrupt_evictions == 2


def test_manifestless_store_counts_evictions_in_memory_only(tmp_path):
    # The engine's anonymous spill dirs have no manifest; eviction
    # accounting must not invent one.
    store = CheckpointStore(tmp_path / "spill")
    store.shard_dir.mkdir(parents=True)
    store.shard_path(0).write_bytes(b"junk")
    assert store.load_resumable(0) is None
    assert store.corrupt_evictions == 1
    assert not store.manifest_path.exists()


def test_interrupted_run_resumes_to_identical_report(tmp_path, small_spec):
    run_dir = tmp_path / "run"
    reference = FleetEngine(small_spec).run().to_text()

    with pytest.raises(KeyboardInterrupt):
        FleetEngine(
            small_spec,
            executor=InterruptingExecutor(limit=2),
            checkpoint=run_dir,
        ).run()
    partial = CheckpointStore(run_dir).completed_indices()
    assert len(partial) == 2  # progress survived the crash

    resumed = FleetEngine(small_spec, checkpoint=run_dir).run().to_text()
    assert resumed == reference
    # Every shard is now persisted; a third run is pure replay.
    assert (
        CheckpointStore(run_dir).completed_indices()
        == list(range(small_spec.shard_count))
    )
    replayed = FleetEngine(small_spec, checkpoint=run_dir).run().to_text()
    assert replayed == reference
