"""Checkpoint store and interrupt/resume behaviour."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import CheckpointError
from repro.fleet import CheckpointStore, FleetEngine, SerialExecutor
from repro.fleet.work import run_shard


class InterruptingExecutor(SerialExecutor):
    """Serial executor that dies after streaming ``limit`` payloads —
    the test's stand-in for ctrl-C / power loss mid-sweep."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def stream(self, fn, payloads, telemetry=None, retry_budget=3):
        inner = super().stream(
            fn, payloads, telemetry=telemetry, retry_budget=retry_budget
        )
        for count, item in enumerate(inner):
            if count >= self.limit:
                raise KeyboardInterrupt("simulated interrupt")
            yield item


def test_initialise_writes_manifest_and_accepts_same_spec(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    assert store.manifest_path.exists()
    store.initialise(small_spec)  # idempotent


def test_initialise_rejects_different_spec_or_layout(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    with pytest.raises(CheckpointError, match="different"):
        store.initialise(replace(small_spec, seed=small_spec.seed + 1))
    with pytest.raises(CheckpointError, match="different"):
        store.initialise(replace(small_spec, shard_size=small_spec.shard_size + 1))


def test_save_load_roundtrip_and_completed_indices(
    tmp_path, small_spec, small_package
):
    from repro.core.config import SnipConfig
    from repro.fleet.work import ShardTask

    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    assert store.completed_indices() == []
    result = run_shard(
        ShardTask(
            shard_index=1,
            spec=small_spec,
            device_ids=(2, 3),
            selection=small_package.selection,
            table=small_package.table,
            config=SnipConfig(),
        )
    )
    store.save(result)
    assert store.completed_indices() == [1]
    loaded = store.load(1)
    assert loaded.spec_fingerprint == result.spec_fingerprint
    assert loaded.events_processed == result.events_processed


def test_load_rejects_corrupt_shard(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    store.shard_path(0).write_bytes(b"not a pickle")
    with pytest.raises(CheckpointError, match="cannot load"):
        store.load(0)


def test_stray_checkpoint_files_are_loud(tmp_path, small_spec):
    store = CheckpointStore(tmp_path / "run")
    store.initialise(small_spec)
    (store.shard_dir / "shard_oops.pkl").write_bytes(b"")
    with pytest.raises(CheckpointError, match="stray"):
        store.completed_indices()


def test_interrupted_run_resumes_to_identical_report(tmp_path, small_spec):
    run_dir = tmp_path / "run"
    reference = FleetEngine(small_spec).run().to_text()

    with pytest.raises(KeyboardInterrupt):
        FleetEngine(
            small_spec,
            executor=InterruptingExecutor(limit=2),
            checkpoint=run_dir,
        ).run()
    partial = CheckpointStore(run_dir).completed_indices()
    assert len(partial) == 2  # progress survived the crash

    resumed = FleetEngine(small_spec, checkpoint=run_dir).run().to_text()
    assert resumed == reference
    # Every shard is now persisted; a third run is pure replay.
    assert (
        CheckpointStore(run_dir).completed_indices()
        == list(range(small_spec.shard_count))
    )
    replayed = FleetEngine(small_spec, checkpoint=run_dir).run().to_text()
    assert replayed == reference
