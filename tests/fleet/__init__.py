"""Tests for the fleet-simulation engine."""
