"""The columnar session fast path changes nothing observable.

``run_device`` routes every device through structure-of-arrays trace
assembly, batched probes, and columnar energy ledgers; the scalar
``run_device_reference`` is the seed implementation kept verbatim.
These tests assert *byte* identity — pickled :class:`DeviceResult`
payloads and rendered fleet reports — across every game, both cohorts
of a staged rollout, job counts, and the ``REPRO_SNIP_NO_BATCH``
escape hatch.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import SnipConfig
from repro.core.fastpath import (
    batching_enabled,
    disable_batching,
    enable_batching,
)
from repro.core.profiler import CloudProfiler
from repro.fleet import FleetEngine, FleetSpec, QueueFleetExecutor
from repro.fleet.spec import COHORT_CHALLENGER, COHORT_CHAMPION
from repro.fleet.work import run_device, run_device_reference
from repro.games.registry import GAME_NAMES


def _small_spec(game_name: str, **overrides) -> FleetSpec:
    settings = dict(
        game_name=game_name,
        devices=3,
        sessions_per_device=1,
        duration_s=1.0,
        seed=11,
        shard_size=3,
        profile_seeds=(1,),
        profile_duration_s=2.0,
        measure_energy=True,
        federate=True,
    )
    settings.update(overrides)
    return FleetSpec(**settings)


def _build_package(game_name: str, spec: FleetSpec, seeds=None):
    return CloudProfiler(SnipConfig(), cache=None).build_package_from_sessions(
        game_name,
        seeds=list(seeds if seeds is not None else spec.profile_seeds),
        duration_s=spec.profile_duration_s,
    )


class TestDeviceEquivalence:
    @pytest.mark.parametrize("game_name", GAME_NAMES)
    def test_device_results_pickle_identically_across_games(self, game_name):
        spec = _small_spec(game_name)
        package = _build_package(game_name, spec)
        config = SnipConfig()
        for device in range(spec.devices):
            batched = run_device(
                device, spec, package.selection, package.table, config
            )
            reference = run_device_reference(
                device, spec, package.selection, package.table, config
            )
            assert pickle.dumps(batched) == pickle.dumps(reference), (
                f"{game_name} device {device}: batched DeviceResult "
                f"diverged from the scalar reference"
            )

    def test_no_energy_federation_only_devices_identical(self):
        spec = _small_spec("candy_crush", measure_energy=False)
        package = _build_package(spec.game_name, spec)
        config = SnipConfig()
        for device in range(spec.devices):
            batched = run_device(
                device, spec, package.selection, package.table, config
            )
            reference = run_device_reference(
                device, spec, package.selection, package.table, config
            )
            assert pickle.dumps(batched) == pickle.dumps(reference)

    def test_challenger_cohort_devices_identical(self):
        spec = _small_spec(
            "candy_crush", devices=10, shard_size=5, challenger_fraction=0.5
        )
        cohorts = {spec.cohort_of(device) for device in range(spec.devices)}
        assert cohorts == {COHORT_CHAMPION, COHORT_CHALLENGER}, (
            "the spec must deal devices into both cohorts for this test"
        )
        champion = _build_package(spec.game_name, spec)
        challenger = _build_package(spec.game_name, spec, seeds=(2,))
        config = SnipConfig()
        for device in range(spec.devices):
            batched = run_device(
                device,
                spec,
                champion.selection,
                champion.table,
                config,
                challenger_selection=challenger.selection,
                challenger_table=challenger.table,
            )
            reference = run_device_reference(
                device,
                spec,
                champion.selection,
                champion.table,
                config,
                challenger_selection=challenger.selection,
                challenger_table=challenger.table,
            )
            assert pickle.dumps(batched) == pickle.dumps(reference), (
                f"device {device} ({spec.cohort_of(device)} cohort): "
                f"batched DeviceResult diverged from the scalar reference"
            )


class TestFleetReportEquivalence:
    def test_fleet_report_identical_across_jobs_and_batching(self):
        spec = _small_spec("candy_crush", devices=8, shard_size=2)
        serial = FleetEngine(spec, cache=None).run()
        parallel = FleetEngine(
            spec, executor=QueueFleetExecutor(jobs=4), cache=None
        ).run()
        assert parallel.to_json() == serial.to_json()
        assert parallel.to_text() == serial.to_text()

        restore = batching_enabled()
        disable_batching()
        try:
            scalar = FleetEngine(spec, cache=None).run()
        finally:
            if restore:
                enable_batching()
        assert scalar.to_json() == serial.to_json()
        assert scalar.to_text() == serial.to_text()

    def test_escape_hatch_routes_devices_through_reference(self):
        spec = _small_spec("candy_crush")
        package = _build_package(spec.game_name, spec)
        config = SnipConfig()
        restore = batching_enabled()
        disable_batching()
        try:
            assert not batching_enabled()
            routed = run_device(
                0, spec, package.selection, package.table, config
            )
        finally:
            if restore:
                enable_batching()
        reference = run_device_reference(
            0, spec, package.selection, package.table, config
        )
        assert pickle.dumps(routed) == pickle.dumps(reference)
        assert batching_enabled() == restore
