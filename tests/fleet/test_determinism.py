"""The tentpole property: scheduling can never change a fleet's results.

``--jobs 1`` and ``--jobs N`` must produce byte-identical aggregate
reports, and the aggregate must be invariant under the shard size (how
devices are dealt into work units). Both are checked on the rendered
report text — the strongest form, covering float sums, census ordering,
the federated table, and formatting in one comparison.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import FleetError
from repro.fleet import (
    FleetEngine,
    ProcessFleetExecutor,
    SerialExecutor,
)
from repro.fleet.reducers import canonical_device_results
from repro.fleet.work import run_shard


def _report_text(spec, executor=None):
    return FleetEngine(spec, executor=executor).run().to_text()


def test_parallel_report_matches_serial_byte_for_byte(small_spec):
    serial = _report_text(small_spec, SerialExecutor())
    parallel = _report_text(small_spec, ProcessFleetExecutor(4))
    assert parallel == serial


def test_report_invariant_under_shard_size(small_spec):
    reference = _report_text(replace(small_spec, shard_size=2))
    for shard_size in (1, 3, 6, 50):
        assert _report_text(replace(small_spec, shard_size=shard_size)) == reference


def test_serial_run_is_repeatable(small_spec):
    assert _report_text(small_spec) == _report_text(small_spec)


def test_device_results_do_not_depend_on_shard_neighbours(
    small_spec, small_package
):
    """A device computes the same numbers wherever it is dealt."""
    from repro.core.config import SnipConfig
    from repro.fleet.work import ShardTask

    config = SnipConfig()

    def shard_of(device_ids):
        return run_shard(
            ShardTask(
                shard_index=0,
                spec=small_spec,
                device_ids=device_ids,
                selection=small_package.selection,
                table=small_package.table,
                config=config,
            )
        )

    alone = shard_of((2,)).device_results[0]
    accompanied = next(
        device
        for device in shard_of((0, 1, 2, 3)).device_results
        if device.device_id == 2
    )
    assert alone.snip_joules == accompanied.snip_joules
    assert alone.baseline_joules == accompanied.baseline_joules
    assert alone.hits == accompanied.hits
    assert alone.events == accompanied.events
    assert alone.archetype == accompanied.archetype


def test_reducers_reject_incomplete_or_duplicated_populations(
    small_spec, small_package
):
    from repro.core.config import SnipConfig
    from repro.fleet.work import ShardTask

    task = ShardTask(
        shard_index=0,
        spec=small_spec,
        device_ids=(0, 1),
        selection=small_package.selection,
        table=small_package.table,
        config=SnipConfig(),
    )
    shard = run_shard(task)
    with pytest.raises(FleetError, match="missing"):
        canonical_device_results([shard], small_spec)
    with pytest.raises(FleetError, match="twice"):
        canonical_device_results([shard, shard], small_spec)
    with pytest.raises(FleetError, match="different"):
        wrong_spec = replace(small_spec, seed=small_spec.seed + 1)
        canonical_device_results([shard], wrong_spec)
