"""TelemetryBus counters, throughput math, and the progress printer."""

from __future__ import annotations

import io

import pytest

from repro.fleet.telemetry import (
    LIVE_SHARDS,
    PEAK_RSS,
    QUEUE_DEPTH,
    RUN_FINISHED,
    RUN_STARTED,
    SHARD_FINISHED,
    SHARD_RETRIED,
    WORKER_FAILURE,
    TelemetryBus,
    progress_printer,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_counters_accumulate_by_kind():
    bus = TelemetryBus(clock=FakeClock())
    bus.emit(RUN_STARTED, devices=8, shards=4, jobs=2)
    bus.emit(SHARD_FINISHED, shard_index=0, events=50, devices=2)
    bus.emit(WORKER_FAILURE, shard_index=1, error="boom")
    bus.emit(SHARD_RETRIED, shard_index=1)
    bus.emit(SHARD_FINISHED, shard_index=1, events=30, devices=2)
    counters = bus.counters
    assert counters.shards_total == 4
    assert counters.shards_done == 2
    assert counters.shards_pending == 2
    assert counters.devices_done == 4
    assert counters.events_processed == 80
    assert counters.worker_failures == 1
    assert counters.retries == 1


def test_events_per_second_uses_injected_clock():
    clock = FakeClock()
    bus = TelemetryBus(clock=clock)
    bus.emit(SHARD_FINISHED, shard_index=0, events=200)
    clock.now += 4.0
    assert bus.events_per_second() == 50.0
    snapshot = bus.snapshot()
    assert snapshot["events_processed"] == 200
    assert snapshot["events_per_second"] == 50.0


def test_events_per_second_is_zero_at_zero_elapsed():
    """Regression: ~0 elapsed used to yield astronomically large (or
    ZeroDivisionError-adjacent) rates when snapshotting right after
    construction; the rate now clamps to 0.0 below the floor."""
    clock = FakeClock()
    bus = TelemetryBus(clock=clock)
    bus.emit(SHARD_FINISHED, shard_index=0, events=10_000)
    assert bus.events_per_second() == 0.0
    assert bus.snapshot()["events_per_second"] == 0.0
    clock.now += 1e-9  # still inside the floor
    assert bus.events_per_second() == 0.0
    clock.now += 0.5
    assert bus.events_per_second() == pytest.approx(10_000 / 0.5000000010)


def test_subscribers_see_every_event_and_history_records_them():
    bus = TelemetryBus(clock=FakeClock())
    seen = []
    bus.subscribe(seen.append)
    bus.emit(RUN_STARTED, shards=1)
    bus.emit(SHARD_FINISHED, shard_index=0, events=1)
    assert [event.kind for event in seen] == [RUN_STARTED, SHARD_FINISHED]
    assert list(bus.history) == seen


def test_gauges_track_high_water_marks():
    bus = TelemetryBus(clock=FakeClock())
    bus.emit(QUEUE_DEPTH, depth=3)
    bus.emit(QUEUE_DEPTH, depth=7)
    bus.emit(QUEUE_DEPTH, depth=2)  # falling edge must not lower the peak
    bus.emit(LIVE_SHARDS, count=4)
    bus.emit(LIVE_SHARDS, count=1)
    bus.emit(PEAK_RSS, bytes=1_000_000)
    bus.emit(PEAK_RSS, bytes=900_000)
    counters = bus.counters
    assert counters.peak_queue_depth == 7
    assert counters.peak_live_shards == 4
    assert counters.peak_rss_bytes == 1_000_000
    snapshot = bus.snapshot()
    assert snapshot["peak_queue_depth"] == 7
    assert snapshot["peak_live_shards"] == 4
    assert snapshot["peak_rss_bytes"] == 1_000_000


def test_history_limit_bounds_retention_not_counters():
    bus = TelemetryBus(clock=FakeClock(), history_limit=2)
    for index in range(5):
        bus.emit(SHARD_FINISHED, shard_index=index, events=10, devices=1)
    assert len(bus.history) == 2
    assert [event.shard_index for event in bus.history] == [3, 4]
    assert bus.counters.shards_done == 5
    assert bus.counters.events_processed == 50


def test_fleet_engine_reports_gauges_through_the_bus(small_spec, small_package):
    from repro.fleet import FleetEngine

    bus = TelemetryBus()
    FleetEngine(small_spec, package=small_package, cache=None, telemetry=bus).run()
    kinds = [event.kind for event in bus.history]
    assert QUEUE_DEPTH in kinds
    assert LIVE_SHARDS in kinds
    assert PEAK_RSS in kinds
    assert bus.counters.peak_rss_bytes > 0
    finished = next(
        event for event in bus.history if event.kind == RUN_FINISHED
    )
    assert finished.payload["peak_rss_bytes"] == bus.counters.peak_rss_bytes
    assert finished.payload["peak_live_shards"] == bus.counters.peak_live_shards


def test_progress_printer_renders_lifecycle_lines():
    bus = TelemetryBus(clock=FakeClock())
    out = io.StringIO()
    bus.subscribe(progress_printer(out))
    bus.emit(RUN_STARTED, devices=4, shards=2, jobs=2)
    bus.emit(SHARD_FINISHED, shard_index=0, events=10, wall_s=0.5)
    bus.emit(WORKER_FAILURE, shard_index=1, error="ValueError('x')")
    bus.emit(SHARD_RETRIED, shard_index=1)
    bus.emit(RUN_FINISHED, events=10, events_per_second=20.0)
    text = out.getvalue()
    assert "run started: 4 devices in 2 shards" in text
    assert "shard 0 done (10 events" in text
    assert "worker failure on shard 1" in text
    assert "retrying shard 1" in text
    assert "run finished: 10 events" in text
