"""FleetSpec validation, fingerprints, and shard planning."""

from __future__ import annotations

import pytest

from repro.errors import FleetError
from repro.fleet import FleetSpec, Shard


def test_spec_rejects_bad_parameters():
    with pytest.raises(FleetError):
        FleetSpec(game_name="no_such_game", devices=4)
    with pytest.raises(FleetError):
        FleetSpec(game_name="candy_crush", devices=0)
    with pytest.raises(FleetError):
        FleetSpec(game_name="candy_crush", devices=4, sessions_per_device=0)
    with pytest.raises(FleetError):
        FleetSpec(game_name="candy_crush", devices=4, duration_s=0.0)
    with pytest.raises(FleetError):
        FleetSpec(game_name="candy_crush", devices=4, shard_size=0)
    with pytest.raises(FleetError):
        FleetSpec(game_name="candy_crush", devices=4, profile_seeds=())
    with pytest.raises(FleetError):
        FleetSpec(
            game_name="candy_crush", devices=4,
            measure_energy=False, federate=False,
        )


def test_shards_cover_every_device_exactly_once():
    spec = FleetSpec(game_name="candy_crush", devices=11, shard_size=4)
    shards = spec.shards()
    assert len(shards) == spec.shard_count == 3
    dealt = [device for shard in shards for device in shard.device_ids]
    assert dealt == list(range(11))
    assert [shard.index for shard in shards] == [0, 1, 2]


def test_shard_rejects_empty_device_list():
    with pytest.raises(FleetError):
        Shard(index=0, device_ids=())


def test_fingerprint_ignores_shard_size_but_layout_does_not():
    base = FleetSpec(game_name="candy_crush", devices=10, shard_size=2)
    resharded = FleetSpec(game_name="candy_crush", devices=10, shard_size=5)
    assert base.fingerprint() == resharded.fingerprint()
    assert base.layout_fingerprint() != resharded.layout_fingerprint()


def test_fingerprint_tracks_result_affecting_fields():
    base = FleetSpec(game_name="candy_crush", devices=10)
    for variant in (
        FleetSpec(game_name="candy_crush", devices=11),
        FleetSpec(game_name="candy_crush", devices=10, seed=1),
        FleetSpec(game_name="candy_crush", devices=10, duration_s=11.0),
        FleetSpec(game_name="candy_crush", devices=10, sessions_per_device=2),
        FleetSpec(game_name="candy_crush", devices=10, profile_seeds=(1, 2)),
        FleetSpec(game_name="candy_crush", devices=10, measure_energy=False),
        FleetSpec(game_name="greenwall", devices=10),
    ):
        assert variant.fingerprint() != base.fingerprint()


def test_total_sessions():
    spec = FleetSpec(game_name="candy_crush", devices=7, sessions_per_device=3)
    assert spec.total_sessions == 21
