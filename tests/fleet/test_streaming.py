"""Streaming reduction: equivalence, spill, resume, and gauges.

The acceptance property of the streaming engine: however shard results
are scheduled, buffered, spilled, or resumed, the rendered
:class:`FleetReport` (text and JSON) is byte-identical to the serial
in-order run — and the engine only re-executes work that was never
folded.
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    CheckpointStore,
    FleetEngine,
    QueueFleetExecutor,
    SerialExecutor,
    TelemetryBus,
    canonical_device_results,
    make_executor,
    reduce_census,
    reduce_totals,
)
from repro.fleet.telemetry import LIVE_SHARDS, PEAK_RSS, RUN_STARTED


class ReversingExecutor(SerialExecutor):
    """Serial executor that reports results in *reverse* completion
    order — the worst case for the engine's reorder buffer."""

    def stream(self, fn, payloads, telemetry=None, retry_budget=3):
        collected = list(
            super().stream(
                fn, payloads, telemetry=telemetry, retry_budget=retry_budget
            )
        )
        yield from reversed(collected)


class InterruptingExecutor(SerialExecutor):
    """Dies after streaming ``limit`` payloads (ctrl-C mid-sweep)."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def stream(self, fn, payloads, telemetry=None, retry_budget=3):
        inner = super().stream(
            fn, payloads, telemetry=telemetry, retry_budget=retry_budget
        )
        for count, item in enumerate(inner):
            if count >= self.limit:
                raise KeyboardInterrupt("simulated interrupt")
            yield item


@pytest.fixture(scope="module")
def reference(small_spec, small_package):
    """The serial in-order run every schedule must reproduce."""
    return FleetEngine(small_spec, package=small_package, cache=None).run()


def _run(small_spec, small_package, **kwargs):
    return FleetEngine(
        small_spec, package=small_package, cache=None, **kwargs
    ).run()


def test_parallel_jobs_render_identically(small_spec, small_package, reference):
    parallel = _run(small_spec, small_package, executor=make_executor(4))
    assert parallel.to_text() == reference.to_text()
    assert parallel.to_json() == reference.to_json()


def test_queue_executor_renders_identically(small_spec, small_package, reference):
    queued = _run(
        small_spec, small_package, executor=QueueFleetExecutor(jobs=2)
    )
    assert queued.to_text() == reference.to_text()
    assert queued.to_json() == reference.to_json()


def test_reversed_completion_with_tiny_buffer_spills_and_matches(
    small_spec, small_package, reference
):
    # Reverse completion order forces every shard through the reorder
    # buffer; max_live_shards=1 forces all but one onto disk.
    telemetry = TelemetryBus()
    report = _run(
        small_spec,
        small_package,
        executor=ReversingExecutor(),
        telemetry=telemetry,
        max_live_shards=1,
    )
    assert report.to_text() == reference.to_text()
    assert report.to_json() == reference.to_json()
    # The gauge samples the buffer's post-insert high-water mark, so a
    # cap of 1 peaks at 2 (the insert that triggers each spill) and can
    # never read 0.
    assert 1 <= telemetry.counters.peak_live_shards <= 2


def test_shard_observer_sees_every_shard_in_fold_order(
    small_spec, small_package, reference
):
    # The observer hangs off the fold site, so even reverse completion
    # (every shard through the reorder buffer) yields index order —
    # this is what hands the serve daemon a deterministic report
    # stream.
    seen = []
    report = _run(
        small_spec,
        small_package,
        executor=ReversingExecutor(),
        shard_observer=lambda shard: seen.append(shard.shard_index),
    )
    assert seen == list(range(small_spec.shard_count))
    assert report.to_json() == reference.to_json()


def test_shard_observer_covers_resumed_shards(
    tmp_path, small_spec, small_package
):
    run_dir = tmp_path / "run"
    with pytest.raises(KeyboardInterrupt):
        _run(
            small_spec,
            small_package,
            executor=InterruptingExecutor(limit=2),
            checkpoint=run_dir,
        )
    # Resume replays the checkpointed shards through the same fold
    # path, so the observer still sees the complete, ordered stream.
    seen = []
    _run(
        small_spec,
        small_package,
        checkpoint=run_dir,
        shard_observer=lambda shard: seen.append(shard.shard_index),
    )
    assert seen == list(range(small_spec.shard_count))


def test_streamed_report_matches_batch_reduction(
    small_shards, small_spec, reference
):
    devices = canonical_device_results(small_shards, small_spec)
    assert reference.totals == reduce_totals(devices)
    assert reference.census == reduce_census(devices)


def test_resume_folds_checkpointed_shards_without_rerunning(
    tmp_path, small_spec, small_package, reference
):
    run_dir = tmp_path / "run"
    with pytest.raises(KeyboardInterrupt):
        _run(
            small_spec,
            small_package,
            executor=InterruptingExecutor(limit=2),
            checkpoint=run_dir,
        )
    assert len(CheckpointStore(run_dir).completed_indices()) == 2

    telemetry = TelemetryBus()
    resumed = _run(
        small_spec, small_package, checkpoint=run_dir, telemetry=telemetry
    )
    assert resumed.to_text() == reference.to_text()
    assert resumed.to_json() == reference.to_json()
    started = next(
        event for event in telemetry.history if event.kind == RUN_STARTED
    )
    assert started.payload["resumed"] == 2
    # Only the unfolded shards were re-executed.
    assert telemetry.counters.shards_done == small_spec.shard_count - 2


def test_corrupt_checkpoint_shard_is_evicted_and_rerun(
    tmp_path, small_spec, small_package, reference
):
    run_dir = tmp_path / "run"
    first = _run(small_spec, small_package, checkpoint=run_dir)
    assert first.to_text() == reference.to_text()
    store = CheckpointStore(run_dir)
    store.shard_path(1).write_bytes(b"truncated garbage")

    telemetry = TelemetryBus()
    rerun = _run(
        small_spec, small_package, checkpoint=run_dir, telemetry=telemetry
    )
    assert rerun.to_text() == reference.to_text()
    started = next(
        event for event in telemetry.history if event.kind == RUN_STARTED
    )
    assert started.payload["corrupt_evictions"] == 1
    assert started.payload["resumed"] == small_spec.shard_count - 1
    assert telemetry.counters.shards_done == 1  # only the evicted shard


def test_engine_emits_live_shard_and_rss_gauges(small_spec, small_package):
    telemetry = TelemetryBus()
    _run(small_spec, small_package, telemetry=telemetry)
    kinds = {event.kind for event in telemetry.history}
    assert LIVE_SHARDS in kinds
    assert PEAK_RSS in kinds
    assert telemetry.counters.peak_rss_bytes > 0
    # High-water gauging: every insert is sampled before the drain, so
    # the peak is at least 1 and at most one past the buffer cap.
    assert 1 <= telemetry.counters.peak_live_shards <= 9


def test_bounded_history_keeps_counters_whole(small_spec, small_package):
    telemetry = TelemetryBus(history_limit=4)
    _run(small_spec, small_package, telemetry=telemetry)
    assert len(telemetry.history) <= 4
    assert telemetry.counters.shards_done == small_spec.shard_count
    assert telemetry.counters.peak_rss_bytes > 0
