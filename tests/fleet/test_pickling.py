"""Every payload that crosses a worker process boundary must pickle.

A process pool serialises the task going out and the result coming
back; a type that silently loses state (or fails to pickle at all)
would only surface as a crash — or worse, a wrong aggregate — deep in a
fleet run. Each round-trip here also checks semantic equality, not just
"no exception".
"""

from __future__ import annotations

import pickle

from repro.core.config import SnipConfig
from repro.core.federated import build_device_contribution
from repro.fleet.spec import FleetSpec
from repro.fleet.work import DeviceResult, ShardResult, ShardTask, run_shard
from repro.users.population import Population
from repro.users.sessions import run_baseline_session


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def test_spec_roundtrips():
    spec = FleetSpec(game_name="candy_crush", devices=4, seed=9)
    assert _roundtrip(spec) == spec


def test_trace_roundtrips():
    trace = Population(seed=3).user_trace("candy_crush", 0, 0, 5.0)
    copy = _roundtrip(trace)
    assert copy.game_name == trace.game_name
    assert len(copy) == len(trace)
    assert [r.to_event().values for r in copy] == [
        r.to_event().values for r in trace
    ]


def test_energy_report_roundtrips():
    report = run_baseline_session("candy_crush", seed=1, duration_s=5.0).report
    copy = _roundtrip(report)
    assert copy.total_joules == report.total_joules
    assert copy.by_component == report.by_component


def test_table_and_selection_roundtrip(small_package):
    table = _roundtrip(small_package.table)
    assert table.entry_count == small_package.table.entry_count
    assert table.total_bytes == small_package.table.total_bytes
    selection = _roundtrip(small_package.selection)
    assert selection.total_bytes == small_package.selection.total_bytes
    assert set(selection.by_event_type) == set(
        small_package.selection.by_event_type
    )


def test_contribution_roundtrips(small_spec, small_package):
    trace = Population(seed=small_spec.seed).user_trace(
        small_spec.game_name, 0, 0, small_spec.duration_s
    )
    contribution = build_device_contribution(
        0, small_spec.game_name, [trace], small_package.selection
    )
    copy = _roundtrip(contribution)
    assert copy.device_id == contribution.device_id
    assert copy.upload_bytes == contribution.upload_bytes
    assert copy.events_observed == contribution.events_observed
    assert copy.signature_weight == contribution.signature_weight
    assert copy.writes == contribution.writes


def test_shard_task_and_result_roundtrip(small_spec, small_package):
    task = ShardTask(
        shard_index=0,
        spec=small_spec,
        device_ids=(0, 1),
        selection=small_package.selection,
        table=small_package.table,
        config=SnipConfig(),
    )
    task_copy = _roundtrip(task)
    assert task_copy.spec == small_spec
    assert task_copy.device_ids == (0, 1)

    result = run_shard(task_copy)
    assert isinstance(result, ShardResult)
    result_copy = _roundtrip(result)
    assert result_copy.shard_index == result.shard_index
    assert result_copy.spec_fingerprint == result.spec_fingerprint
    assert result_copy.device_count == result.device_count
    assert result_copy.events_processed == result.events_processed
    for original, copied in zip(result.device_results, result_copy.device_results):
        assert isinstance(copied, DeviceResult)
        assert copied.device_id == original.device_id
        assert copied.snip_joules == original.snip_joules
        assert copied.baseline_joules == original.baseline_joules
        assert copied.hits == original.hits


def test_identical_shard_runs_pickle_byte_equal(small_spec, small_package):
    """Checkpoint stability: no wall-clock state may leak into results.

    ShardResults are checkpointed to disk as pickle bytes, so two runs
    of the same task must serialise identically — the regression this
    pins is a wall-time field on ShardResult, which made every
    checkpoint byte-unique.
    """
    def shard_bytes():
        task = ShardTask(
            shard_index=0,
            spec=small_spec,
            device_ids=(0, 1),
            selection=small_package.selection,
            table=small_package.table,
            config=SnipConfig(),
        )
        return pickle.dumps(
            run_shard(task), protocol=pickle.HIGHEST_PROTOCOL
        )

    assert shard_bytes() == shard_bytes()
    assert not hasattr(ShardResult(0, ""), "wall_seconds")
