"""Shared fixtures for the fleet tests.

The specs here are deliberately tiny (few devices, short sessions) so
the determinism properties can be checked end-to-end — including across
a real process pool — without dominating the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.fleet import FleetSpec


@pytest.fixture(scope="session")
def small_spec():
    """A full fleet run (energy + federation) small enough for tests."""
    return FleetSpec(
        game_name="candy_crush",
        devices=6,
        sessions_per_device=1,
        duration_s=4.0,
        seed=3,
        shard_size=2,
        profile_seeds=(1,),
        profile_duration_s=6.0,
    )


@pytest.fixture(scope="session")
def small_package(small_spec):
    """The centrally profiled package every shard task ships."""
    profiler = CloudProfiler(SnipConfig())
    return profiler.build_package_from_sessions(
        small_spec.game_name,
        seeds=list(small_spec.profile_seeds),
        duration_s=small_spec.profile_duration_s,
    )


@pytest.fixture(scope="session")
def small_shards(small_spec, small_package):
    """Every shard of ``small_spec``, simulated once for reducer tests."""
    from repro.fleet.work import ShardTask, run_shard

    return [
        run_shard(
            ShardTask(
                shard_index=shard.index,
                spec=small_spec,
                device_ids=shard.device_ids,
                selection=small_package.selection,
                table=small_package.table,
                config=SnipConfig(),
            )
        )
        for shard in small_spec.iter_shards()
    ]
