"""Incremental analysis cache for the lint runner.

A full lint of the tree parses every file and builds the project call
graph; in CI and pre-commit that cost is paid on every run even though
almost nothing changed.  The cache keys each file's **outcome** (its
post-suppression findings, suppression accounting, declared
suppression entries) by a content hash, and the whole project pass by
the hash map of every input, so:

* a warm run with no edits replays both layers without parsing a
  single file;
* an edit re-runs the file rules for the changed files only, plus the
  project pass (whose inputs — by definition — changed).

Two fingerprints guard staleness the content hashes cannot see: the
**engine** fingerprint (a digest over ``repro/lint``'s own sources, so
editing a rule invalidates everything) and the **policy** fingerprint
(the :class:`~repro.lint.core.LintConfig` plus the rule selection).
A cache written by a different engine or policy is ignored wholesale.

The file format is a single JSON document, written atomically; a
missing, corrupt, or mismatched cache is silently treated as cold —
the cache can only ever make a run faster, never change its result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.core import Finding, LintConfig

CACHE_VERSION = 1

#: A declared/used suppression entry: (path, line-or-None, rule id).
SuppressionEntry = Tuple[str, Optional[int], str]


def content_hash(source: str) -> str:
    """Stable digest of one file's text."""
    return hashlib.blake2b(
        source.encode("utf-8"), digest_size=16
    ).hexdigest()


_ENGINE_FINGERPRINT: Optional[str] = None


def engine_fingerprint() -> str:
    """Digest over the lint package's own sources.

    Editing any rule, the runner, or this module must invalidate every
    cached outcome — the cheapest correct definition of "the analyzer
    changed" is "its bytes changed".
    """
    global _ENGINE_FINGERPRINT
    if _ENGINE_FINGERPRINT is None:
        package_dir = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.blake2b(digest_size=16)
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\x01")
        _ENGINE_FINGERPRINT = digest.hexdigest()
    return _ENGINE_FINGERPRINT


def policy_fingerprint(
    config: LintConfig, rule_ids: Optional[List[str]]
) -> str:
    """Digest of the config knobs and the rule selection."""
    payload = json.dumps(
        {
            "config": repr(config),
            "rules": sorted(rule_ids) if rule_ids is not None else "<all>",
        },
        sort_keys=True,
    )
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=16
    ).hexdigest()


def _encode_finding(finding: Finding) -> List[Any]:
    return [
        finding.rule_id, finding.path, finding.line,
        finding.column, finding.message,
    ]


def _decode_finding(row: List[Any]) -> Finding:
    rule_id, path, line, column, message = row
    return Finding(
        rule_id=str(rule_id), path=str(path), line=int(line),
        column=int(column), message=str(message),
    )


def _encode_entries(entries: List[SuppressionEntry]) -> List[List[Any]]:
    return [[path, line, rule] for path, line, rule in entries]


def _decode_entries(rows: List[Any]) -> List[SuppressionEntry]:
    return [
        (str(path), None if line is None else int(line), str(rule))
        for path, line, rule in rows
    ]


@dataclass
class FileOutcome:
    """Everything the runner learned about one file (post-suppression)."""

    file_hash: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    used: List[SuppressionEntry] = field(default_factory=list)
    declared: List[SuppressionEntry] = field(default_factory=list)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "hash": self.file_hash,
            "findings": [_encode_finding(f) for f in self.findings],
            "suppressed": self.suppressed,
            "used": _encode_entries(self.used),
            "declared": _encode_entries(self.declared),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "FileOutcome":
        return cls(
            file_hash=str(doc["hash"]),
            findings=[_decode_finding(row) for row in doc["findings"]],
            suppressed=int(doc["suppressed"]),
            used=_decode_entries(doc["used"]),
            declared=_decode_entries(doc["declared"]),
        )


@dataclass
class ProjectOutcome:
    """The project-scope pass over one exact set of input hashes."""

    inputs: Dict[str, str] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    used: List[SuppressionEntry] = field(default_factory=list)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "inputs": dict(sorted(self.inputs.items())),
            "findings": [_encode_finding(f) for f in self.findings],
            "suppressed": self.suppressed,
            "used": _encode_entries(self.used),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "ProjectOutcome":
        return cls(
            inputs={str(k): str(v) for k, v in doc["inputs"].items()},
            findings=[_decode_finding(row) for row in doc["findings"]],
            suppressed=int(doc["suppressed"]),
            used=_decode_entries(doc["used"]),
        )


class AnalysisCache:
    """Content-addressed store of per-file and project lint outcomes."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._files: Dict[str, FileOutcome] = {}
        self._project: Optional[ProjectOutcome] = None
        self._valid_for: Optional[Tuple[str, str]] = None
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            if not isinstance(doc, dict) or doc.get("version") != CACHE_VERSION:
                return
            engine = str(doc["engine"])
            policy = str(doc["policy"])
            files = {
                str(path): FileOutcome.from_doc(entry)
                for path, entry in doc["files"].items()
            }
            project = (
                ProjectOutcome.from_doc(doc["project"])
                if doc.get("project") is not None
                else None
            )
        except (OSError, ValueError, KeyError, TypeError):
            # Missing or corrupt cache: start cold.  The next save
            # rewrites the file wholesale, so no repair is needed.
            return
        self._valid_for = (engine, policy)
        self._files = files
        self._project = project

    def matches(self, engine: str, policy: str) -> bool:
        """Whether stored outcomes were produced by this exact analyzer."""
        return self._valid_for == (engine, policy)

    def lookup_file(self, path: str, file_hash: str) -> Optional[FileOutcome]:
        """The cached outcome for ``path`` iff its content is unchanged."""
        outcome = self._files.get(path)
        if outcome is not None and outcome.file_hash == file_hash:
            return outcome
        return None

    def lookup_project(
        self, inputs: Dict[str, str]
    ) -> Optional[ProjectOutcome]:
        """The cached project pass iff every input hash matches."""
        if self._project is not None and self._project.inputs == inputs:
            return self._project
        return None

    def save(
        self,
        engine: str,
        policy: str,
        files: Dict[str, FileOutcome],
        project: Optional[ProjectOutcome],
    ) -> None:
        """Atomically replace the cache with this run's outcomes."""
        doc = {
            "version": CACHE_VERSION,
            "engine": engine,
            "policy": policy,
            "files": {
                path: files[path].to_doc() for path in sorted(files)
            },
            "project": project.to_doc() if project is not None else None,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".lint-cache-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, separators=(",", ":"), sort_keys=True)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._valid_for = (engine, policy)
        self._files = dict(files)
        self._project = project
