"""Determinism rules: the fleet engine's byte-identical-report contract.

``repro.fleet`` promises that the aggregate report of a fleet run is
identical across ``--jobs`` settings and shard sizes.  Anything that
reads ambient machine state — the wall clock, the process environment,
an unseeded global RNG, or hash-randomised ``set`` iteration order —
can leak into an aggregate and break that promise on exactly the runs
the determinism tests do not cover.  These rules make the hazards
structural: they flag the *pattern*, not the bug it eventually causes.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Set, Union

from repro.lint.core import FileContext, Finding, Rule, register_rule

#: Wall-clock reads; referencing one (not just calling it) is flagged,
#: because passing ``time.monotonic`` as a default argument smuggles the
#: clock just as effectively as calling it.
_WALLCLOCK_ORIGINS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Constructors on the ``random`` / ``numpy.random`` modules that take an
#: explicit seed and therefore stay reproducible.
_SEEDED_RANDOM_OK = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
})

_ENV_ORIGINS = frozenset({"os.environ", "os.getenv", "os.environb"})


def _is_set_producing(node: ast.expr) -> bool:
    """Whether an expression syntactically yields a ``set``.

    Recognises set displays, set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, and binary set algebra (``|  & - ^``)
    where either operand is itself set-producing.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_producing(node.left) or _is_set_producing(node.right)
    return False


#: Annotation heads that type a name as a set.
_SET_ANNOTATION_NAMES = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})


def _is_set_annotation(node: ast.expr) -> bool:
    """Whether an annotation expression names a set type."""
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATION_NAMES
    return False


Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _scope_statements(scope: Scope) -> Iterator[ast.stmt]:
    """Statements belonging to ``scope``, excluding nested def/class
    bodies (those are their own binding scopes)."""
    stack: List[ast.stmt] = list(scope.body)
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)


def set_typed_locals(
    scope: Scope,
    call_returns_set: Optional[Callable[[ast.Call], bool]] = None,
) -> Set[str]:
    """Names in ``scope`` whose every binding is a set.

    A name qualifies when all of its bindings are set-producing
    expressions, ``Set``-annotated, or (when the caller can resolve
    calls, via ``call_returns_set``) calls of set-returning functions.
    Any binding of unknown type — a loop target, an unpacking, an
    ordinary assignment — disqualifies the name, and ``AugAssign`` is
    neutral (``|=`` does not change what the name holds).  Conservative
    by construction: one doubtful binding and the name drops out.
    """
    set_bound: Set[str] = set()
    disqualified: Set[str] = set()

    def classify(name: str, is_set: bool) -> None:
        (set_bound if is_set else disqualified).add(name)

    def value_is_set(value: Optional[ast.expr]) -> bool:
        if value is None:
            return False
        if _is_set_producing(value):
            return True
        if (
            call_returns_set is not None
            and isinstance(value, ast.Call)
            and call_returns_set(value)
        ):
            return True
        return False

    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                set_bound.add(arg.arg)
            else:
                disqualified.add(arg.arg)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                disqualified.add(vararg.arg)

    for node in _scope_statements(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    classify(target.id, value_is_set(node.value))
                else:
                    for inner in ast.walk(target):
                        if isinstance(inner, ast.Name):
                            disqualified.add(inner.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotated_set = _is_set_annotation(node.annotation)
            classify(
                node.target.id, annotated_set or value_is_set(node.value)
            )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for inner in ast.walk(node.target):
                if isinstance(inner, ast.Name):
                    disqualified.add(inner.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for inner in ast.walk(item.optional_vars):
                        if isinstance(inner, ast.Name):
                            disqualified.add(inner.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                disqualified.add(alias.asname or alias.name.split(".")[0])
        # Walrus bindings inside expressions: disqualify their targets.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                for inner in ast.walk(child):
                    if isinstance(inner, ast.NamedExpr) and isinstance(
                        inner.target, ast.Name
                    ):
                        if not value_is_set(inner.value):
                            disqualified.add(inner.target.id)
                        else:
                            set_bound.add(inner.target.id)
    return set_bound - disqualified


def iter_scopes(tree: ast.Module) -> Iterator[Scope]:
    """The module scope, then every (possibly nested) function scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register_rule
class WallClockRule(Rule):
    """No wall-clock reads inside ``src/repro``.

    Simulated time lives on the SoC (``soc.advance_time``); a real
    clock read in library code either skews an aggregate or hides a
    dependency on host speed.  Telemetry display is the one legitimate
    use — suppress those sites with a justification comment.
    """

    id = "det-wallclock"
    description = "wall-clock read (time.*/datetime.now) in library code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only flag the outermost match: for `time.monotonic()` the
            # walk also visits the inner Name("time"), which resolves to
            # just "time" and is not in the origin set.
            origin = ctx.imports.resolve(node)
            if origin in _WALLCLOCK_ORIGINS:
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"wall-clock read of {origin}",
                )


@register_rule
class UnseededRandomRule(Rule):
    """No unseeded global-RNG calls (``random.*``, ``numpy.random.*``).

    The global RNGs are process-wide mutable state: results depend on
    import order and on how many draws other code made first, which is
    exactly what varies between ``--jobs 1`` and ``--jobs 4``.  Seeded
    generator objects (``random.Random(seed)``,
    ``numpy.random.default_rng(seed)``) are the sanctioned alternative.
    """

    id = "det-unseeded-random"
    description = "module-level random.* / numpy.random.* call"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.imports.resolve(node.func)
            if origin is None:
                continue
            if origin in _SEEDED_RANDOM_OK:
                continue
            if origin.startswith("random.") or origin.startswith("numpy.random."):
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"call of global-RNG function {origin}",
                )


@register_rule
class EnvReadRule(Rule):
    """Environment reads only in the CLI layer.

    ``os.environ`` is per-host configuration; reading it deep in the
    library makes two machines disagree on the same spec.  The CLI may
    translate environment into explicit arguments — nothing else may.
    """

    id = "det-env-read"
    description = "os.environ / os.getenv read outside the CLI layer"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module_basename in self.config.env_allowed_basenames:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            origin = ctx.imports.resolve(node)
            if origin in _ENV_ORIGINS:
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"environment read via {origin}",
                )


@register_rule
class SetIterationRule(Rule):
    """Iteration over a set must go through ``sorted(...)``.

    Set iteration order depends on string hash randomisation
    (``PYTHONHASHSEED``), so a loop over ``set(a) | set(b)`` visits
    elements in a different order in every worker process.  Counting
    survives that; float accumulation, first-wins merges, and rendered
    output do not.  Wrapping in ``sorted`` is cheap and makes the order
    canonical (see ``fleet/reducers.py`` for the idiom).
    """

    id = "det-set-iter"
    description = "iteration over an unsorted set expression or set-typed local"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iter_expr = _iterated_expr(node)
            if iter_expr is not None and _is_set_producing(iter_expr):
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=iter_expr.lineno,
                    column=iter_expr.col_offset,
                    message="iteration over a set without sorted(...); "
                    "order varies with PYTHONHASHSEED",
                )
        # Second pass per binding scope: locals that can only hold a
        # set (every assignment is set-producing or Set-annotated) are
        # just as hash-ordered as a literal set expression.
        for scope in iter_scopes(ctx.tree):
            locals_ = set_typed_locals(scope)
            if not locals_:
                continue
            for node in _walk_scope(scope):
                iter_expr = _iterated_expr(node)
                if (
                    isinstance(iter_expr, ast.Name)
                    and iter_expr.id in locals_
                ):
                    yield Finding(
                        rule_id=self.id,
                        path=ctx.path,
                        line=iter_expr.lineno,
                        column=iter_expr.col_offset,
                        message=f"iteration over set-typed local "
                        f"{iter_expr.id!r} without sorted(...); "
                        "order varies with PYTHONHASHSEED",
                    )


def _iterated_expr(node: ast.AST) -> Optional[ast.expr]:
    """The iterable of a ``for`` / comprehension clause, else ``None``."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return node.iter
    if isinstance(node, ast.comprehension):
        return node.iter
    return None


def _walk_scope(scope: Scope) -> Iterator[ast.AST]:
    """Every node in ``scope`` excluding nested def/class bodies."""
    for stmt in _scope_statements(scope):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, ast.stmt):
                yield from ast.walk(child)
