"""Determinism rules: the fleet engine's byte-identical-report contract.

``repro.fleet`` promises that the aggregate report of a fleet run is
identical across ``--jobs`` settings and shard sizes.  Anything that
reads ambient machine state — the wall clock, the process environment,
an unseeded global RNG, or hash-randomised ``set`` iteration order —
can leak into an aggregate and break that promise on exactly the runs
the determinism tests do not cover.  These rules make the hazards
structural: they flag the *pattern*, not the bug it eventually causes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import FileContext, Finding, Rule, register_rule

#: Wall-clock reads; referencing one (not just calling it) is flagged,
#: because passing ``time.monotonic`` as a default argument smuggles the
#: clock just as effectively as calling it.
_WALLCLOCK_ORIGINS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Constructors on the ``random`` / ``numpy.random`` modules that take an
#: explicit seed and therefore stay reproducible.
_SEEDED_RANDOM_OK = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
})

_ENV_ORIGINS = frozenset({"os.environ", "os.getenv", "os.environb"})


def _is_set_producing(node: ast.expr) -> bool:
    """Whether an expression syntactically yields a ``set``.

    Recognises set displays, set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, and binary set algebra (``|  & - ^``)
    where either operand is itself set-producing.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_producing(node.left) or _is_set_producing(node.right)
    return False


@register_rule
class WallClockRule(Rule):
    """No wall-clock reads inside ``src/repro``.

    Simulated time lives on the SoC (``soc.advance_time``); a real
    clock read in library code either skews an aggregate or hides a
    dependency on host speed.  Telemetry display is the one legitimate
    use — suppress those sites with a justification comment.
    """

    id = "det-wallclock"
    description = "wall-clock read (time.*/datetime.now) in library code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only flag the outermost match: for `time.monotonic()` the
            # walk also visits the inner Name("time"), which resolves to
            # just "time" and is not in the origin set.
            origin = ctx.imports.resolve(node)
            if origin in _WALLCLOCK_ORIGINS:
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"wall-clock read of {origin}",
                )


@register_rule
class UnseededRandomRule(Rule):
    """No unseeded global-RNG calls (``random.*``, ``numpy.random.*``).

    The global RNGs are process-wide mutable state: results depend on
    import order and on how many draws other code made first, which is
    exactly what varies between ``--jobs 1`` and ``--jobs 4``.  Seeded
    generator objects (``random.Random(seed)``,
    ``numpy.random.default_rng(seed)``) are the sanctioned alternative.
    """

    id = "det-unseeded-random"
    description = "module-level random.* / numpy.random.* call"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.imports.resolve(node.func)
            if origin is None:
                continue
            if origin in _SEEDED_RANDOM_OK:
                continue
            if origin.startswith("random.") or origin.startswith("numpy.random."):
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"call of global-RNG function {origin}",
                )


@register_rule
class EnvReadRule(Rule):
    """Environment reads only in the CLI layer.

    ``os.environ`` is per-host configuration; reading it deep in the
    library makes two machines disagree on the same spec.  The CLI may
    translate environment into explicit arguments — nothing else may.
    """

    id = "det-env-read"
    description = "os.environ / os.getenv read outside the CLI layer"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module_basename in self.config.env_allowed_basenames:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            origin = ctx.imports.resolve(node)
            if origin in _ENV_ORIGINS:
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"environment read via {origin}",
                )


@register_rule
class SetIterationRule(Rule):
    """Iteration over a set must go through ``sorted(...)``.

    Set iteration order depends on string hash randomisation
    (``PYTHONHASHSEED``), so a loop over ``set(a) | set(b)`` visits
    elements in a different order in every worker process.  Counting
    survives that; float accumulation, first-wins merges, and rendered
    output do not.  Wrapping in ``sorted`` is cheap and makes the order
    canonical (see ``fleet/reducers.py`` for the idiom).
    """

    id = "det-set-iter"
    description = "iteration over an unsorted set expression"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iter_expr: Optional[ast.expr] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, ast.comprehension):
                iter_expr = node.iter
            if iter_expr is not None and _is_set_producing(iter_expr):
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=iter_expr.lineno,
                    column=iter_expr.col_offset,
                    message="iteration over a set without sorted(...); "
                    "order varies with PYTHONHASHSEED",
                )
