"""Concurrency and process-boundary rules over the project call graph.

The streaming engine (PR 7) runs ``run_shard`` inside pool workers:
anything it reaches executes under fork/spawn, and anything a payload
class carries crosses the pickle boundary.  Three hazards survive the
per-file rule packs because they need the call graph to even see:

* ``conc-global-mutation`` — a worker-reachable function mutating
  module-level state.  Each worker mutates its *own copy*, the parent
  never sees it, and ``--jobs 1`` silently disagrees with ``--jobs 4``.
* ``conc-unpicklable-closure`` — a payload class smuggling a closure
  (directly or via a helper that returns one) into a field, which
  pickles fine in tests that never cross a process and explodes in the
  pool.
* ``flt-unordered-reduce`` — ``+=`` accumulation over an unordered
  iterable inside the accumulator fold paths; float addition is not
  associative, so hash/OS iteration order changes the bytes of the
  report.

All three share :func:`~repro.lint.callgraph.project_graph`, so a lint
run builds the graph once for the whole project-scope pack.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.lint.callgraph import (
    FunctionInfo,
    ProjectGraph,
    iter_return_values,
    local_function_defs,
    project_graph,
    resolve_method_roots,
)
from repro.lint.core import FileContext, Finding, Rule, register_rule
from repro.lint.rules_determinism import _is_set_producing, set_typed_locals

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
    "appendleft", "extendleft",
})

#: Filesystem enumerators that yield entries in OS order.
_FS_ORDER_ORIGINS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _module_level_names(ctx: FileContext) -> Set[str]:
    """Names bound by assignment at a module's top level."""
    names: Set[str] = set()
    for node in ctx.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for inner in ast.walk(target):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
    return names


def _chain_suffix(graph: ProjectGraph, parents: Dict[str, Optional[object]], qualname: str) -> str:
    chain = graph.call_chain(parents, qualname)  # type: ignore[arg-type]
    if len(chain) == 1:
        return ""
    return f" (worker path: {' -> '.join(chain)})"


@register_rule
class GlobalMutationRule(Rule):
    """No module-level state mutation anywhere a worker can reach.

    Workers are forked/spawned copies: a global a worker mutates is
    updated in the child and silently unchanged in the parent, so the
    mutation "works" serially and vanishes under ``--jobs N``.  State
    that must travel between processes belongs in the payload or the
    result, never in a module.
    """

    id = "conc-global-mutation"
    description = "worker-reachable function mutates module-level state"
    scope = "project"

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        graph = project_graph(contexts)
        roots = {
            fn.qualname
            for spec in self.config.worker_roots
            for fn in [graph.index.function_by_spec(spec)]
            if fn is not None
        }
        if not roots:
            return
        parents = graph.reachable_from(sorted(roots))
        module_names: Dict[str, Set[str]] = {}
        for qualname in sorted(parents):
            fn = graph.functions[qualname]
            if fn.ctx.path not in module_names:
                module_names[fn.ctx.path] = _module_level_names(fn.ctx)
            suffix = _chain_suffix(graph, parents, qualname)
            for finding in self._mutations(fn, module_names[fn.ctx.path]):
                yield Finding(
                    rule_id=self.id,
                    path=finding.path,
                    line=finding.line,
                    column=finding.column,
                    message=finding.message + suffix,
                )

    def _mutations(
        self, fn: FunctionInfo, module_names: Set[str]
    ) -> Iterator[Finding]:
        declared_global: Set[str] = set()
        locals_: Set[str] = {
            arg.arg
            for arg in (
                list(fn.node.args.posonlyargs)
                + list(fn.node.args.args)
                + list(fn.node.args.kwonlyargs)
            )
        }
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.For)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for inner in ast.walk(target):
                        if isinstance(inner, ast.Name):
                            locals_.add(inner.id)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = self._rebound_global(
                        target, declared_global, module_names, locals_
                    )
                    if name is not None:
                        yield Finding(
                            rule_id=self.id,
                            path=fn.ctx.path,
                            line=node.lineno,
                            column=node.col_offset,
                            message=f"{fn.qualname} writes module-level "
                            f"state {name!r} inside a worker",
                        )
            elif isinstance(node, ast.Call):
                name = self._mutating_call(node, module_names, locals_)
                if name is not None:
                    yield Finding(
                        rule_id=self.id,
                        path=fn.ctx.path,
                        line=node.lineno,
                        column=node.col_offset,
                        message=f"{fn.qualname} mutates module-level "
                        f"container {name!r} inside a worker",
                    )

    @staticmethod
    def _rebound_global(
        target: ast.expr,
        declared_global: Set[str],
        module_names: Set[str],
        locals_: Set[str],
    ) -> Optional[str]:
        if isinstance(target, ast.Name) and target.id in declared_global:
            return target.id
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            name = target.value.id
            if name in module_names and name not in locals_:
                return name
        return None

    @staticmethod
    def _mutating_call(
        node: ast.Call, module_names: Set[str], locals_: Set[str]
    ) -> Optional[str]:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
        ):
            name = func.value.id
            if name in module_names and name not in locals_:
                return name
        return None


@register_rule
class UnpicklableClosureRule(Rule):
    """Payload classes must not capture closures through helpers.

    The ``pck-payload`` trace already rejects ``Callable`` annotations
    on payload dataclasses; this rule extends the same contract to the
    dynamic path it cannot see — ``self.attr = make_handler()`` where
    ``make_handler`` returns a lambda or nested function.  The closure
    pickles only when nobody crosses a process, which is exactly the
    configuration CI runs least.
    """

    id = "conc-unpicklable-closure"
    description = "payload class stores a closure built by a helper"
    scope = "project"

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        graph = project_graph(contexts)
        returns_closure = self._returns_closure(graph)
        for spec in self.config.pickle_roots:
            cls = graph.index.class_by_spec(spec)
            if cls is None:
                continue
            for method_name in sorted(cls.methods):
                method = cls.methods[method_name]
                yield from self._closure_stores(
                    graph, method, returns_closure
                )

    @staticmethod
    def _returns_closure(graph: ProjectGraph) -> Set[str]:
        """Functions that (can) return a lambda or nested function."""
        returns_closure: Set[str] = set()
        returned_calls: Dict[str, List[str]] = {}
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            nested = local_function_defs(fn.node)
            calls: List[str] = []
            for value in iter_return_values(fn.node):
                if isinstance(value, ast.Lambda):
                    returns_closure.add(qualname)
                elif isinstance(value, ast.Name) and value.id in nested:
                    returns_closure.add(qualname)
                elif isinstance(value, ast.Call):
                    for edge in graph.callees(qualname):
                        if (
                            edge.line == value.lineno
                            and edge.column == value.col_offset
                        ):
                            calls.append(edge.callee)
                            break
            if calls:
                returned_calls[qualname] = calls
        changed = True
        while changed:
            changed = False
            for qualname in sorted(returned_calls):
                if qualname in returns_closure:
                    continue
                if any(c in returns_closure for c in returned_calls[qualname]):
                    returns_closure.add(qualname)
                    changed = True
        return returns_closure

    def _closure_stores(
        self,
        graph: ProjectGraph,
        method: FunctionInfo,
        returns_closure: Set[str],
    ) -> Iterator[Finding]:
        self_name = (
            method.node.args.args[0].arg if method.node.args.args else "self"
        )
        nested = local_function_defs(method.node)
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            stores_self_attr = any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == self_name
                for t in node.targets
            )
            if not stores_self_attr:
                continue
            value = node.value
            reason: Optional[str] = None
            if isinstance(value, ast.Lambda):
                reason = "a lambda"
            elif isinstance(value, ast.Name) and value.id in nested:
                reason = f"nested function {value.id!r}"
            elif isinstance(value, ast.Call):
                for edge in graph.callees(method.qualname):
                    if (
                        edge.line == value.lineno
                        and edge.column == value.col_offset
                        and edge.callee in returns_closure
                    ):
                        reason = f"closure returned by {edge.callee}"
                        break
            if reason is not None:
                yield Finding(
                    rule_id=self.id,
                    path=method.ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"{method.qualname} stores {reason} on a "
                    "payload instance; it cannot cross the process "
                    "boundary",
                )


@register_rule
class UnorderedReduceRule(Rule):
    """No ``+=`` accumulation over unordered iterables in fold paths.

    Float addition is order-dependent; sets iterate in hash order and
    filesystem enumerators in OS order.  Inside the accumulator fold
    methods (and everything they call) that combination makes the
    report's bytes a function of ``PYTHONHASHSEED`` and the disk.
    Integer counters survive reordering — suppress those sites with a
    justification if sorting is genuinely pointless.
    """

    id = "flt-unordered-reduce"
    description = "accumulation over an unordered iterable in a fold path"
    scope = "project"

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        graph = project_graph(contexts)
        roots = resolve_method_roots(
            graph.index, self.config.taint_sink_methods
        )
        if not roots:
            return
        parents = graph.reachable_from(sorted(roots))
        for qualname in sorted(parents):
            fn = graph.functions[qualname]
            yield from self._unordered_accumulations(fn)

    def _unordered_accumulations(self, fn: FunctionInfo) -> Iterator[Finding]:
        locals_ = set_typed_locals(fn.node)
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            what = self._unordered_iterable(node.iter, locals_, fn.ctx)
            if what is None:
                continue
            for stmt in ast.walk(node):
                if self._is_accumulation(stmt):
                    yield Finding(
                        rule_id=self.id,
                        path=fn.ctx.path,
                        line=stmt.lineno,
                        column=stmt.col_offset,
                        message=f"{fn.qualname} accumulates over {what}; "
                        "order varies across runs, so float sums drift",
                    )

    @staticmethod
    def _unordered_iterable(
        iter_expr: ast.expr, set_locals: Set[str], ctx: FileContext
    ) -> Optional[str]:
        if _is_set_producing(iter_expr):
            return "a set expression"
        if isinstance(iter_expr, ast.Name) and iter_expr.id in set_locals:
            return f"set-typed local {iter_expr.id!r}"
        if isinstance(iter_expr, ast.Call):
            origin = ctx.imports.resolve(iter_expr.func)
            if origin in _FS_ORDER_ORIGINS:
                return f"OS-ordered listing {origin}(...)"
            if (
                isinstance(iter_expr.func, ast.Attribute)
                and iter_expr.func.attr in _FS_ORDER_METHODS
            ):
                return f"OS-ordered listing .{iter_expr.func.attr}(...)"
        return None

    @staticmethod
    def _is_accumulation(node: ast.AST) -> bool:
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            return True
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.BinOp)
            and isinstance(node.value.op, ast.Add)
        ):
            target = node.targets[0].id
            return any(
                isinstance(inner, ast.Name) and inner.id == target
                for inner in ast.walk(node.value)
            )
        return False
