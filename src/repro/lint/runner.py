"""Driving the rule packs over a source tree.

:func:`lint_paths` is the single entry point the CLI and the tests
share: collect ``.py`` files (sorted, so reports are byte-stable),
parse each once, run every selected file-scope rule per file and every
project-scope rule once, apply suppression comments, then subtract the
optional baseline.  Parse failures become findings (rule
``parse-error``) rather than crashes — a file the linter cannot read
is a finding in itself, and CI should say so with a location.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BaselineError, LintError
from repro.lint.core import (
    FileContext,
    Finding,
    LintConfig,
    RULE_REGISTRY,
    Rule,
)

PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Findings silenced by ``# lint: ignore`` comments.
    suppressed: int = 0
    #: Findings present in, and absorbed by, the ``--baseline`` file.
    baselined: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run should exit 0."""
        return not self.findings


def collect_files(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """``(path, rel_path)`` for every ``.py`` under ``paths``, sorted.

    ``rel_path`` is posix-style and relative to the scanned root the
    file came from — the identity rules use for layout checks ("is
    this ``games/registry.py``"), independent of where the scan root
    itself lives.
    """
    out: List[Tuple[str, str]] = []
    for root in paths:
        if os.path.isfile(root):
            if root.endswith(".py"):
                out.append((root, os.path.basename(root)))
            continue
        if not os.path.isdir(root):
            raise LintError(f"no such file or directory: {root}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                name for name in dirnames if name != "__pycache__"
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                out.append((full, rel))
    return sorted(out)


def select_rules(
    config: LintConfig, rule_ids: Optional[Iterable[str]] = None
) -> List[Rule]:
    """Instantiate the requested rules (all registered ones by default)."""
    if rule_ids is None:
        chosen = sorted(RULE_REGISTRY)
    else:
        chosen = sorted(set(rule_ids))
        unknown = [rule_id for rule_id in chosen if rule_id not in RULE_REGISTRY]
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULE_REGISTRY))}"
            )
    return [RULE_REGISTRY[rule_id](config) for rule_id in chosen]


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rule_ids: Optional[Iterable[str]] = None,
    baseline: Optional[Dict[str, int]] = None,
) -> LintResult:
    """Run the rule pack over ``paths`` and return the report."""
    config = config or LintConfig()
    rules = select_rules(config, rule_ids)
    result = LintResult()
    contexts: List[FileContext] = []
    raw: List[Finding] = []
    for path, rel_path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            ctx = FileContext.parse(path, source, rel_path)
        except LintError as exc:
            raw.append(Finding(
                rule_id=PARSE_ERROR_RULE,
                path=path,
                line=1,
                column=0,
                message=str(exc),
            ))
            continue
        contexts.append(ctx)
    result.files_checked = len(contexts)
    for ctx in contexts:
        for rule in rules:
            if rule.scope == "file":
                raw.extend(rule.check(ctx))
    for rule in rules:
        if rule.scope == "project":
            raw.extend(rule.check_project(contexts))
    by_path = {ctx.path: ctx for ctx in contexts}
    visible: List[Finding] = []
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.suppressions.covers(
            finding.rule_id, finding.line
        ):
            result.suppressed += 1
            continue
        visible.append(finding)
    if baseline:
        remaining = dict(baseline)
        unbaselined = []
        for finding in visible:
            if remaining.get(finding.baseline_key, 0) > 0:
                remaining[finding.baseline_key] -= 1
                result.baselined += 1
            else:
                unbaselined.append(finding)
        visible = unbaselined
    result.findings = sorted(visible, key=Finding.sort_key)
    return result


# -- baseline files --------------------------------------------------------


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline file into a ``key -> allowed count`` map."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("version") != 1:
        raise BaselineError(
            f"baseline file {path} is not a version-1 lint baseline"
        )
    counts = document.get("findings")
    if not isinstance(counts, dict) or not all(
        isinstance(key, str) and isinstance(value, int)
        for key, value in counts.items()
    ):
        raise BaselineError(
            f"baseline file {path}: 'findings' must map keys to counts"
        )
    return dict(counts)


def write_baseline(path: str, result: LintResult) -> int:
    """Persist the run's findings as the accepted baseline.

    Returns the number of distinct baseline keys written.  Keys omit
    line numbers (see :attr:`Finding.baseline_key`) so edits elsewhere
    in a file do not invalidate accepted findings.
    """
    counts: Dict[str, int] = {}
    for finding in result.findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    document = {"version": 1, "findings": dict(sorted(counts.items()))}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(counts)
