"""Driving the rule packs over a source tree.

:func:`lint_paths` is the single entry point the CLI and the tests
share: collect ``.py`` files (sorted, so reports are byte-stable),
parse each once, run every selected file-scope rule per file and every
project-scope rule once, apply suppression comments, then subtract the
optional baseline.  Parse failures become findings (rule
``parse-error``) rather than crashes — a file the linter cannot read
is a finding in itself, and CI should say so with a location.

Two optional layers wrap that core:

* an :class:`~repro.lint.cache.AnalysisCache` replays per-file and
  project outcomes keyed by content hash, so a warm run parses only
  what changed (nothing, usually);
* hygiene accounting — suppression comments that silenced nothing and
  baseline entries no finding consumed are reported on the result, so
  ``--baseline`` files and ``# lint: ignore`` comments cannot quietly
  rot as the code they excused is fixed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BaselineError, LintError
from repro.lint.cache import (
    AnalysisCache,
    FileOutcome,
    ProjectOutcome,
    SuppressionEntry,
    content_hash,
    engine_fingerprint,
    policy_fingerprint,
)
from repro.lint.core import (
    FileContext,
    Finding,
    LintConfig,
    RULE_REGISTRY,
    Rule,
)

PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Findings silenced by ``lint: ignore`` comments.
    suppressed: int = 0
    #: Findings present in, and absorbed by, the ``--baseline`` file.
    baselined: int = 0
    #: Baseline keys whose allowance was not (fully) consumed — the
    #: finding they excused no longer exists.
    stale_baseline: List[str] = field(default_factory=list)
    #: Baseline key -> count actually consumed this run (what a
    #: ``--prune`` rewrite keeps).
    baseline_consumed: Dict[str, int] = field(default_factory=dict)
    #: Suppression comments that silenced nothing: ``(path, line,
    #: rule)`` with ``line=None`` for ``ignore-file`` entries.  Only
    #: populated when every rule ran (a partial ``--rules`` run cannot
    #: tell stale from not-selected).
    unused_suppressions: List[SuppressionEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the run should exit 0."""
        return not self.findings


def collect_files(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """``(path, rel_path)`` for every ``.py`` under ``paths``, sorted.

    ``rel_path`` is posix-style and relative to the scanned root the
    file came from — the identity rules use for layout checks ("is
    this ``games/registry.py``"), independent of where the scan root
    itself lives.
    """
    out: List[Tuple[str, str]] = []
    for root in paths:
        if os.path.isfile(root):
            if root.endswith(".py"):
                out.append((root, os.path.basename(root)))
            continue
        if not os.path.isdir(root):
            raise LintError(f"no such file or directory: {root}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                name for name in dirnames if name != "__pycache__"
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                out.append((full, rel))
    return sorted(out)


def select_rules(
    config: LintConfig, rule_ids: Optional[Iterable[str]] = None
) -> List[Rule]:
    """Instantiate the requested rules (all registered ones by default)."""
    if rule_ids is None:
        chosen = sorted(RULE_REGISTRY)
    else:
        chosen = sorted(set(rule_ids))
        unknown = [rule_id for rule_id in chosen if rule_id not in RULE_REGISTRY]
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULE_REGISTRY))}"
            )
    return [RULE_REGISTRY[rule_id](config) for rule_id in chosen]


def _entry_sort_key(entry: SuppressionEntry) -> Tuple[str, int, str]:
    path, line, rule = entry
    return (path, -1 if line is None else line, rule)


def _apply_suppressions(
    raw: Sequence[Finding], by_path: Dict[str, FileContext]
) -> Tuple[List[Finding], int, List[SuppressionEntry]]:
    """Split findings into (visible, silenced count, entries used)."""
    visible: List[Finding] = []
    used: List[SuppressionEntry] = []
    silenced = 0
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None:
            entries = ctx.suppressions.covering_entries(
                finding.rule_id, finding.line
            )
            if entries:
                silenced += 1
                used.extend(
                    (finding.path, line, rule) for line, rule in entries
                )
                continue
        visible.append(finding)
    return visible, silenced, sorted(set(used), key=_entry_sort_key)


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rule_ids: Optional[Iterable[str]] = None,
    baseline: Optional[Dict[str, int]] = None,
    cache: Optional[AnalysisCache] = None,
) -> LintResult:
    """Run the rule pack over ``paths`` and return the report."""
    config = config or LintConfig()
    selected = sorted(set(rule_ids)) if rule_ids is not None else None
    rules = select_rules(config, selected)
    file_rules = [rule for rule in rules if rule.scope == "file"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    result = LintResult()

    engine = policy = ""
    cache_valid = False
    if cache is not None:
        engine = engine_fingerprint()
        policy = policy_fingerprint(config, selected)
        cache_valid = cache.matches(engine, policy)

    ordered: List[str] = []
    rel_paths: Dict[str, str] = {}
    sources: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    for path, rel_path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        ordered.append(path)
        rel_paths[path] = rel_path
        sources[path] = source
        hashes[path] = content_hash(source)

    # Parse lazily and at most once: a fully warm cache never parses.
    parsed: Dict[str, Optional[FileContext]] = {}
    parse_errors: Dict[str, str] = {}

    def get_context(path: str) -> Optional[FileContext]:
        if path not in parsed:
            try:
                parsed[path] = FileContext.parse(
                    path, sources[path], rel_paths[path]
                )
            except LintError as exc:
                parsed[path] = None
                parse_errors[path] = str(exc)
        return parsed[path]

    # File-scope layer: replay cached outcomes, recompute the rest.
    outcomes: Dict[str, FileOutcome] = {}
    for path in ordered:
        cached = (
            cache.lookup_file(path, hashes[path])
            if cache is not None and cache_valid
            else None
        )
        if cached is not None:
            outcomes[path] = cached
            continue
        ctx = get_context(path)
        if ctx is None:
            message = parse_errors[path]
            outcomes[path] = FileOutcome(
                file_hash=hashes[path],
                findings=[Finding(
                    rule_id=PARSE_ERROR_RULE,
                    path=path,
                    line=1,
                    column=0,
                    message=message,
                )],
            )
            continue
        raw = [f for rule in file_rules for f in rule.check(ctx)]
        visible, silenced, used = _apply_suppressions(raw, {path: ctx})
        outcomes[path] = FileOutcome(
            file_hash=hashes[path],
            findings=visible,
            suppressed=silenced,
            used=used,
            declared=[
                (path, line, rule)
                for line, rule in ctx.suppressions.declared_entries()
            ],
        )

    # Project-scope layer: one outcome keyed on every input hash.
    inputs = dict(hashes)
    project = (
        cache.lookup_project(inputs)
        if cache is not None and cache_valid
        else None
    )
    if project is None:
        contexts = [
            ctx
            for path in ordered
            for ctx in [get_context(path)]
            if ctx is not None
        ]
        raw = [
            f for rule in project_rules for f in rule.check_project(contexts)
        ]
        by_path = {ctx.path: ctx for ctx in contexts}
        visible, silenced, used = _apply_suppressions(raw, by_path)
        project = ProjectOutcome(
            inputs=inputs, findings=visible, suppressed=silenced, used=used
        )

    if cache is not None:
        cache.save(engine, policy, outcomes, project)

    # Assemble the result from both layers.
    result.files_checked = sum(
        1
        for path in ordered
        if not any(
            f.rule_id == PARSE_ERROR_RULE for f in outcomes[path].findings
        )
    )
    visible = [
        finding for path in ordered for finding in outcomes[path].findings
    ]
    visible.extend(project.findings)
    result.suppressed = (
        sum(outcomes[path].suppressed for path in ordered)
        + project.suppressed
    )
    if selected is None:
        declared = {
            entry for path in ordered for entry in outcomes[path].declared
        }
        used_entries = {
            entry for path in ordered for entry in outcomes[path].used
        }
        used_entries.update(project.used)
        result.unused_suppressions = sorted(
            declared - used_entries, key=_entry_sort_key
        )
    if baseline:
        remaining = dict(baseline)
        consumed: Dict[str, int] = {}
        unbaselined: List[Finding] = []
        for finding in sorted(visible, key=Finding.sort_key):
            key = finding.baseline_key
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                consumed[key] = consumed.get(key, 0) + 1
                result.baselined += 1
            else:
                unbaselined.append(finding)
        visible = unbaselined
        result.stale_baseline = sorted(
            key for key, count in remaining.items() if count > 0
        )
        result.baseline_consumed = dict(sorted(consumed.items()))
    result.findings = sorted(visible, key=Finding.sort_key)
    return result


# -- baseline files --------------------------------------------------------


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline file into a ``key -> allowed count`` map."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("version") != 1:
        raise BaselineError(
            f"baseline file {path} is not a version-1 lint baseline"
        )
    counts = document.get("findings")
    if not isinstance(counts, dict) or not all(
        isinstance(key, str) and isinstance(value, int)
        for key, value in counts.items()
    ):
        raise BaselineError(
            f"baseline file {path}: 'findings' must map keys to counts"
        )
    return dict(counts)


def write_baseline(path: str, result: LintResult) -> int:
    """Persist the run's findings as the accepted baseline.

    Returns the number of distinct baseline keys written.  Keys omit
    line numbers (see :attr:`Finding.baseline_key`) so edits elsewhere
    in a file do not invalidate accepted findings.
    """
    counts: Dict[str, int] = {}
    for finding in result.findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    document = {"version": 1, "findings": dict(sorted(counts.items()))}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(counts)


def write_pruned_baseline(path: str, result: LintResult) -> int:
    """Rewrite ``path`` keeping only the entries this run consumed.

    The ``--prune`` half of baseline hygiene: stale allowances (the
    excused finding was fixed) drop out; everything a finding still
    matched survives with its consumed count.  Returns the number of
    keys written.
    """
    counts = {
        key: count
        for key, count in sorted(result.baseline_consumed.items())
        if count > 0
    }
    document = {"version": 1, "findings": counts}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(counts)
