"""`repro.lint`: the project's own static-analysis pass.

An AST-walking linter that machine-checks the invariants the fleet
engine and the SNIP accuracy contract rely on but ordinary tests only
probe: determinism (no ambient clocks/RNG/env/set-order), pickling
safety of worker payloads, unit-suffix hygiene in energy arithmetic,
and game/scheme registration contracts.  Run it as ``repro-snip lint``
or through :func:`lint_paths`; ``tests/lint/test_self_clean.py`` keeps
the shipped tree at zero findings.

Importing this package registers every rule pack (registration happens
at class-definition time via ``@register_rule``).
"""

from repro.lint.core import (
    ALL_RULES,
    FileContext,
    Finding,
    LintConfig,
    RULE_REGISTRY,
    Rule,
    Suppressions,
    iter_rule_ids,
    register_rule,
)
from repro.lint import rules_contracts  # noqa: F401  (registers rules)
from repro.lint import rules_determinism  # noqa: F401  (registers rules)
from repro.lint import rules_pickling  # noqa: F401  (registers rules)
from repro.lint import rules_units  # noqa: F401  (registers rules)
from repro.lint import rules_concurrency  # noqa: F401  (registers rules)
from repro.lint import taint  # noqa: F401  (registers rules)
from repro.lint.cache import AnalysisCache
from repro.lint.callgraph import ProjectGraph, ProjectIndex, project_graph
from repro.lint.reporting import render_json, render_sarif, render_text
from repro.lint.runner import (
    LintResult,
    collect_files,
    lint_paths,
    load_baseline,
    select_rules,
    write_baseline,
    write_pruned_baseline,
)

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectGraph",
    "ProjectIndex",
    "RULE_REGISTRY",
    "Rule",
    "Suppressions",
    "collect_files",
    "iter_rule_ids",
    "lint_paths",
    "load_baseline",
    "project_graph",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
    "write_baseline",
    "write_pruned_baseline",
]
