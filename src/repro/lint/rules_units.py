"""Units-hygiene rule: additive arithmetic must not mix unit suffixes.

``repro.units`` keeps raw quantities as plain floats, so the type
system cannot catch ``battery_mah + draw_mw``.  The codebase's naming
convention — a trailing ``_mj`` / ``_mw`` / ``_mah`` / ``_s`` on
identifiers — carries the unit instead, and this rule enforces the one
algebraic fact the convention supports: adding, subtracting, or
comparing two identifiers with *different* known unit suffixes is
almost certainly a physics bug.  Multiplication and division are
untouched (they legitimately build new units, e.g. watts × seconds).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.core import FileContext, Finding, Rule, register_rule


def _suffix_unit(identifier: str, suffixes) -> Optional[Tuple[str, str]]:
    """``(suffix, canonical_unit)`` of an identifier, or ``None``."""
    _, _, tail = identifier.rpartition("_")
    if tail and "_" in identifier:
        unit = suffixes.get(tail)
        if unit is not None:
            return tail, unit
    return None


def _operand_unit(node: ast.expr, suffixes) -> Optional[Tuple[str, str, str]]:
    """``(identifier, suffix, unit)`` when an operand names a quantity.

    Only bare names and attribute accesses participate — a call result
    or subscript has no inspectable identifier, so it never votes.
    """
    if isinstance(node, ast.Name):
        identifier = node.id
    elif isinstance(node, ast.Attribute):
        identifier = node.attr
    elif isinstance(node, ast.UnaryOp):
        return _operand_unit(node.operand, suffixes)
    else:
        return None
    found = _suffix_unit(identifier, suffixes)
    if found is None:
        return None
    return (identifier, found[0], found[1])


@register_rule
class MixedUnitsRule(Rule):
    """Flag ``a_mj + b_mw``-style additive mixing of unit suffixes."""

    id = "unt-mixed-units"
    description = "additive arithmetic mixing different unit suffixes"

    def _pairwise(
        self, operands: List[ast.expr], anchor: ast.expr, verb: str, ctx: FileContext
    ) -> Iterator[Finding]:
        units = [
            found
            for found in (
                _operand_unit(op, self.config.unit_suffixes) for op in operands
            )
            if found is not None
        ]
        for index in range(1, len(units)):
            left, right = units[index - 1], units[index]
            if left[2] != right[2]:
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=anchor.lineno,
                    column=anchor.col_offset,
                    message=f"{verb} mixes units: {left[0]} is in "
                    f"{left[2]}s but {right[0]} is in {right[2]}s",
                )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._pairwise(
                    [node.left, node.right], node, "addition", ctx
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._pairwise(
                    [node.target, node.value], node, "augmented addition", ctx
                )
            elif isinstance(node, ast.Compare) and all(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in node.ops
            ):
                yield from self._pairwise(
                    [node.left] + list(node.comparators), node, "comparison", ctx
                )
