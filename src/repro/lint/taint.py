"""Interprocedural nondeterminism-taint pass.

The per-file determinism rules (``rules_determinism.py``) see one
module at a time, so a helper that returns ``time.time()`` stops being
a finding the moment the read moves behind a function call.  This pass
closes that hole over the whole program: it marks **sources** of
nondeterminism inside function bodies, propagates them along the
project call graph, and reports every source a **sink** — code that
feeds the byte-identical artefacts (shard payloads, accumulator folds,
canonical JSON) — can actually reach.

Kinds and their finding ids (the registered rule id is ``det-taint``):

=================  ====================================================
``det-taint-clock``   wall-clock reads (``time.*``, ``datetime.now``)
``det-taint-random``  unseeded global-RNG calls
``det-taint-env``     ``os.environ`` / ``os.getenv`` reads
``det-taint-order``   iteration over sets — literal, set-typed local,
                      or the return value of a set-returning function
``det-taint-id``      ``id(...)`` and object-identity ``hash(...)``
=================  ====================================================

Findings anchor at the **source** site (that is where the fix goes and
where a ``# lint: ignore[det-taint-*]`` must sit), and the message
carries the full sink-to-source call chain so the reader does not have
to rediscover why a deep helper matters.  Messages are line-free, so
baseline keys survive unrelated edits.

Dead code is exonerated structurally: a source in a function no sink
reaches is simply never visited.  That asymmetry — sources are cheap
to mark, reachability decides — is what keeps the pass quiet on
utility code while staying loud on the reduction paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import (
    FunctionInfo,
    ProjectGraph,
    iter_return_values,
    project_graph,
    resolve_method_roots,
)
from repro.lint.core import FileContext, Finding, Rule, register_rule
from repro.lint.rules_determinism import (
    _ENV_ORIGINS,
    _SEEDED_RANDOM_OK,
    _WALLCLOCK_ORIGINS,
    _is_set_producing,
    set_typed_locals,
)

#: kind -> finding rule id.
TAINT_KINDS: Dict[str, str] = {
    "clock": "det-taint-clock",
    "random": "det-taint-random",
    "env": "det-taint-env",
    "order": "det-taint-order",
    "id": "det-taint-id",
}


@dataclass(frozen=True)
class SourceSite:
    """One nondeterminism source found in a function body."""

    kind: str
    line: int
    column: int
    detail: str


def _returns_set_functions(graph: ProjectGraph) -> Set[str]:
    """Qualnames of functions that (can) return a set.

    Fixpoint over three clauses: a return of a set-producing
    expression, a return of a set-typed local, or a return of a call
    whose callee is itself set-returning.  The last clause is what
    carries taint through return values across modules.
    """
    returns_set: Set[str] = set()
    # Pre-resolve each function's returned call expressions once.
    returned_calls: Dict[str, List[str]] = {}
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        locals_ = set_typed_locals(fn.node)
        calls: List[str] = []
        for value in iter_return_values(fn.node):
            if _is_set_producing(value):
                returns_set.add(qualname)
            elif isinstance(value, ast.Name) and value.id in locals_:
                returns_set.add(qualname)
            elif isinstance(value, ast.Call):
                callee = _edge_at(graph, qualname, value)
                if callee is not None:
                    calls.append(callee)
        if calls:
            returned_calls[qualname] = calls
    changed = True
    while changed:
        changed = False
        for qualname in sorted(returned_calls):
            if qualname in returns_set:
                continue
            if any(callee in returns_set for callee in returned_calls[qualname]):
                returns_set.add(qualname)
                changed = True
    return returns_set


def _edge_at(graph: ProjectGraph, caller: str, call: ast.Call) -> Optional[str]:
    """The resolved callee of one specific call site, if the graph has it."""
    for edge in graph.callees(caller):
        if edge.line == call.lineno and edge.column == call.col_offset:
            return edge.callee
    return None


def _function_sources(
    fn: FunctionInfo,
    graph: ProjectGraph,
    returns_set: Set[str],
) -> List[SourceSite]:
    """Every direct nondeterminism source in ``fn``'s body."""
    sites: List[SourceSite] = []
    imports = fn.ctx.imports

    def call_returns_set(call: ast.Call) -> bool:
        callee = _edge_at(graph, fn.qualname, call)
        return callee is not None and callee in returns_set

    locals_ = set_typed_locals(fn.node, call_returns_set=call_returns_set)
    in_hash_dunder = fn.name == "__hash__"
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Attribute, ast.Name)):
            origin = imports.resolve(node)
            if origin in _WALLCLOCK_ORIGINS:
                sites.append(SourceSite(
                    "clock", node.lineno, node.col_offset,
                    f"wall-clock read of {origin}",
                ))
            elif origin in _ENV_ORIGINS:
                sites.append(SourceSite(
                    "env", node.lineno, node.col_offset,
                    f"environment read via {origin}",
                ))
        if isinstance(node, ast.Call):
            origin = imports.resolve(node.func)
            if (
                origin is not None
                and origin not in _SEEDED_RANDOM_OK
                and (
                    origin.startswith("random.")
                    or origin.startswith("numpy.random.")
                )
            ):
                sites.append(SourceSite(
                    "random", node.lineno, node.col_offset,
                    f"unseeded global-RNG call {origin}",
                ))
            if isinstance(node.func, ast.Name):
                if node.func.id == "id" and node.args:
                    sites.append(SourceSite(
                        "id", node.lineno, node.col_offset,
                        "object identity via id(...)",
                    ))
                elif (
                    node.func.id == "hash"
                    and node.args
                    and not in_hash_dunder
                ):
                    sites.append(SourceSite(
                        "id", node.lineno, node.col_offset,
                        "salted/object hash via hash(...)",
                    ))
        iter_expr: Optional[ast.expr] = None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_expr = node.iter
        elif isinstance(node, ast.comprehension):
            iter_expr = node.iter
        if iter_expr is not None:
            ordered = False
            what = ""
            if _is_set_producing(iter_expr):
                ordered, what = True, "a set expression"
            elif isinstance(iter_expr, ast.Name) and iter_expr.id in locals_:
                ordered, what = True, f"set-typed local {iter_expr.id!r}"
            elif isinstance(iter_expr, ast.Call) and call_returns_set(iter_expr):
                callee = _edge_at(graph, fn.qualname, iter_expr)
                ordered, what = True, f"set returned by {callee}"
            if ordered:
                sites.append(SourceSite(
                    "order", iter_expr.lineno, iter_expr.col_offset,
                    f"unordered iteration over {what}",
                ))
    sites.sort(key=lambda s: (s.line, s.column, s.kind, s.detail))
    return sites


@register_rule
class DeterminismTaintRule(Rule):
    """Whole-program taint: nondeterminism sources reaching fleet sinks.

    Sinks come from :class:`~repro.lint.core.LintConfig`:

    * ``taint_sink_functions`` — canonical-serialisation bodies
      (``FleetReport.to_dict``/``to_json``, registry state);
    * ``taint_sink_classes`` — payload classes crossing the process
      boundary; any function constructing one is a sink;
    * ``taint_sink_methods`` — accumulator fold methods, including
      every subclass override.
    """

    id = "det-taint"
    description = (
        "nondeterminism source reaching a determinism sink "
        "through the call graph"
    )
    scope = "project"
    emits = tuple(TAINT_KINDS[kind] for kind in sorted(TAINT_KINDS))

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        graph = project_graph(contexts)
        sink_roots = self._sink_roots(graph)
        if not sink_roots:
            return
        parents = graph.reachable_from(sorted(sink_roots))
        returns_set = _returns_set_functions(graph)
        best: Dict[Tuple[str, str, int, int], Tuple[List[str], SourceSite, FunctionInfo]] = {}
        for qualname in sorted(parents):
            fn = graph.functions[qualname]
            sources = _function_sources(fn, graph, returns_set)
            if not sources:
                continue
            chain = graph.call_chain(parents, qualname)
            for site in sources:
                key = (site.kind, fn.ctx.path, site.line, site.column)
                prior = best.get(key)
                if prior is None or len(chain) < len(prior[0]):
                    best[key] = (chain, site, fn)
        for key in sorted(best):
            chain, site, fn = best[key]
            sink = chain[0]
            path = " -> ".join(chain)
            suffix = "" if len(chain) == 1 else f" via {path}"
            yield Finding(
                rule_id=TAINT_KINDS[site.kind],
                path=fn.ctx.path,
                line=site.line,
                column=site.column,
                message=(
                    f"{site.detail} reaches determinism sink {sink}{suffix}"
                ),
            )

    def _sink_roots(self, graph: ProjectGraph) -> Set[str]:
        """Resolve the configured sink specs against this project."""
        roots: Set[str] = set()
        index = graph.index
        for spec in self.config.taint_sink_functions:
            fn = index.function_by_spec(spec)
            if fn is not None:
                roots.add(fn.qualname)
        roots |= resolve_method_roots(index, self.config.taint_sink_methods)
        for spec in self.config.taint_sink_classes:
            cls = index.class_by_spec(spec)
            if cls is None:
                continue
            for caller in sorted(graph.instantiations):
                for inst in graph.instantiations[caller]:
                    if inst.class_qualname == cls.qualname:
                        roots.add(caller)
        return roots
