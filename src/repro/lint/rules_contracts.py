"""Scheme/game contract-conformance rules.

Two registration contracts hold the experiment drivers together:

* every :class:`~repro.games.base.Game` subclass in ``games/`` must be
  listed in ``games/registry.py`` — an unregistered game silently
  vanishes from every figure sweep and from the CLI catalogue;
* every :class:`~repro.schemes.base.Scheme` subclass must override the
  base class's full abstract surface (the methods whose bodies raise
  ``NotImplementedError``) and pick a concrete ``name`` — a missing
  override only explodes when a sweep finally instantiates it.

Both are cross-file properties, so these rules run at project scope.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import FileContext, Finding, Rule, register_rule


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _in_package(ctx: FileContext, package: str) -> bool:
    """Whether a file lives in ``<package>/`` of the scanned tree."""
    rel = ctx.rel_path.removeprefix("repro/")
    return rel.startswith(f"{package}/")


@register_rule
class GameRegistryRule(Rule):
    """Every ``Game`` subclass in ``games/`` must appear in the registry."""

    id = "con-game-registry"
    description = "Game subclass not registered in games/registry.py"
    scope = "project"

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        registry_ctx = None
        for ctx in contexts:
            if ctx.rel_path.removeprefix("repro/") == "games/registry.py":
                registry_ctx = ctx
                break
        if registry_ctx is None:
            # Nothing to check against — partial scans (one module, a
            # fixture snippet) should not drown in missing-registry noise.
            return
        registered = {
            node.id
            for node in ast.walk(registry_ctx.tree)
            if isinstance(node, ast.Name)
        } | set(registry_ctx.imports.members)
        for ctx in sorted(contexts, key=lambda c: c.rel_path):
            if not _in_package(ctx, "games"):
                continue
            basename = ctx.module_basename
            if basename in ("registry.py", "base.py", "__init__.py"):
                continue
            for node in ctx.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                if "Game" not in _base_names(node):
                    continue
                if node.name not in registered:
                    yield Finding(
                        rule_id=self.id,
                        path=ctx.path,
                        line=node.lineno,
                        column=node.col_offset,
                        message=f"game class {node.name} is not registered "
                        f"in games/registry.py; it will be missing from "
                        f"every catalogue sweep",
                    )


@register_rule
class SchemeContractRule(Rule):
    """Scheme subclasses must override the whole abstract surface."""

    id = "con-scheme-contract"
    description = "Scheme subclass missing abstract overrides or a name"
    scope = "project"

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        base_ctx = None
        for ctx in contexts:
            if ctx.rel_path.removeprefix("repro/") == "schemes/base.py":
                base_ctx = ctx
                break
        if base_ctx is None:
            return
        base_class = self._find_class(base_ctx, "Scheme")
        if base_class is None:
            return
        abstract = self._abstract_surface(base_class)
        classes = self._package_classes(contexts, "schemes")
        for class_name in sorted(classes):
            ctx, node = classes[class_name]
            if ctx is base_ctx or not self._derives_from_scheme(
                class_name, classes
            ):
                continue
            provided, names_name = self._chain_surface(class_name, classes)
            for method in sorted(abstract - provided):
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"scheme {class_name} does not override "
                    f"abstract method {method}() from schemes/base.py",
                )
            if not names_name:
                yield Finding(
                    rule_id=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=f"scheme {class_name} never sets the `name` "
                    f"class attribute; reports would label it 'abstract'",
                )

    @staticmethod
    def _find_class(ctx: FileContext, name: str) -> Optional[ast.ClassDef]:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None

    @staticmethod
    def _abstract_surface(base_class: ast.ClassDef) -> Set[str]:
        """Methods of the base whose bodies raise ``NotImplementedError``."""
        surface = set()
        for stmt in base_class.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(stmt):
                if not isinstance(inner, ast.Raise) or inner.exc is None:
                    continue
                exc = inner.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                if isinstance(exc, ast.Name) and exc.id == "NotImplementedError":
                    surface.add(stmt.name)
        return surface

    @staticmethod
    def _package_classes(
        contexts: Sequence[FileContext], package: str
    ) -> Dict[str, Tuple[FileContext, ast.ClassDef]]:
        classes: Dict[str, Tuple[FileContext, ast.ClassDef]] = {}
        for ctx in sorted(contexts, key=lambda c: c.rel_path):
            if not _in_package(ctx, package):
                continue
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, (ctx, node))
        return classes

    @classmethod
    def _derives_from_scheme(
        cls,
        class_name: str,
        classes: Dict[str, Tuple[FileContext, ast.ClassDef]],
        _seen: Optional[Set[str]] = None,
    ) -> bool:
        seen = _seen or set()
        if class_name in seen:
            return False
        seen.add(class_name)
        _, node = classes[class_name]
        for base in _base_names(node):
            if base == "Scheme":
                return True
            if base in classes and cls._derives_from_scheme(base, classes, seen):
                return True
        return False

    @classmethod
    def _chain_surface(
        cls,
        class_name: str,
        classes: Dict[str, Tuple[FileContext, ast.ClassDef]],
    ) -> Tuple[Set[str], bool]:
        """(methods defined, `name` set) along the chain below Scheme."""
        provided: Set[str] = set()
        has_name = False
        stack, seen = [class_name], set()
        while stack:
            current = stack.pop()
            if current in seen or current == "Scheme" or current not in classes:
                continue
            seen.add(current)
            _, node = classes[current]
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    provided.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and target.id == "name":
                            has_name = True
                elif (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "name"
                    and stmt.value is not None
                ):
                    has_name = True
            stack.extend(_base_names(node))
        return provided, has_name
