"""Analysis framework for the :mod:`repro.lint` rule packs.

The linter exists because the fleet engine's byte-identical-report
contract (see ``docs/INTERNALS.md`` §Determinism contract) is too easy
to break silently: one ``time.time()`` in an aggregation path or one
iteration over an unsorted ``set`` survives every test that happens not
to exercise it.  This module supplies the machinery the rules share:

* :class:`Finding` — one diagnostic, with a stable baseline key;
* :class:`Rule` — the per-file / whole-project rule interface plus the
  ``@register_rule`` registry;
* :class:`FileContext` — a parsed source file (AST, lines, import map,
  suppression table) handed to every rule;
* suppression parsing for ``# lint: ignore[rule-id]`` (same line) and
  ``# lint: ignore-file[rule-id]`` (whole file).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.errors import LintError

#: Matches the ``lint: ignore`` / ``lint: ignore[a, b]`` comment forms
#: and the file-scoped ``lint: ignore-file[a]`` variant (each written
#: after a ``#`` in real code — spelling them out here would register
#: this very comment as a suppression).  The bracket list is optional
#: for the inline form (bare ``ignore`` silences every rule on the
#: line); ``ignore-file`` requires explicit rule ids so a whole file
#: can never be silenced wholesale by accident.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(?P<scope>ignore-file|ignore)\s*(?:\[(?P<rules>[^\]]*)\])?"
)

#: Sentinel rule-id set meaning "every rule" for a bare inline ignore.
ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str

    @property
    def location(self) -> str:
        """Clickable ``file:line`` form used by the text reporter."""
        return f"{self.path}:{self.line}"

    @property
    def baseline_key(self) -> str:
        """Line-number-free identity used by ``--baseline`` files.

        Keyed on ``(path, rule, message)`` rather than the line number so
        unrelated edits above a baselined finding do not un-baseline it.
        """
        return f"{self.path}::{self.rule_id}::{self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Canonical report order: path, then position, then rule."""
        return (self.path, self.line, self.column, self.rule_id)


class Suppressions:
    """Per-file suppression table parsed from magic comments.

    Tokenises rather than scanning raw lines so the magic syntax only
    counts inside real ``#`` comments — a string literal that happens
    to contain the marker (this module has one) must not suppress.
    """

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()
        for lineno, text in self._comments(source):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            raw = match.group("rules")
            rule_ids = {
                chunk.strip() for chunk in (raw or "").split(",") if chunk.strip()
            }
            if match.group("scope") == "ignore-file":
                if not rule_ids:
                    raise LintError(
                        f"line {lineno}: '# lint: ignore-file' requires an "
                        f"explicit rule list, e.g. ignore-file[det-wallclock]"
                    )
                self._file_wide |= rule_ids
            else:
                self._by_line.setdefault(lineno, set()).update(
                    rule_ids or {ALL_RULES}
                )

    @staticmethod
    def _comments(source: str) -> List[Tuple[int, str]]:
        """``(line, text)`` for every ``#`` comment in the source."""
        reader = io.StringIO(source).readline
        out: List[Tuple[int, str]] = []
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    out.append((token.start[0], token.string))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # The caller ast-parsed the file already; tokenize failing
            # afterwards means no further comments, not a lint crash.
            pass
        return out

    def covers(self, rule_id: str, line: int) -> bool:
        """Whether a finding from ``rule_id`` at ``line`` is silenced."""
        if rule_id in self._file_wide:
            return True
        on_line = self._by_line.get(line, ())
        return rule_id in on_line or ALL_RULES in on_line

    def declared_entries(self) -> List[Tuple[Optional[int], str]]:
        """Every suppression entry in the file, sorted.

        Inline entries are ``(line, rule_id)``; file-wide entries are
        ``(None, rule_id)``.  The runner diffs this against the entries
        that actually silenced something to report stale suppressions.
        """
        out: List[Tuple[Optional[int], str]] = [
            (None, rule_id) for rule_id in sorted(self._file_wide)
        ]
        for line in sorted(self._by_line):
            out.extend((line, rule_id) for rule_id in sorted(self._by_line[line]))
        return out

    def covering_entries(
        self, rule_id: str, line: int
    ) -> List[Tuple[Optional[int], str]]:
        """The declared entries that silence ``rule_id`` at ``line``."""
        out: List[Tuple[Optional[int], str]] = []
        if rule_id in self._file_wide:
            out.append((None, rule_id))
        on_line = self._by_line.get(line, ())
        if rule_id in on_line:
            out.append((line, rule_id))
        if ALL_RULES in on_line:
            out.append((line, ALL_RULES))
        return out

    @property
    def file_wide(self) -> Set[str]:
        """Rule ids silenced for the whole file."""
        return set(self._file_wide)


class ImportMap:
    """Resolves local names to the modules/attributes they import.

    Rules match *semantic* targets ("a call of ``time.monotonic``"), so
    they must see through aliases: ``import time as t`` then
    ``t.monotonic()``, or ``from time import monotonic``.
    """

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> dotted module path (``import numpy as np``).
        self.modules: Dict[str, str] = {}
        #: local name -> (module, original name) for ``from X import Y``.
        self.members: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.members[alias.asname or alias.name] = (
                        node.module, alias.name
                    )

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of a Name/Attribute expression, or ``None``.

        ``t.monotonic`` with ``import time as t`` resolves to
        ``"time.monotonic"``; ``monotonic`` after ``from time import
        monotonic`` resolves the same way.  Anything the import map
        cannot see (locals, call results) resolves to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        if head in self.members:
            module, original = self.members[head]
            return ".".join([module, original] + list(reversed(parts)))
        if head in self.modules:
            return ".".join([self.modules[head]] + list(reversed(parts)))
        return None


@dataclass
class FileContext:
    """One parsed source file as seen by every rule."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    imports: ImportMap
    #: Path relative to the scanned root, posix-style — what rules use
    #: for module-identity checks like "is this cli.py".
    rel_path: str

    @property
    def module_basename(self) -> str:
        """File name alone (``cli.py``), for allow-list style rules."""
        return self.rel_path.rsplit("/", 1)[-1]

    @classmethod
    def parse(cls, path: str, source: str, rel_path: str) -> "FileContext":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"{path}: cannot parse: {exc}") from exc
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=Suppressions(source),
            imports=ImportMap(tree),
            rel_path=rel_path,
        )


@dataclass
class LintConfig:
    """Knobs the rule packs read; defaults encode this repo's policy."""

    #: Module basenames allowed to read process environment variables.
    #: ``fastpath.py`` is the documented batched/scalar escape hatch:
    #: its flag picks between byte-identical implementations, so the
    #: read is configuration, not a determinism hazard.
    env_allowed_basenames: Tuple[str, ...] = ("cli.py", "fastpath.py")
    #: Dotted roots whose reachable payload classes must stay picklable.
    pickle_roots: Tuple[str, ...] = (
        "repro/fleet/work.py::ShardTask",
        "repro/fleet/work.py::ShardResult",
        "repro/analysis/fig12_continuous_learning.py::EpochTask",
        "repro/analysis/fig12_continuous_learning.py::EpochOutcome",
    )
    #: Functions whose bodies are canonical-serialisation sinks for the
    #: interprocedural taint pass (``rel/path.py::func`` or
    #: ``rel/path.py::Class.method``).
    taint_sink_functions: Tuple[str, ...] = (
        "repro/fleet/engine.py::FleetReport.to_dict",
        "repro/fleet/engine.py::FleetReport.to_json",
        "repro/registry/records.py::RegistryState.to_dict",
        # The serve daemon's persisted artifacts: the cycle ledger and
        # the report-queue batches are resume/replay surfaces, so any
        # wall-clock (or other nondeterminism) reaching their
        # serialisers breaks the byte-identical-resume contract.
        "repro/service/ledger.py::CycleLedger.to_dict",
        "repro/service/ledger.py::CycleLedger.to_json",
        "repro/service/ledger.py::CycleLedger.record_stage",
        "repro/service/reports.py::ReportBatch.to_dict",
        "repro/service/reports.py::DeviceReport.to_dict",
    )
    #: Classes whose constructed instances cross the process boundary;
    #: any function instantiating one is a taint sink.
    taint_sink_classes: Tuple[str, ...] = (
        "repro/fleet/work.py::ShardResult",
        "repro/fleet/work.py::DeviceResult",
    )
    #: Methods (including subclass overrides) that fold shard results
    #: into the aggregate report — the reduction sinks.
    taint_sink_methods: Tuple[str, ...] = (
        "repro/fleet/reducers.py::Accumulator.update",
        "repro/fleet/reducers.py::Accumulator.merge",
        "repro/fleet/reducers.py::Accumulator.finalize",
    )
    #: Entry points executed inside worker processes; everything they
    #: reach is subject to the concurrency rules.
    worker_roots: Tuple[str, ...] = (
        "repro/fleet/work.py::run_shard",
    )
    #: Identifier suffix -> canonical unit for the units-hygiene rule.
    unit_suffixes: Dict[str, str] = field(default_factory=lambda: {
        "mj": "millijoule",
        "mw": "milliwatt",
        "mah": "milliamp-hour",
        "s": "second",
        "ms": "millisecond",
        "seconds": "second",
        "hours": "hour",
        "joules": "joule",
        "watts": "watt",
        "bytes": "byte",
        "cycles": "cycle",
        "hz": "hertz",
    })


class Rule:
    """One analysis.  Subclasses register with :func:`register_rule`.

    ``scope`` selects the interface the runner calls:

    * ``"file"`` — :meth:`check` once per parsed file;
    * ``"project"`` — :meth:`check_project` once with every file, for
      rules that relate files (registry conformance, pickle tracing).
    """

    id: str = "abstract"
    description: str = ""
    scope: str = "file"
    #: Finding rule-ids this rule emits when they differ from ``id``
    #: (e.g. the taint pass registers as ``det-taint`` but reports
    #: ``det-taint-clock`` findings).  Reporters use this to publish
    #: complete rule metadata; suppressions match the emitted id.
    emits: Tuple[str, ...] = ()

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (``scope == "file"``)."""
        raise NotImplementedError  # pragma: no cover - interface

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        """Yield findings across files (``scope == "project"``)."""
        raise NotImplementedError  # pragma: no cover - interface


#: rule-id -> rule class; populated by the ``@register_rule`` decorator
#: as the rule modules import (see ``repro/lint/__init__.py``).
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if cls.id in RULE_REGISTRY:
        raise LintError(f"duplicate rule id {cls.id!r}")
    if cls.scope not in ("file", "project"):
        raise LintError(f"rule {cls.id!r} has invalid scope {cls.scope!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def iter_rule_ids() -> List[str]:
    """Registered rule ids in canonical (sorted) order."""
    return sorted(RULE_REGISTRY)
