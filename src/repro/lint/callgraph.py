"""Project-wide symbol table and call graph for whole-program rules.

The per-file rule packs see one module at a time, so a helper that
returns ``time.time()`` is invisible once it is called from a reducer
two modules away.  This module builds the shared substrate the
interprocedural passes (``taint.py``, ``rules_concurrency.py``) run on:

* :class:`ProjectIndex` — every module, class, and function in the
  scanned tree, with alias/re-export resolution and a base-class map;
* :class:`ProjectGraph` — the call graph over those functions, binding
  ``foo()``, ``mod.foo()``, ``self.method()``, constructor calls, and
  calls through parameters annotated with project classes;
* reachability with parent chains, so findings can print the full
  ``sink -> helper -> source`` path a reviewer would otherwise have to
  reconstruct by hand.

Binding is deliberately conservative and purely syntactic: dynamic
dispatch through untyped values, ``getattr``, or callables stored in
containers resolves to nothing (and therefore never *adds* findings).
That under-approximation is the right polarity for the taint pass —
an edge we miss can only hide a hazard, never invent one, and the
fixtures in ``tests/lint/test_callgraph.py`` pin the cases we promise
to see.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.core import FileContext

#: Re-export chains longer than this are cut off (cycles aside, real
#: code never forwards a name through more than a couple of modules).
_MAX_REEXPORT_HOPS = 8


def module_name(rel_path: str) -> str:
    """Dotted module identity of a scan-relative path.

    ``fleet/work.py`` -> ``fleet.work``; package ``__init__`` files
    collapse onto the package (``registry/__init__.py`` ->
    ``registry``); a top-level ``__init__.py`` becomes ``""``.
    """
    dotted = rel_path[: -len(".py")].replace("/", ".")
    if dotted.endswith(".__init__"):
        return dotted[: -len(".__init__")]
    if dotted == "__init__":
        return ""
    return dotted


@dataclass
class FunctionInfo:
    """One module-level function or class method."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ctx: FileContext


@dataclass
class ClassInfo:
    """One class definition and its directly-declared methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module's top-level symbols."""

    name: str
    ctx: FileContext
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


Symbol = Union[FunctionInfo, ClassInfo]


class ProjectIndex:
    """Symbol table over every parsed file in the run.

    Modules register under their scan-relative dotted name and, when
    not already so prefixed, under ``repro.<name>`` — the same dual
    registration the pickling trace uses, so the table works whether
    the linter was pointed at ``src``, ``src/repro``, or a fixture
    tree mimicking the package layout.
    """

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self._modules: Dict[str, ModuleInfo] = {}
        self.modules: List[ModuleInfo] = []
        for ctx in sorted(contexts, key=lambda c: c.rel_path):
            if not ctx.rel_path.endswith(".py"):
                continue
            info = self._index_module(ctx)
            self.modules.append(info)
            self._modules.setdefault(info.name, info)
            if info.name and not info.name.startswith("repro."):
                self._modules.setdefault(f"repro.{info.name}", info)
            elif not info.name:
                self._modules.setdefault("repro", info)

    @staticmethod
    def _index_module(ctx: FileContext) -> ModuleInfo:
        name = module_name(ctx.rel_path)
        info = ModuleInfo(name=name, ctx=ctx)
        prefix = f"{name}." if name else ""
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = FunctionInfo(
                    qualname=f"{prefix}{node.name}",
                    module=name,
                    name=node.name,
                    class_name=None,
                    node=node,
                    ctx=ctx,
                )
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{prefix}{node.name}",
                    module=name,
                    name=node.name,
                    node=node,
                    ctx=ctx,
                )
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        cls.methods[stmt.name] = FunctionInfo(
                            qualname=f"{cls.qualname}.{stmt.name}",
                            module=name,
                            name=stmt.name,
                            class_name=node.name,
                            node=stmt,
                            ctx=ctx,
                        )
                info.classes[node.name] = cls
        return info

    def module(self, name: str) -> Optional[ModuleInfo]:
        """The module registered under ``name``, or ``None``."""
        info = self._modules.get(name)
        if info is None and name.startswith("repro."):
            info = self._modules.get(name[len("repro."):])
        return info

    def resolve_member(self, module: str, name: str) -> Optional[Symbol]:
        """``from <module> import <name>`` resolved to its definition.

        Follows re-export chains (a package ``__init__`` forwarding a
        symbol it itself imported) up to :data:`_MAX_REEXPORT_HOPS`.
        """
        seen: Set[Tuple[str, str]] = set()
        for _ in range(_MAX_REEXPORT_HOPS):
            if (module, name) in seen:
                return None
            seen.add((module, name))
            info = self.module(module)
            if info is None:
                return None
            if name in info.functions:
                return info.functions[name]
            if name in info.classes:
                return info.classes[name]
            forwarded = info.ctx.imports.members.get(name)
            if forwarded is None:
                # ``from X import Y`` where Y is X's submodule rather
                # than a symbol: nothing further to follow here.
                return None
            module, name = forwarded
        return None

    def resolve_dotted(self, dotted: str) -> Optional[Symbol]:
        """A fully-dotted reference (``pkg.mod.func``) to its symbol.

        Splits on the longest registered module prefix, so
        ``fleet.work.run_shard`` finds module ``fleet.work`` even
        though ``fleet`` is also a registered (package) module.
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            info = self.module(".".join(parts[:cut]))
            if info is None:
                continue
            member = parts[cut]
            remainder = parts[cut + 1:]
            symbol: Optional[Symbol]
            symbol = info.functions.get(member) or info.classes.get(member)
            if symbol is None:
                symbol = self.resolve_member(info.name, member)
            if symbol is None:
                continue
            if not remainder:
                return symbol
            if isinstance(symbol, ClassInfo) and len(remainder) == 1:
                return self.method_on(symbol, remainder[0])
        return None

    def class_by_spec(self, spec: str) -> Optional[ClassInfo]:
        """``rel/path.py::ClassName`` (config format) to its ClassInfo."""
        rel_suffix, _, class_name = spec.partition("::")
        rel_suffix = rel_suffix.removeprefix("repro/")
        for info in self.modules:
            if info.ctx.rel_path.removeprefix("repro/") != rel_suffix:
                continue
            found = info.classes.get(class_name)
            if found is not None:
                return found
        return None

    def function_by_spec(self, spec: str) -> Optional[FunctionInfo]:
        """``rel/path.py::func`` or ``rel/path.py::Class.method``."""
        rel_suffix, _, name = spec.partition("::")
        rel_suffix = rel_suffix.removeprefix("repro/")
        class_name, _, method = name.partition(".")
        for info in self.modules:
            if info.ctx.rel_path.removeprefix("repro/") != rel_suffix:
                continue
            if method:
                cls = info.classes.get(class_name)
                if cls is not None and method in cls.methods:
                    return cls.methods[method]
            elif name in info.functions:
                return info.functions[name]
        return None

    # -- class hierarchy ---------------------------------------------------

    def base_classes(self, cls: ClassInfo) -> List[ClassInfo]:
        """Directly-declared bases resolvable inside the project."""
        out: List[ClassInfo] = []
        module = self.module(cls.module) or ModuleInfo(cls.module, cls.ctx)
        for base in cls.node.bases:
            resolved = self._resolve_class_expr(base, module)
            if resolved is not None:
                out.append(resolved)
        return out

    def _resolve_class_expr(
        self, node: ast.expr, module: ModuleInfo
    ) -> Optional[ClassInfo]:
        if isinstance(node, ast.Subscript):
            # ``Accumulator[FleetTotals]`` — the generic parametrisation
            # is irrelevant to dispatch.
            return self._resolve_class_expr(node.value, module)
        if isinstance(node, ast.Name):
            local = module.classes.get(node.id)
            if local is not None:
                return local
            member = module.ctx.imports.members.get(node.id)
            if member is not None:
                symbol = self.resolve_member(member[0], member[1])
                if isinstance(symbol, ClassInfo):
                    return symbol
            return None
        if isinstance(node, ast.Attribute):
            dotted = module.ctx.imports.resolve(node)
            if dotted is not None:
                symbol = self.resolve_dotted(dotted)
                if isinstance(symbol, ClassInfo):
                    return symbol
        return None

    def method_on(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Method lookup through the resolvable part of the MRO (BFS)."""
        queue: List[ClassInfo] = [cls]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            queue.extend(self.base_classes(current))
        return None

    def subclasses_of(self, base: ClassInfo) -> List[ClassInfo]:
        """Every project class inheriting (transitively) from ``base``."""
        out: List[ClassInfo] = []
        for info in self.modules:
            for cls in info.classes.values():
                if cls.qualname == base.qualname:
                    continue
                if self._inherits(cls, base):
                    out.append(cls)
        return out

    def _inherits(self, cls: ClassInfo, base: ClassInfo) -> bool:
        queue = self.base_classes(cls)
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if current.qualname == base.qualname:
                return True
            queue.extend(self.base_classes(current))
        return False


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    caller: str
    callee: str
    line: int
    column: int


@dataclass(frozen=True)
class Instantiation:
    """One resolved constructor call."""

    caller: str
    class_qualname: str
    line: int
    column: int


class ProjectGraph:
    """The call graph over a :class:`ProjectIndex`."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.index = ProjectIndex(contexts)
        #: qualname -> FunctionInfo for every function in the project.
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller qualname -> resolved outgoing call edges, code order.
        self.calls: Dict[str, List[CallEdge]] = {}
        #: caller qualname -> project classes it constructs.
        self.instantiations: Dict[str, List[Instantiation]] = {}
        for info in self.index.modules:
            for fn in info.functions.values():
                self._add_function(fn, info, None)
            for cls in info.classes.values():
                for method in cls.methods.values():
                    self._add_function(method, info, cls)

    # -- construction ------------------------------------------------------

    def _add_function(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        enclosing: Optional[ClassInfo],
    ) -> None:
        self.functions[fn.qualname] = fn
        edges: List[CallEdge] = []
        constructed: List[Instantiation] = []
        local_types = self._local_types(fn, module, enclosing)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            symbol = self._resolve_callable(
                node.func, module, enclosing, local_types
            )
            if symbol is None:
                continue
            if isinstance(symbol, FunctionInfo):
                edges.append(CallEdge(
                    caller=fn.qualname,
                    callee=symbol.qualname,
                    line=node.lineno,
                    column=node.col_offset,
                ))
            else:
                constructed.append(Instantiation(
                    caller=fn.qualname,
                    class_qualname=symbol.qualname,
                    line=node.lineno,
                    column=node.col_offset,
                ))
                init = self.index.method_on(symbol, "__init__")
                if init is not None:
                    edges.append(CallEdge(
                        caller=fn.qualname,
                        callee=init.qualname,
                        line=node.lineno,
                        column=node.col_offset,
                    ))
        self.calls[fn.qualname] = edges
        self.instantiations[fn.qualname] = constructed

    def _local_types(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        enclosing: Optional[ClassInfo],
    ) -> Dict[str, ClassInfo]:
        """Names with a statically-known project class: ``self``,
        parameters annotated with a project class, and locals assigned
        a constructor call."""
        types: Dict[str, ClassInfo] = {}
        if enclosing is not None and fn.node.args.args:
            types[fn.node.args.args[0].arg] = enclosing
        for arg in list(fn.node.args.args) + list(fn.node.args.kwonlyargs):
            if arg.annotation is None:
                continue
            resolved = self._annotation_class(arg.annotation, module)
            if resolved is not None:
                types[arg.arg] = resolved
        for node in ast.walk(fn.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
                continue
            symbol = self._resolve_callable(value.func, module, enclosing, {})
            if isinstance(symbol, ClassInfo):
                types[target.id] = symbol
        return types

    def _annotation_class(
        self, node: ast.expr, module: ModuleInfo
    ) -> Optional[ClassInfo]:
        """A parameter annotation's project class, seeing through
        ``Optional[...]``/quoted forms; ``None`` for everything else."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            head = node.value
            head_name = head.attr if isinstance(head, ast.Attribute) else (
                head.id if isinstance(head, ast.Name) else None
            )
            if head_name == "Optional":
                return self._annotation_class(node.slice, module)
            return None
        return self.index._resolve_class_expr(node, module)

    def _resolve_callable(
        self,
        func: ast.expr,
        module: ModuleInfo,
        enclosing: Optional[ClassInfo],
        local_types: Dict[str, ClassInfo],
    ) -> Optional[Symbol]:
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_types:
                return None  # an instance; calling it is __call__, unbound
            if name in module.functions:
                return module.functions[name]
            if name in module.classes:
                return module.classes[name]
            member = module.ctx.imports.members.get(name)
            if member is not None:
                return self.index.resolve_member(member[0], member[1])
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                owner = local_types.get(base.id)
                if owner is not None:
                    return self.index.method_on(owner, func.attr)
            dotted = module.ctx.imports.resolve(func)
            if dotted is not None:
                return self.index.resolve_dotted(dotted)
        return None

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> List[CallEdge]:
        """Outgoing resolved call edges of one function."""
        return self.calls.get(qualname, [])

    def reachable_from(
        self, roots: Sequence[str]
    ) -> Dict[str, Optional[CallEdge]]:
        """Functions reachable from ``roots``, with BFS parent edges.

        The returned map's keys are reachable qualnames; each value is
        the edge through which BFS first discovered it (``None`` for a
        root).  :func:`call_chain` turns that into a printable path.
        """
        parents: Dict[str, Optional[CallEdge]] = {}
        queue: List[str] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for edge in self.calls.get(current, []):
                if edge.callee in parents or edge.callee not in self.functions:
                    continue
                parents[edge.callee] = edge
                queue.append(edge.callee)
        return parents

    def call_chain(
        self, parents: Dict[str, Optional[CallEdge]], target: str
    ) -> List[str]:
        """Root-to-target qualname path from a ``reachable_from`` map."""
        chain: List[str] = [target]
        seen: Set[str] = {target}
        edge = parents.get(target)
        while edge is not None:
            if edge.caller in seen:  # pragma: no cover - defensive
                break
            chain.append(edge.caller)
            seen.add(edge.caller)
            edge = parents.get(edge.caller)
        chain.reverse()
        return chain


def resolve_method_roots(
    index: ProjectIndex, specs: Sequence[str]
) -> Set[str]:
    """Qualnames for ``rel/path.py::Class.method`` specs, including the
    overrides every project subclass declares for the same method."""
    roots: Set[str] = set()
    for spec in specs:
        fn = index.function_by_spec(spec)
        if fn is None:
            continue
        roots.add(fn.qualname)
        rel, _, name = spec.partition("::")
        class_name, _, method = name.partition(".")
        if not method:
            continue
        base = index.class_by_spec(f"{rel}::{class_name}")
        if base is None:
            continue
        for sub in index.subclasses_of(base):
            override = sub.methods.get(method)
            if override is not None:
                roots.add(override.qualname)
    return roots


# -- shared syntactic helpers ----------------------------------------------


def iter_return_values(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Iterator[ast.expr]:
    """Non-``None`` return expressions of ``fn`` (nested defs excluded).

    Returns only live in statements, so walking the statement tree —
    skipping nested function/class bodies, whose returns belong to
    them — finds every one.
    """
    stack: List[ast.stmt] = list(fn.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Return):
            if node.value is not None:
                yield node.value
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)


def local_function_defs(
    fn: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Set[str]:
    """Names of functions defined inside ``fn``'s body."""
    return {
        node.name
        for node in ast.walk(fn)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not fn
    }


# -- memoized construction -------------------------------------------------

_GRAPH_CACHE: Dict[str, ProjectGraph] = {}


def _contexts_key(contexts: Sequence[FileContext]) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for ctx in sorted(contexts, key=lambda c: c.path):
        digest.update(ctx.path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(ctx.source.encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()


def project_graph(contexts: Sequence[FileContext]) -> ProjectGraph:
    """Build (or reuse) the call graph for one set of parsed files.

    Several project-scope rules run over the same contexts in one lint
    invocation; the graph is content-keyed so they share a single
    build, while edited files (different bytes) can never alias a
    stale graph.  Only the most recent graph is retained.
    """
    key = _contexts_key(contexts)
    cached = _GRAPH_CACHE.get(key)
    if cached is not None:
        return cached
    graph = ProjectGraph(contexts)
    _GRAPH_CACHE.clear()
    _GRAPH_CACHE[key] = graph
    return graph
