"""Pickling-safety rules for fleet process-boundary payloads.

:class:`~repro.fleet.executors.ProcessFleetExecutor` ships
:class:`~repro.fleet.work.ShardTask` out and
:class:`~repro.fleet.work.ShardResult` back via ``pickle``.  A lambda,
a locally-defined function, or an open OS handle stored on any class
reachable from those payloads turns into a runtime ``PicklingError`` —
but only on ``--jobs > 1`` runs, which is why a static trace is worth
having.  This rule rebuilds the payload closure the way a reviewer
would: start at the configured root classes, follow the dataclass
field annotations through the import graph, and audit every class the
payload can transitively hold.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import FileContext, Finding, Rule, register_rule

#: Constructors whose results hold OS or thread state that ``pickle``
#: rejects (or silently resurrects wrongly) across a process boundary.
_HANDLE_ORIGINS = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "socket.socket",
})

_STREAM_ORIGINS = frozenset({"sys.stdout", "sys.stderr", "sys.stdin"})


def _dotted_module(rel_path: str) -> str:
    """``fleet/work.py`` -> ``fleet.work`` (posix rel path assumed)."""
    return rel_path[: -len(".py")].replace("/", ".")


class _ModuleIndex:
    """Resolves dotted module paths to parsed file contexts.

    Registered under both the scan-relative dotted name and its
    ``repro.``-prefixed form, so the trace works whether the linter was
    pointed at ``src``, ``src/repro``, or a test fixture tree that
    mimics the package layout without the top-level package directory.
    """

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self._by_module: Dict[str, FileContext] = {}
        for ctx in contexts:
            if not ctx.rel_path.endswith(".py"):
                continue
            dotted = _dotted_module(ctx.rel_path)
            self._by_module.setdefault(dotted, ctx)
            if not dotted.startswith("repro."):
                self._by_module.setdefault(f"repro.{dotted}", ctx)

    def lookup(self, module: str) -> Optional[FileContext]:
        ctx = self._by_module.get(module)
        if ctx is None and module.startswith("repro."):
            ctx = self._by_module.get(module[len("repro."):])
        return ctx


def _class_defs(ctx: FileContext) -> Dict[str, ast.ClassDef]:
    return {
        node.name: node
        for node in ctx.tree.body
        if isinstance(node, ast.ClassDef)
    }


#: Typing scaffolding and builtin containers: these name *shapes*, not
#: payload classes, and must never be looked up as project symbols (a
#: project class that happens to be called ``Set`` would otherwise be
#: shadowed by the wrapper).
_TYPING_WRAPPERS = frozenset({
    "Optional", "Union", "Any", "ClassVar", "Final", "Annotated",
    "Literal", "List", "Sequence", "MutableSequence", "Tuple", "Dict",
    "Mapping", "MutableMapping", "OrderedDict", "DefaultDict",
    "Counter", "Deque", "Set", "FrozenSet", "AbstractSet",
    "MutableSet", "Iterable", "Iterator", "Generator", "Type",
    "Callable", "list", "dict", "set", "frozenset", "tuple", "type",
    "None",
})

#: Generic heads whose arguments are *not* stored instance state and
#: therefore end the trace: ``ClassVar`` fields never pickle with the
#: instance, ``Type[X]``/``Literal`` hold references and values, and a
#: ``Callable`` annotation's signature classes are never stored.
_OPAQUE_HEADS = frozenset({"ClassVar", "Literal", "Type", "Callable"})

#: A class reference from an annotation: ``("bare", "SnipTable")`` for
#: a plain name, ``("dotted", "repro.core.table.SnipTable")`` for an
#: attribute reference already resolved through the import map.
_ClassRef = Tuple[str, str]


def _head_name(node: ast.expr) -> Optional[str]:
    """The identifier a generic subscription is applied to."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_refs(node: ast.expr, ctx: FileContext) -> List[_ClassRef]:
    """Candidate class references stored by a field annotation.

    Walks the annotation *structurally* instead of collecting every
    identifier: ``Optional[X]``, ``Sequence[X]``, ``Mapping[K, V]``,
    PEP 604 ``X | None``, ``Annotated[X, ...]``, and quoted forward
    references all reduce to the payload classes they can actually
    store, while typing wrappers, ``Literal`` values, ``ClassVar``
    scaffolding, and ``Callable`` signatures contribute nothing.
    Dotted references (``work.ShardResult``) resolve through the
    import map so the trace follows them across modules.
    """
    refs: List[_ClassRef] = []
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            # Quoted forward reference: re-parse and recurse.
            try:
                quoted = ast.parse(node.value, mode="eval")
            except SyntaxError:
                return []
            return _annotation_refs(quoted.body, ctx)
        return []  # None / Ellipsis / literal values
    if isinstance(node, ast.Name):
        if node.id in _TYPING_WRAPPERS:
            return []
        return [("bare", node.id)]
    if isinstance(node, ast.Attribute):
        if node.attr in _TYPING_WRAPPERS:
            return []
        dotted = ctx.imports.resolve(node)
        if dotted is None:
            return []
        return [("dotted", dotted)]
    if isinstance(node, ast.Subscript):
        head = _head_name(node.value)
        if head in _OPAQUE_HEADS:
            return []
        if head == "Annotated":
            # Annotated[X, metadata...]: only X is the stored type.
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return _annotation_refs(inner.elts[0], ctx)
            return _annotation_refs(inner, ctx)
        # A parametrised project class (``Holder[int]``) stores state
        # of its own: trace the head as well as the arguments.
        refs.extend(_annotation_refs(node.value, ctx))
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for element in elements:
            refs.extend(_annotation_refs(element, ctx))
        return refs
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 union: ``X | None`` / ``X | Y``.
        return (
            _annotation_refs(node.left, ctx)
            + _annotation_refs(node.right, ctx)
        )
    return refs


def _lambda_findings(
    value: ast.expr, ctx: FileContext, class_name: str, where: str
) -> Iterator[Finding]:
    """Findings for lambdas stored (not merely used) in ``value``.

    A ``field(default_factory=lambda: ...)`` is exempt: the factory
    runs at ``__init__`` time and only its *result* lands on the
    instance, so the payload still pickles.
    """
    skip: Set[int] = set()
    for child in ast.walk(value):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "field"
        ):
            for keyword in child.keywords:
                if keyword.arg == "default_factory":
                    skip.update(id(n) for n in ast.walk(keyword.value))
    for child in ast.walk(value):
        if isinstance(child, ast.Lambda) and id(child) not in skip:
            yield Finding(
                rule_id="pck-lambda",
                path=ctx.path,
                line=child.lineno,
                column=child.col_offset,
                message=f"class {class_name} stores a lambda {where}; "
                f"lambdas cannot cross the worker-process pickle boundary",
            )


def _handle_findings(
    value: ast.expr, ctx: FileContext, class_name: str, where: str
) -> Iterator[Finding]:
    for child in ast.walk(value):
        origin = None
        if isinstance(child, ast.Call):
            if isinstance(child.func, ast.Name) and child.func.id == "open":
                origin = "open(...)"
            else:
                resolved = ctx.imports.resolve(child.func)
                if resolved in _HANDLE_ORIGINS:
                    origin = resolved
        elif isinstance(child, (ast.Attribute, ast.Name)):
            resolved = ctx.imports.resolve(child)
            if resolved in _STREAM_ORIGINS:
                origin = resolved
        if origin:
            yield Finding(
                rule_id="pck-handle",
                path=ctx.path,
                line=child.lineno,
                column=child.col_offset,
                message=f"class {class_name} stores {origin} {where}; "
                f"OS handles cannot cross the worker-process pickle boundary",
            )


def _audit_class(
    node: ast.ClassDef, ctx: FileContext
) -> Iterator[Finding]:
    """Check one payload class for unpicklable stored state."""
    for stmt in node.body:
        value = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
        if value is not None:
            yield from _lambda_findings(value, ctx, node.name, "as a field default")
            yield from _handle_findings(value, ctx, node.name, "as a field default")
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_defs = {
            inner.name
            for inner in ast.walk(stmt)
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            and inner is not stmt
        }
        for inner in ast.walk(stmt):
            targets: List[ast.expr] = []
            value = None
            if isinstance(inner, ast.Assign):
                targets, value = inner.targets, inner.value
            elif isinstance(inner, ast.AnnAssign) and inner.value is not None:
                targets, value = [inner.target], inner.value
            if value is None or not any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            ):
                continue
            where = "on an instance attribute"
            yield from _lambda_findings(value, ctx, node.name, where)
            yield from _handle_findings(value, ctx, node.name, where)
            if isinstance(value, ast.Name) and value.id in local_defs:
                yield Finding(
                    rule_id="pck-lambda",
                    path=ctx.path,
                    line=value.lineno,
                    column=value.col_offset,
                    message=f"class {node.name} stores locally-defined "
                    f"function {value.id!r} on an instance attribute; local "
                    f"functions cannot cross the worker-process pickle "
                    f"boundary",
                )


@register_rule
class PicklingSafetyRule(Rule):
    """Trace fleet payload types and audit every reachable class."""

    id = "pck-payload"
    description = "unpicklable state reachable from fleet payload classes"
    scope = "project"

    #: The sub-rule ids this project rule emits under (suppression and
    #: ``--rules`` filtering treat them as children of ``pck-payload``).
    emits = ("pck-lambda", "pck-handle")

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        index = _ModuleIndex(contexts)
        queue: List[Tuple[FileContext, ast.ClassDef]] = []
        for root in self.config.pickle_roots:
            rel_suffix, _, class_name = root.partition("::")
            rel_suffix = rel_suffix.removeprefix("repro/")
            for ctx in contexts:
                if ctx.rel_path.removeprefix("repro/") != rel_suffix:
                    continue
                node = _class_defs(ctx).get(class_name)
                if node is not None:
                    queue.append((ctx, node))
        visited: Set[Tuple[str, str]] = set()
        while queue:
            ctx, node = queue.pop()
            key = (ctx.rel_path, node.name)
            if key in visited:
                continue
            visited.add(key)
            yield from _audit_class(node, ctx)
            queue.extend(self._referenced_classes(node, ctx, index))

    def _referenced_classes(
        self, node: ast.ClassDef, ctx: FileContext, index: _ModuleIndex
    ) -> List[Tuple[FileContext, ast.ClassDef]]:
        """Classes the payload's field annotations reach."""
        local = _class_defs(ctx)
        out: List[Tuple[FileContext, ast.ClassDef]] = []
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            for kind, ref in _annotation_refs(stmt.annotation, ctx):
                if kind == "bare":
                    if ref in local:
                        out.append((ctx, local[ref]))
                        continue
                    member = ctx.imports.members.get(ref)
                    if member is None:
                        continue
                    module, original = member
                    target_ctx = index.lookup(module)
                    if target_ctx is None:
                        continue
                    target = _class_defs(target_ctx).get(original)
                    if target is not None:
                        out.append((target_ctx, target))
                else:
                    resolved = self._resolve_dotted(ref, index)
                    if resolved is not None:
                        out.append(resolved)
        return out

    @staticmethod
    def _resolve_dotted(
        dotted: str, index: _ModuleIndex
    ) -> Optional[Tuple[FileContext, ast.ClassDef]]:
        """``pkg.mod.Class`` -> its definition, longest module prefix
        first (so ``fleet.work.ShardResult`` finds module
        ``fleet.work`` even though ``fleet`` is also a package)."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            target_ctx = index.lookup(".".join(parts[:cut]))
            if target_ctx is None:
                continue
            if cut != len(parts) - 1:
                continue  # trailing attribute chain, not a class name
            target = _class_defs(target_ctx).get(parts[-1])
            if target is not None:
                return (target_ctx, target)
        return None
