"""Pickling-safety rules for fleet process-boundary payloads.

:class:`~repro.fleet.executors.ProcessFleetExecutor` ships
:class:`~repro.fleet.work.ShardTask` out and
:class:`~repro.fleet.work.ShardResult` back via ``pickle``.  A lambda,
a locally-defined function, or an open OS handle stored on any class
reachable from those payloads turns into a runtime ``PicklingError`` —
but only on ``--jobs > 1`` runs, which is why a static trace is worth
having.  This rule rebuilds the payload closure the way a reviewer
would: start at the configured root classes, follow the dataclass
field annotations through the import graph, and audit every class the
payload can transitively hold.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import FileContext, Finding, Rule, register_rule

#: Constructors whose results hold OS or thread state that ``pickle``
#: rejects (or silently resurrects wrongly) across a process boundary.
_HANDLE_ORIGINS = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "socket.socket",
})

_STREAM_ORIGINS = frozenset({"sys.stdout", "sys.stderr", "sys.stdin"})


def _dotted_module(rel_path: str) -> str:
    """``fleet/work.py`` -> ``fleet.work`` (posix rel path assumed)."""
    return rel_path[: -len(".py")].replace("/", ".")


class _ModuleIndex:
    """Resolves dotted module paths to parsed file contexts.

    Registered under both the scan-relative dotted name and its
    ``repro.``-prefixed form, so the trace works whether the linter was
    pointed at ``src``, ``src/repro``, or a test fixture tree that
    mimics the package layout without the top-level package directory.
    """

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self._by_module: Dict[str, FileContext] = {}
        for ctx in contexts:
            if not ctx.rel_path.endswith(".py"):
                continue
            dotted = _dotted_module(ctx.rel_path)
            self._by_module.setdefault(dotted, ctx)
            if not dotted.startswith("repro."):
                self._by_module.setdefault(f"repro.{dotted}", ctx)

    def lookup(self, module: str) -> Optional[FileContext]:
        ctx = self._by_module.get(module)
        if ctx is None and module.startswith("repro."):
            ctx = self._by_module.get(module[len("repro."):])
        return ctx


def _class_defs(ctx: FileContext) -> Dict[str, ast.ClassDef]:
    return {
        node.name: node
        for node in ctx.tree.body
        if isinstance(node, ast.ClassDef)
    }


def _annotation_type_names(node: ast.expr) -> List[str]:
    """Candidate class names referenced by a field annotation.

    Handles quoted forward references (``"SnipTable"``) by re-parsing
    the string.  Typing scaffolding (``Optional``, ``List``, builtins)
    comes along for the ride and simply fails to resolve to a module.
    """
    names: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.append(child.id)
        elif isinstance(child, ast.Attribute):
            names.append(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            try:
                quoted = ast.parse(child.value, mode="eval")
            except SyntaxError:
                continue
            names.extend(_annotation_type_names(quoted.body))
    return names


def _lambda_findings(
    value: ast.expr, ctx: FileContext, class_name: str, where: str
) -> Iterator[Finding]:
    """Findings for lambdas stored (not merely used) in ``value``.

    A ``field(default_factory=lambda: ...)`` is exempt: the factory
    runs at ``__init__`` time and only its *result* lands on the
    instance, so the payload still pickles.
    """
    skip: Set[int] = set()
    for child in ast.walk(value):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "field"
        ):
            for keyword in child.keywords:
                if keyword.arg == "default_factory":
                    skip.update(id(n) for n in ast.walk(keyword.value))
    for child in ast.walk(value):
        if isinstance(child, ast.Lambda) and id(child) not in skip:
            yield Finding(
                rule_id="pck-lambda",
                path=ctx.path,
                line=child.lineno,
                column=child.col_offset,
                message=f"class {class_name} stores a lambda {where}; "
                f"lambdas cannot cross the worker-process pickle boundary",
            )


def _handle_findings(
    value: ast.expr, ctx: FileContext, class_name: str, where: str
) -> Iterator[Finding]:
    for child in ast.walk(value):
        origin = None
        if isinstance(child, ast.Call):
            if isinstance(child.func, ast.Name) and child.func.id == "open":
                origin = "open(...)"
            else:
                resolved = ctx.imports.resolve(child.func)
                if resolved in _HANDLE_ORIGINS:
                    origin = resolved
        elif isinstance(child, (ast.Attribute, ast.Name)):
            resolved = ctx.imports.resolve(child)
            if resolved in _STREAM_ORIGINS:
                origin = resolved
        if origin:
            yield Finding(
                rule_id="pck-handle",
                path=ctx.path,
                line=child.lineno,
                column=child.col_offset,
                message=f"class {class_name} stores {origin} {where}; "
                f"OS handles cannot cross the worker-process pickle boundary",
            )


def _audit_class(
    node: ast.ClassDef, ctx: FileContext
) -> Iterator[Finding]:
    """Check one payload class for unpicklable stored state."""
    for stmt in node.body:
        value = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
        if value is not None:
            yield from _lambda_findings(value, ctx, node.name, "as a field default")
            yield from _handle_findings(value, ctx, node.name, "as a field default")
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_defs = {
            inner.name
            for inner in ast.walk(stmt)
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
            and inner is not stmt
        }
        for inner in ast.walk(stmt):
            targets: List[ast.expr] = []
            value = None
            if isinstance(inner, ast.Assign):
                targets, value = inner.targets, inner.value
            elif isinstance(inner, ast.AnnAssign) and inner.value is not None:
                targets, value = [inner.target], inner.value
            if value is None or not any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in targets
            ):
                continue
            where = "on an instance attribute"
            yield from _lambda_findings(value, ctx, node.name, where)
            yield from _handle_findings(value, ctx, node.name, where)
            if isinstance(value, ast.Name) and value.id in local_defs:
                yield Finding(
                    rule_id="pck-lambda",
                    path=ctx.path,
                    line=value.lineno,
                    column=value.col_offset,
                    message=f"class {node.name} stores locally-defined "
                    f"function {value.id!r} on an instance attribute; local "
                    f"functions cannot cross the worker-process pickle "
                    f"boundary",
                )


@register_rule
class PicklingSafetyRule(Rule):
    """Trace fleet payload types and audit every reachable class."""

    id = "pck-payload"
    description = "unpicklable state reachable from fleet payload classes"
    scope = "project"

    #: The sub-rule ids this project rule emits under (suppression and
    #: ``--rules`` filtering treat them as children of ``pck-payload``).
    emits = ("pck-lambda", "pck-handle")

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        index = _ModuleIndex(contexts)
        queue: List[Tuple[FileContext, ast.ClassDef]] = []
        for root in self.config.pickle_roots:
            rel_suffix, _, class_name = root.partition("::")
            rel_suffix = rel_suffix.removeprefix("repro/")
            for ctx in contexts:
                if ctx.rel_path.removeprefix("repro/") != rel_suffix:
                    continue
                node = _class_defs(ctx).get(class_name)
                if node is not None:
                    queue.append((ctx, node))
        visited: Set[Tuple[str, str]] = set()
        while queue:
            ctx, node = queue.pop()
            key = (ctx.rel_path, node.name)
            if key in visited:
                continue
            visited.add(key)
            yield from _audit_class(node, ctx)
            queue.extend(self._referenced_classes(node, ctx, index))

    def _referenced_classes(
        self, node: ast.ClassDef, ctx: FileContext, index: _ModuleIndex
    ) -> List[Tuple[FileContext, ast.ClassDef]]:
        """Classes the payload's field annotations reach."""
        local = _class_defs(ctx)
        out: List[Tuple[FileContext, ast.ClassDef]] = []
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            for name in _annotation_type_names(stmt.annotation):
                if name in local:
                    out.append((ctx, local[name]))
                    continue
                member = ctx.imports.members.get(name)
                if member is None:
                    continue
                module, original = member
                target_ctx = index.lookup(module)
                if target_ctx is None:
                    continue
                target = _class_defs(target_ctx).get(original)
                if target is not None:
                    out.append((target_ctx, target))
        return out
