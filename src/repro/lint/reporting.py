"""Rendering lint results: text, machine-readable JSON, and SARIF.

The JSON form is what CI consumes (stable key order, one object per
finding); the text form is for humans at the terminal, with clickable
``path:line:col`` locations; the SARIF form (2.1.0) is what GitHub
code scanning ingests, turning findings into inline PR annotations.
All three render findings in the canonical ``(path, line, column,
rule)`` order so output is byte-stable across runs — the linter holds
itself to the determinism bar it enforces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.cache import SuppressionEntry
from repro.lint.core import RULE_REGISTRY
from repro.lint.runner import PARSE_ERROR_RULE, LintResult


def _entry_text(entry: SuppressionEntry) -> str:
    path, line, rule = entry
    where = f"{path}:{line}" if line is not None else f"{path} (file-wide)"
    return f"{where} [{rule}]"


def render_text(result: LintResult) -> str:
    """Human-readable report, one line per finding plus a summary.

    Hygiene drift — stale baseline entries and suppression comments
    that silenced nothing — renders above the summary, so a "clean"
    run with rotting exemptions still says so.
    """
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column + 1}: "
            f"{finding.rule_id}: {finding.message}"
        )
    for key in result.stale_baseline:
        lines.append(f"stale baseline entry (finding no longer exists): {key}")
    for entry in result.unused_suppressions:
        lines.append(
            f"unused suppression (silences nothing): {_entry_text(entry)}"
        )
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} "
        f"({result.files_checked} files, {result.suppressed} suppressed"
    )
    if result.baselined:
        summary += f", {result.baselined} baselined"
    lines.append(summary + ")")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """CI-facing JSON document; schema documented in docs/LINTING.md.

    Each finding object carries exactly ``rule/path/line/column/
    message`` (columns 1-based); hygiene drift is reported at the
    document level so finding consumers never see surprise keys.
    """
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline": list(result.stale_baseline),
        "unused_suppressions": [
            {"path": path, "line": line, "rule": rule}
            for path, line, rule in result.unused_suppressions
        ],
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column + 1,
                "message": finding.message,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules() -> List[Dict[str, Any]]:
    """Reporting descriptors for every finding id the packs can emit.

    Rules that report under sub-ids (``det-taint`` emitting
    ``det-taint-clock``) publish one descriptor per emitted id, since
    SARIF results reference the id that appears on the finding.
    """
    descriptors: Dict[str, str] = {
        PARSE_ERROR_RULE: "file could not be parsed",
    }
    for rule_id in sorted(RULE_REGISTRY):
        cls = RULE_REGISTRY[rule_id]
        if cls.emits:
            for emitted in sorted(cls.emits):
                descriptors[emitted] = f"{cls.description} [{emitted}]"
        else:
            descriptors[rule_id] = cls.description
    return [
        {
            "id": rule_id,
            "shortDescription": {"text": text},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, text in sorted(descriptors.items())
    ]


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 document for GitHub code-scanning upload."""
    results: List[Dict[str, Any]] = []
    for finding in result.findings:
        results.append({
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                },
            }],
        })
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": _sarif_rules(),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
