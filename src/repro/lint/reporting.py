"""Rendering lint results: ``file:line`` text and machine-readable JSON.

The JSON form is what CI consumes (stable key order, one object per
finding); the text form is for humans at the terminal, with clickable
``path:line:col`` locations.  Both render findings in the canonical
``(path, line, column, rule)`` order so output is byte-stable across
runs — the linter holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import json
from typing import List

from repro.lint.runner import LintResult


def render_text(result: LintResult) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column + 1}: "
            f"{finding.rule_id}: {finding.message}"
        )
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} "
        f"({result.files_checked} files, {result.suppressed} suppressed"
    )
    if result.baselined:
        summary += f", {result.baselined} baselined"
    lines.append(summary + ")")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """CI-facing JSON document; schema documented in docs/LINTING.md."""
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "column": finding.column + 1,
                "message": finding.message,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
