"""Session event-trace generation.

Combines a game's user-behaviour gestures with the choreographer frame
ticks the game subscribes to, orders everything by timestamp, and
assigns sequence numbers — producing the same event stream shape the
device-side tracer would record during real play.
"""

from __future__ import annotations

from typing import List

from repro.android.events import Event, EventType, make_frame_tick
from repro.android.tracing import EventTracer, RecordedTrace
from repro.games.registry import create_game
from repro.rng import ReproRng
from repro.users.behavior import behavior_for

#: Choreographer callback rate for subscribed games.
TICK_HZ = 60.0


def _frame_ticks(duration_s: float) -> List[Event]:
    """The vsync tick stream for one session."""
    ticks = []
    count = int(duration_s * TICK_HZ)
    for index in range(count):
        ticks.append(
            make_frame_tick(delta_ms=16, slot=index % 4, timestamp=index / TICK_HZ)
        )
    return ticks


def assemble_events(
    game_name: str, gestures: List[Event], duration_s: float
) -> List[Event]:
    """Merge user gestures with the game's frame ticks and order them.

    Events carry strictly increasing sequence numbers; ties in timestamp
    are broken deterministically by event type.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    events = [event for event in gestures if event.timestamp < duration_s]
    game = create_game(game_name, seed=0)
    if EventType.FRAME_TICK in game.handled_event_types:
        events.extend(_frame_ticks(duration_s))
    events.sort(key=lambda event: (event.timestamp, event.event_type.value))
    ordered = []
    for sequence, event in enumerate(events, start=1):
        ordered.append(
            Event(event.event_type, event.values, sequence=sequence,
                  timestamp=event.timestamp)
        )
    return ordered


def generate_events(game_name: str, seed: int, duration_s: float) -> List[Event]:
    """The full ordered event stream for one session."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    rng = ReproRng(seed).fork(f"user:{game_name}")
    gestures = behavior_for(game_name).gestures(rng, duration_s)
    return assemble_events(game_name, gestures, duration_s)


def generate_trace(game_name: str, seed: int, duration_s: float) -> RecordedTrace:
    """The same stream packaged as a device recording (for the cloud)."""
    tracer = EventTracer(game_name=game_name, seed=seed)
    for event in generate_events(game_name, seed, duration_s):
        tracer.record(event)
    return tracer.trace
