"""Session event-trace generation.

Combines a game's user-behaviour gestures with the choreographer frame
ticks the game subscribes to, orders everything by timestamp, and
assigns sequence numbers — producing the same event stream shape the
device-side tracer would record during real play.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.android.events import (
    EVENT_SCHEMAS,
    Event,
    EventType,
    fast_event,
    make_frame_tick,
)
from repro.android.tracing import EventTracer, RecordedTrace
from repro.games.registry import game_info
from repro.rng import ReproRng
from repro.users.behavior import behavior_for

#: Choreographer callback rate for subscribed games.
TICK_HZ = 60.0

#: Stable event-type order for the columnar ``type_codes`` axis.
EVENT_TYPE_ORDER: Tuple[EventType, ...] = tuple(EventType)
_TYPE_CODE = {event_type: code for code, event_type in enumerate(EVENT_TYPE_ORDER)}
_TICK_SCHEMA = EVENT_SCHEMAS[EventType.FRAME_TICK]
#: Frame ticks cycle through 4 vsync slots with a constant delta; the
#: four value dicts are interned (events never mutate their values).
_TICK_VALUES = {slot: {"delta_ms": 16, "slot": slot} for slot in range(4)}


def _frame_ticks(duration_s: float) -> List[Event]:
    """The vsync tick stream for one session."""
    ticks = []
    count = int(duration_s * TICK_HZ)
    for index in range(count):
        ticks.append(
            make_frame_tick(delta_ms=16, slot=index % 4, timestamp=index / TICK_HZ)
        )
    return ticks


def assemble_events(
    game_name: str, gestures: List[Event], duration_s: float
) -> List[Event]:
    """Merge user gestures with the game's frame ticks and order them.

    Events carry strictly increasing sequence numbers; ties in timestamp
    are broken deterministically by event type.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    events = [event for event in gestures if event.timestamp < duration_s]
    if EventType.FRAME_TICK in game_info(game_name).cls.handled_event_types:
        events.extend(_frame_ticks(duration_s))
    events.sort(key=lambda event: (event.timestamp, event.event_type.value))
    ordered = []
    for sequence, event in enumerate(events, start=1):
        ordered.append(
            Event(event.event_type, event.values, sequence=sequence,
                  timestamp=event.timestamp)
        )
    return ordered


def generate_events(game_name: str, seed: int, duration_s: float) -> List[Event]:
    """The full ordered event stream for one session."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    rng = ReproRng(seed).fork(f"user:{game_name}")
    gestures = behavior_for(game_name).gestures(rng, duration_s)
    return assemble_events(game_name, gestures, duration_s)


def generate_trace(game_name: str, seed: int, duration_s: float) -> RecordedTrace:
    """The same stream packaged as a device recording (for the cloud)."""
    tracer = EventTracer(game_name=game_name, seed=seed)
    for event in generate_events(game_name, seed, duration_s):
        tracer.record(event)
    return tracer.trace


# -- columnar fast path -------------------------------------------------


@dataclass
class ColumnarSession:
    """One session's event stream in structure-of-arrays form.

    The scalar pipeline materialises each event three times (behaviour
    gesture → re-quantised assembly copy → ``RecordedEvent`` →
    ``to_event`` replay copy); this encoding materialises each event
    exactly once and carries the per-event scalars as numpy columns for
    the batched probe and ledger layers. ``events[i]`` corresponds to
    ``type_codes[i]``/``timestamps[i]``; events compare equal — bit for
    bit — to the scalar path's reconstructions (asserted by the
    golden-equivalence suite).
    """

    game_name: str
    seed: int
    #: Ordered, sequence-numbered events (shared-dict fast objects).
    events: List[Event]
    #: Total In.Event bytes the phone would upload for this stream.
    uplink_bytes: int
    #: Lazy columns: the federate-only fleet path never touches them,
    #: so the arrays materialise on first access.
    _type_codes: Optional[np.ndarray] = None
    _timestamps: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.events)

    @property
    def type_codes(self) -> np.ndarray:
        """Index of each event's type in :data:`EVENT_TYPE_ORDER` (int8)."""
        codes = self._type_codes
        if codes is None:
            codes = self._type_codes = np.fromiter(
                (_TYPE_CODE[event.event_type] for event in self.events),
                dtype=np.int8,
                count=len(self.events),
            )
        return codes

    @property
    def timestamps(self) -> np.ndarray:
        """Event timestamps in session seconds (float64)."""
        timestamps = self._timestamps
        if timestamps is None:
            timestamps = self._timestamps = np.fromiter(
                (event.timestamp for event in self.events),
                dtype=np.float64,
                count=len(self.events),
            )
        return timestamps


def assemble_columnar(
    game_name: str,
    gestures: Sequence[Tuple[float, Event]],
    duration_s: float,
    seed: int = 0,
) -> ColumnarSession:
    """Columnar twin of :func:`assemble_events`.

    ``gestures`` carries ``(timestamp, event)`` pairs so archetype tempo
    compression needs no intermediate event copies; the events' value
    dicts are adopted as-is (already quantised and schema-ordered).
    Ordering, tie-breaking, and sequence numbering replicate the scalar
    assembler exactly.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    pending: List[Tuple[float, str, EventType, Event]] = [
        (timestamp, event.event_type.value, event.event_type, event)
        for timestamp, event in gestures
        if timestamp < duration_s
    ]
    uplink = sum(event.schema.nbytes for _, _, _, event in pending)
    if EventType.FRAME_TICK in game_info(game_name).cls.handled_event_types:
        tick_type = EventType.FRAME_TICK
        tick_value = tick_type.value
        count = int(duration_s * TICK_HZ)
        for index in range(count):
            pending.append((index / TICK_HZ, tick_value, tick_type, None))
        uplink += count * _TICK_SCHEMA.nbytes
    pending.sort(key=lambda item: (item[0], item[1]))
    events: List[Event] = []
    for sequence, (timestamp, _, event_type, source) in enumerate(pending, start=1):
        if source is None:
            # Frame ticks are synthesised arithmetically; the slot index
            # recovers from the timestamp without a per-tick constructor.
            slot = round(timestamp * TICK_HZ) % 4
            events.append(
                fast_event(_TICK_SCHEMA, _TICK_VALUES[slot], sequence, timestamp)
            )
        else:
            events.append(
                fast_event(source.schema, source.values, sequence, timestamp)
            )
    return ColumnarSession(
        game_name=game_name,
        seed=seed,
        events=events,
        uplink_bytes=uplink,
    )


def columnar_session(game_name: str, seed: int, duration_s: float) -> ColumnarSession:
    """Columnar twin of :func:`generate_events` (one session stream)."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    rng = ReproRng(seed).fork(f"user:{game_name}")
    gestures = behavior_for(game_name).gestures(rng, duration_s)
    return assemble_columnar(
        game_name,
        [(event.timestamp, event) for event in gestures],
        duration_s,
        seed=seed,
    )
