"""Per-game user-behaviour models.

Each model turns a seeded RNG and a session duration into the *user
side* of an event stream: gestures with realistic rates, habit clusters
(players tap/swipe the same few spots with noise — the source of the
paper's redundant events), bursts (catapult drags arrive in runs), and
dwell phases (AR players stand still, then move).

Frame ticks are not user behaviour; the trace generator adds them for
games that subscribe to choreographer callbacks.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.android.events import Event, make_camera_frame, make_gyro
from repro.android.events import make_multi_touch, make_swipe, make_touch
from repro.errors import UnknownGameError
from repro.rng import ReproRng

SCREEN_W = 1440
SCREEN_H = 2560


class BehaviorModel:
    """Base: generates user gesture events for one game."""

    game_name = "abstract"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        """Unordered gesture events with timestamps in [0, duration)."""
        raise NotImplementedError

    # -- shared gesture helpers -----------------------------------------

    @staticmethod
    def _jitter(rng: ReproRng, base: int, spread: int, low: int, high: int) -> int:
        """A habitual position: cluster centre plus bounded noise."""
        value = base + rng.integer(-spread, spread + 1)
        return max(low, min(high, value))


class ColorphunBehavior(BehaviorModel):
    """Fast alternating taps on the two panels, some sloppy."""

    game_name = "colorphun"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(0.4)
        # The player's two habitual tap spots (thumb positions).
        top_spot = (rng.integer(500, 940), rng.integer(400, 900))
        bottom_spot = (rng.integer(500, 940), rng.integer(1600, 2200))
        while time < duration_s:
            spot = top_spot if rng.chance(0.5) else bottom_spot
            x = self._jitter(rng, spot[0], 120, 0, SCREEN_W - 1)
            y = self._jitter(rng, spot[1], 150, 0, SCREEN_H - 1)
            if rng.chance(0.06):  # occasional wild tap at the edge
                x = rng.choice([rng.integer(0, 130), rng.integer(1310, SCREEN_W)])
            action = 1 if rng.chance(0.10) else 0  # stray touch-ups
            events.append(make_touch(x, y, pressure=rng.uniform(0.3, 0.9),
                                     action=action, timestamp=time))
            time += rng.exponential(0.45)
        return events


class MemoryGameBehavior(BehaviorModel):
    """Deliberate taps scanning the card grid."""

    game_name = "memory_game"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(0.8)
        cell_w = SCREEN_W // 6
        cell_h = 2200 // 6
        while time < duration_s:
            if rng.chance(0.02):  # tap drifts below the grid (score bar)
                x = rng.integer(0, SCREEN_W)
                y = rng.integer(2200, SCREEN_H)
            else:
                col = rng.integer(0, 6)
                row = rng.integer(0, 6)
                x = self._jitter(rng, col * cell_w + cell_w // 2, 60, 0, SCREEN_W - 1)
                y = self._jitter(rng, row * cell_h + cell_h // 2, 60, 0, 2199)
            action = 1 if rng.chance(0.03) else 0
            events.append(make_touch(x, y, action=action, timestamp=time))
            time += rng.exponential(0.7)
        return events


class CandyCrushBehavior(BehaviorModel):
    """Swipes on board cells; players favour a few directions."""

    game_name = "candy_crush"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(0.6)
        cell_px = SCREEN_W // 8
        favourite_dirs = rng.sample([0, 2, 3, 4, 6], 3)
        while time < duration_s:
            col = rng.integer(0, 8)
            row = rng.integer(0, 8)
            x0 = self._jitter(rng, col * cell_px + cell_px // 2, 40, 0, SCREEN_W - 1)
            y0 = self._jitter(rng, row * cell_px + cell_px // 2, 40, 0, SCREEN_H - 1)
            direction = (
                rng.choice(favourite_dirs) if rng.chance(0.7) else rng.integer(0, 8)
            )
            length = rng.integer(120, 260)
            events.append(
                make_swipe(
                    x0, y0,
                    min(SCREEN_W - 1, x0 + length), min(SCREEN_H - 1, y0 + length // 2),
                    velocity=rng.uniform(400, 1600),
                    direction=direction,
                    duration_ms=rng.integer(80, 240),
                    timestamp=time,
                )
            )
            time += rng.exponential(0.65)
        return events


class GreenwallBehavior(BehaviorModel):
    """Fast slicing arcs across the play area."""

    game_name = "greenwall"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(0.4)
        while time < duration_s:
            # Slices sweep across the middle band where fruit flies.
            x0 = rng.integer(100, 500)
            y0 = rng.integer(1200, 2400)
            x1 = rng.integer(900, SCREEN_W - 1)
            y1 = max(0, min(SCREEN_H - 1, y0 + rng.integer(-500, 500)))
            events.append(
                make_swipe(
                    x0, y0, x1, y1,
                    velocity=rng.uniform(1200, 3200),
                    direction=2 if x1 > x0 else 6,
                    duration_ms=rng.integer(60, 160),
                    timestamp=time,
                )
            )
            time += rng.exponential(0.4)
        return events


class AbEvolutionBehavior(BehaviorModel):
    """Bursty catapult drags, then a fling; the paper's Fig. 4 peak.

    Drag bursts run past the catapult's maximum stretch — the canonical
    useless-event pattern the paper calls out for this game.
    """

    game_name = "ab_evolution"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(1.0)
        anchor = (rng.integer(300, 700), rng.integer(1700, 2100))
        while time < duration_s:
            # One aiming burst: 10-20 drag events at ~18 Hz.
            burst_len = rng.integer(9, 18)
            drag_time = time
            for _ in range(burst_len):
                if drag_time >= duration_s:
                    break
                x0 = self._jitter(rng, anchor[0], 40, 0, SCREEN_W - 1)
                y0 = self._jitter(rng, anchor[1], 40, 0, SCREEN_H - 1)
                events.append(
                    make_multi_touch(
                        x0, y0,
                        min(SCREEN_W - 1, x0 + rng.integer(40, 200)),
                        min(SCREEN_H - 1, y0 + rng.integer(40, 200)),
                        gesture=0 if rng.chance(0.93) else rng.integer(1, 3),
                        magnitude=rng.uniform(8.0, 16.0),
                        timestamp=drag_time,
                    )
                )
                drag_time += 0.055
            time = drag_time
            if rng.chance(0.75) and time < duration_s:  # release the bird
                events.append(
                    make_swipe(
                        anchor[0], anchor[1],
                        anchor[0] + rng.integer(-80, 80), max(0, anchor[1] - 600),
                        velocity=rng.uniform(1500, 3500),
                        direction=0,
                        duration_ms=rng.integer(60, 140),
                        timestamp=time,
                    )
                )
            if rng.chance(0.08) and time + 0.2 < duration_s:  # stray UI tap
                events.append(
                    make_touch(rng.integer(0, SCREEN_W), rng.integer(0, 600),
                               timestamp=time + 0.2)
                )
            # Watch the flight, then start aiming again.
            time += rng.uniform(1.2, 2.8)
        return events


class ChaseWhisplyBehavior(BehaviorModel):
    """AR play: camera stream with dwell/move phases, aim wobble, shots."""

    game_name = "chase_whisply"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        events.extend(self._camera_stream(rng.fork("camera"), duration_s))
        events.extend(self._gyro_stream(rng.fork("gyro"), duration_s))
        events.extend(self._shots(rng.fork("shots"), duration_s))
        return events

    def _camera_stream(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        frame_id = 0
        time = 0.0
        complexity = rng.integer(20, 200)
        rois = [rng.integer(0, 40) for _ in range(25)]
        dwell_until = rng.uniform(2.0, 6.0)
        moving = False
        while time < duration_s:
            if time >= dwell_until:
                moving = not moving
                dwell_until = time + (
                    rng.uniform(1.5, 3.5) if moving else rng.uniform(2.5, 5.0)
                )
            if moving:
                complexity = max(0, min(255, complexity + rng.integer(-25, 26)))
                rois = [rng.integer(0, 40) for _ in range(25)]
                motion = rng.uniform(3.0, 9.0)
            else:
                # Standing still: the scene barely changes frame to frame.
                if rng.chance(0.35):
                    rois[rng.integer(0, 25)] = rng.integer(0, 40)
                motion = rng.uniform(0.0, 1.5)
            events.append(
                make_camera_frame(
                    frame_id=frame_id % 64,  # ring-buffer frame ids
                    scene_complexity=complexity,
                    feature_count=complexity // 2,
                    roi_values=list(rois),
                    exposure=100,
                    focus_zone=(complexity // 32) % 25,
                    motion_score=motion,
                    timestamp=time,
                )
            )
            frame_id += 1
            time += 1.0 / 30.0
        return events

    def _gyro_stream(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(0.15)
        alpha, beta = 10.0, 180.0
        while time < duration_s:
            if rng.chance(0.25):  # big re-aim swing
                alpha = (alpha + rng.uniform(-60, 60)) % 360
                beta = (beta + rng.uniform(-60, 60)) % 360
            else:  # hand wobble within (usually) one aim bucket
                alpha = (alpha + rng.uniform(-7, 7)) % 360
                beta = (beta + rng.uniform(-7, 7)) % 360
            events.append(
                make_gyro(alpha, beta, gamma=rng.uniform(-5, 5),
                          rate=rng.uniform(0, 20), timestamp=time)
            )
            time += rng.exponential(0.12)
        return events

    def _shots(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(1.2)
        while time < duration_s:
            events.append(
                make_touch(rng.integer(600, 840), rng.integer(1200, 1400),
                           timestamp=time)
            )
            # Excited players squeeze off short tap runs.
            if rng.chance(0.3):
                for extra in range(rng.integer(1, 4)):
                    follow = time + 0.15 * (extra + 1)
                    if follow < duration_s:
                        events.append(
                            make_touch(rng.integer(600, 840),
                                       rng.integer(1200, 1400), timestamp=follow)
                        )
            time += rng.exponential(1.3)
        return events


class RaceKingsBehavior(BehaviorModel):
    """Continuous steering wiggle, lane tilts, and nitro taps."""

    game_name = "race_kings"

    def gestures(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        events.extend(self._steering(rng.fork("steer"), duration_s))
        events.extend(self._tilts(rng.fork("tilt"), duration_s))
        events.extend(self._nitro(rng.fork("nitro"), duration_s))
        return events

    def _steering(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(0.2)
        finger_x = 720
        while time < duration_s:
            # Mostly small corrections around the current finger spot.
            step = rng.integer(-220, 221) if rng.chance(0.8) else rng.integer(-600, 601)
            finger_x = max(0, min(SCREEN_W - 1, finger_x + step))
            events.append(
                make_multi_touch(
                    finger_x, 2300, finger_x, 2300,
                    gesture=0, magnitude=abs(step) / 40.0, timestamp=time,
                )
            )
            time += rng.exponential(0.13)
        return events

    def _tilts(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(0.2)
        gamma = 0.0
        while time < duration_s:
            gamma = max(-40.0, min(40.0, gamma + rng.uniform(-14, 14)))
            events.append(
                make_gyro(alpha=0.0, beta=90.0, gamma=gamma,
                          rate=rng.uniform(0, 30), timestamp=time)
            )
            time += rng.exponential(0.13)
        return events

    def _nitro(self, rng: ReproRng, duration_s: float) -> List[Event]:
        events: List[Event] = []
        time = rng.exponential(4.0)
        while time < duration_s:
            # Players hammer the button even while it recharges.
            x = rng.integer(1150, SCREEN_W - 1) if rng.chance(0.9) else rng.integer(0, 1100)
            y = rng.integer(2280, SCREEN_H - 1) if rng.chance(0.9) else rng.integer(0, 2200)
            events.append(make_touch(x, y, timestamp=time))
            time += rng.exponential(3.0)
        return events


_MODELS: Dict[str, Callable[[], BehaviorModel]] = {
    "colorphun": ColorphunBehavior,
    "memory_game": MemoryGameBehavior,
    "candy_crush": CandyCrushBehavior,
    "greenwall": GreenwallBehavior,
    "ab_evolution": AbEvolutionBehavior,
    "chase_whisply": ChaseWhisplyBehavior,
    "race_kings": RaceKingsBehavior,
}


def behavior_for(game_name: str) -> BehaviorModel:
    """The behaviour model matching a catalogue game."""
    try:
        return _MODELS[game_name]()
    except KeyError:
        raise UnknownGameError(f"no behaviour model for game {game_name!r}") from None
