"""User populations: archetypes over the base behaviour models.

The paper stresses that "users generate vastly different events/inputs"
[44] and that SNIP must tune to each user. This module adds that
population axis: a :class:`UserArchetype` rescales a game's base
behaviour (gesture tempo, precision, session length preference), and
:class:`Population` deals archetypes to user ids deterministically — so
fleet-level experiments (federated profiling, continuous learning across
users) have heterogeneous but reproducible inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.android.events import Event
from repro.android.tracing import EventTracer, RecordedTrace
from repro.rng import ReproRng
from repro.users.behavior import behavior_for
from repro.users.tracegen import ColumnarSession, assemble_columnar, assemble_events


@dataclass(frozen=True)
class UserArchetype:
    """A playing style, expressed as scalings over base behaviour.

    Attributes
    ----------
    name:
        Archetype label.
    tempo:
        Gesture-rate multiplier (>1 = more events per second), applied
        by time-compressing the generated gesture timeline.
    session_scale:
        Preferred session length relative to the nominal duration.
    """

    name: str
    tempo: float
    session_scale: float

    def __post_init__(self) -> None:
        if self.tempo <= 0 or self.session_scale <= 0:
            raise ValueError(f"archetype {self.name!r} has non-positive scales")


#: The default archetype mix: casual thumbs, average players, grinders.
DEFAULT_ARCHETYPES: Tuple[UserArchetype, ...] = (
    UserArchetype(name="casual", tempo=0.7, session_scale=0.6),
    UserArchetype(name="regular", tempo=1.0, session_scale=1.0),
    UserArchetype(name="intense", tempo=1.5, session_scale=1.3),
)


#: Process-wide archetype deals, keyed by the full deal inputs
#: ``(seed, archetypes, weights)`` → ``{user_id: archetype}``. The deal
#: is a pure function of those inputs, and fleet workers build one
#: short-lived :class:`Population` per shard — without a shared cache
#: every shard re-draws the same weighted choices. Inner maps are
#: capped so million-device fleets cannot grow memory unboundedly.
_ARCHETYPE_DEALS: Dict[Tuple, Dict[int, "UserArchetype"]] = {}
_ARCHETYPE_DEALS_CAP = 262_144


class Population:
    """A deterministic assignment of archetypes to user ids."""

    def __init__(
        self,
        archetypes: Tuple[UserArchetype, ...] = DEFAULT_ARCHETYPES,
        weights: Tuple[float, ...] = (0.4, 0.45, 0.15),
        seed: int = 0,
    ) -> None:
        if len(archetypes) != len(weights):
            raise ValueError("archetypes and weights must align")
        if not archetypes:
            raise ValueError("population needs at least one archetype")
        self.archetypes = archetypes
        self.weights = weights
        self.seed = seed
        #: This population's slice of the process-wide deal cache:
        #: archetype_of is pure in (seed, archetypes, weights, user_id)
        #: and queried several times per device across every shard.
        deal_key = (seed, archetypes, weights)
        cache = _ARCHETYPE_DEALS.get(deal_key)
        if cache is None:
            cache = _ARCHETYPE_DEALS[deal_key] = {}
        self._archetype_cache = cache
        #: Normalised weights, computed once with the exact expressions
        #: ReproRng.choice uses per call — the generator sees the same
        #: ``p`` array either way, so the deal is draw-identical.
        probs = np.asarray(list(weights), dtype=float)
        total = probs.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self._probs = probs / total

    def archetype_of(self, user_id: int) -> UserArchetype:
        """The archetype a user id maps to (stable across calls)."""
        cached = self._archetype_cache.get(user_id)
        if cached is None:
            rng = ReproRng(self.seed).fork(f"user:{user_id}")
            index = int(rng.generator.choice(len(self.archetypes), p=self._probs))
            cached = self.archetypes[index]
            if len(self._archetype_cache) < _ARCHETYPE_DEALS_CAP:
                self._archetype_cache[user_id] = cached
        return cached

    def user_gestures(
        self, game_name: str, user_id: int, session: int, duration_s: float
    ) -> List[Event]:
        """One user's gestures for one session, styled by archetype.

        Tempo is applied by generating a longer/shorter raw timeline and
        compressing it into the requested duration, which scales event
        rates without distorting the habit structure.
        """
        archetype = self.archetype_of(user_id)
        rng = ReproRng(self.seed).fork(f"{game_name}:{user_id}:{session}")
        raw_duration = duration_s * archetype.tempo
        events = behavior_for(game_name).gestures(rng, raw_duration)
        compressed = []
        for event in events:
            compressed.append(
                Event(
                    event.event_type,
                    event.values,
                    sequence=event.sequence,
                    timestamp=event.timestamp / archetype.tempo,
                )
            )
        return compressed

    def user_trace(
        self, game_name: str, user_id: int, session: int, duration_s: float
    ) -> RecordedTrace:
        """A full recorded session for one user (gestures + ticks).

        The effective session length follows the archetype's preference.
        """
        archetype = self.archetype_of(user_id)
        effective = duration_s * archetype.session_scale
        gestures = self.user_gestures(game_name, user_id, session, effective)
        tracer = EventTracer(game_name, seed=user_id * 10_000 + session)
        for event in assemble_events(game_name, gestures, effective):
            tracer.record(event)
        return tracer.trace

    def iter_user_traces(
        self, game_name: str, user_id: int, sessions: int, duration_s: float
    ) -> Iterator[RecordedTrace]:
        """Stream one user's recorded sessions, one trace at a time.

        The fleet's memory-frugal device loop consumes this instead of
        materialising every session upfront: each yielded trace is
        replayed and dropped before the next is generated, so peak
        memory per device is one session's events regardless of
        ``sessions``. Each trace is a pure function of
        ``(seed, game, user, session)`` — identical to indexing into
        the batch list.
        """
        for session in range(sessions):
            yield self.user_trace(game_name, user_id, session, duration_s)

    def iter_columnar_sessions(
        self, game_name: str, user_id: int, sessions: int, duration_s: float
    ) -> Iterator[ColumnarSession]:
        """Columnar twin of :meth:`iter_user_traces`.

        Yields each session as a :class:`ColumnarSession` whose events
        are bit-identical to the ``to_event`` reconstructions of the
        corresponding :class:`RecordedTrace` — without ever building the
        recorded intermediates. Tempo compression happens on raw
        ``(timestamp / tempo, event)`` pairs, reproducing the scalar
        path's float expressions exactly.
        """
        archetype = self.archetype_of(user_id)
        effective = duration_s * archetype.session_scale
        tempo = archetype.tempo
        behavior = behavior_for(game_name)
        raw_duration = effective * tempo
        for session in range(sessions):
            rng = ReproRng(self.seed).fork(f"{game_name}:{user_id}:{session}")
            raw = behavior.gestures(rng, raw_duration)
            yield assemble_columnar(
                game_name,
                [(event.timestamp / tempo, event) for event in raw],
                effective,
                seed=user_id * 10_000 + session,
            )

    def census(self, user_count: int) -> Dict[str, int]:
        """How many of the first N users land in each archetype."""
        counts: Dict[str, int] = {a.name: 0 for a in self.archetypes}
        for user_id in range(user_count):
            counts[self.archetype_of(user_id).name] += 1
        return counts
