"""End-to-end game sessions on the simulated phone.

A session wires a generated event stream through the Android delivery
path into a game on a fresh SoC, advancing simulated wall time between
events so background/idle power is accounted. The result object carries
everything the characterization figures need: the energy ledger, every
processing trace, and battery-life projections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.android.dispatch import BatchedEventLoop, EventLoop
from repro.android.events import Event, EventType
from repro.core.fastpath import batching_enabled
from repro.games.base import Game, ProcessingTrace
from repro.games.registry import GAME_CONTENT_SEED, create_game, fresh_game
from repro.soc.energy import ColumnarMeter, EnergyReport
from repro.soc.soc import Soc, snapdragon_821
from repro.users.tracegen import columnar_session, generate_events

#: Default session length used by the characterization experiments; the
#: paper measures 5-10 minute windows and extrapolates.
DEFAULT_DURATION_S = 120.0


def estimate_trace_energy(soc: Soc, trace: ProcessingTrace) -> float:
    """Handler-only energy of one trace, without charging anything.

    This is the *avoidable* energy of the event: CPU work, IP
    invocations, and memory traffic — but not sensing/delivery, which
    happen before any short-circuit decision.
    """
    energy = 0.0
    big_cycles = trace.cpu_big_cycles
    little_cycles = trace.cpu_little_cycles
    for func_call in trace.cpu_funcs:
        if func_call.big:
            big_cycles += func_call.cycles
        else:
            little_cycles += func_call.cycles
    energy += soc.cpu.energy_for(big_cycles, big=True)
    energy += soc.cpu.energy_for(little_cycles, big=False)
    energy += soc.memory.energy_for(trace.memory_bytes)
    for call in trace.ip_calls:
        energy += soc.ip(call.ip_name).energy_for(
            call.work_units, bytes_in=call.bytes_in, bytes_out=call.bytes_out
        )
    return energy


@dataclass
class SessionResult:
    """Everything observed during one simulated session."""

    game_name: str
    seed: int
    duration_s: float
    report: EnergyReport
    traces: List[ProcessingTrace]
    events: List[Event]
    soc: Soc
    game: Game

    @property
    def average_watts(self) -> float:
        """Mean device power over the session."""
        return self.report.total_joules / self.duration_s

    @property
    def battery_hours(self) -> float:
        """Projected hours to drain a full battery at this power."""
        return self.soc.battery.hours_to_empty(self.average_watts)

    # -- user-event statistics (paper Fig. 4) ---------------------------

    def user_traces(self) -> List[ProcessingTrace]:
        """Traces of user-originated events (everything but vsync)."""
        return [t for t in self.traces if t.event_type is not EventType.FRAME_TICK]

    @property
    def useless_user_fraction(self) -> float:
        """Fraction of user events that changed nothing (Fig. 4 left)."""
        user = self.user_traces()
        if not user:
            return 0.0
        return sum(1 for t in user if t.useless) / len(user)

    @property
    def wasted_energy_fraction(self) -> float:
        """Share of user-event processing energy spent on useless events
        (Fig. 4 right axis)."""
        user = self.user_traces()
        total = sum(estimate_trace_energy(self.soc, t) for t in user)
        if total <= 0:
            return 0.0
        wasted = sum(
            estimate_trace_energy(self.soc, t) for t in user if t.useless
        )
        return wasted / total

    @property
    def useless_cycle_fraction(self) -> float:
        """Cycle-weighted useless share over *all* processing."""
        total = sum(t.total_cycles for t in self.traces)
        if total <= 0:
            return 0.0
        return sum(t.total_cycles for t in self.traces if t.useless) / total


def run_baseline_session_task(payload: tuple) -> SessionResult:
    """Picklable adapter for fleet executors.

    ``payload`` is ``(game_name, seed, duration_s)``; module-level so a
    ``multiprocessing`` pool can ship it to workers. The analysis
    drivers fan their per-game sessions out through this.
    """
    game_name, seed, duration_s = payload
    return run_baseline_session(game_name, seed=seed, duration_s=duration_s)


def run_baseline_session_reference(
    game_name: str,
    seed: int = 0,
    duration_s: float = DEFAULT_DURATION_S,
) -> SessionResult:
    """Scalar golden reference for :func:`run_baseline_session`.

    Kept verbatim: the equivalence suite asserts the batched session
    produces an identical :class:`SessionResult` against this, and
    ``REPRO_SNIP_NO_BATCH=1`` routes callers back through it.
    """
    soc = snapdragon_821()
    game = create_game(game_name, seed=GAME_CONTENT_SEED)
    loop = EventLoop(soc, game)
    events = generate_events(game_name, seed, duration_s)
    traces: List[ProcessingTrace] = []
    clock = 0.0
    for event in events:
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        traces.append(loop.deliver(event))
    if duration_s > clock:
        soc.advance_time(duration_s - clock)
    return SessionResult(
        game_name=game_name,
        seed=seed,
        duration_s=duration_s,
        report=soc.report(),
        traces=traces,
        events=events,
        soc=soc,
        game=game,
    )


def run_baseline_session(
    game_name: str,
    seed: int = 0,
    duration_s: float = DEFAULT_DURATION_S,
) -> SessionResult:
    """Play one unoptimized session and return its full observation.

    Columnar fast path: events are generated in structure-of-arrays
    form (each materialised exactly once), delivery/upkeep energy lands
    in an append-only :class:`~repro.soc.energy.ColumnarMeter` via
    static cost patterns, and the game comes from the template cache.
    The result — ledger report, traces, events — is identical to the
    scalar reference.
    """
    if not batching_enabled():
        return run_baseline_session_reference(
            game_name, seed=seed, duration_s=duration_s
        )
    soc = snapdragon_821(meter=ColumnarMeter())
    game = fresh_game(game_name, seed=GAME_CONTENT_SEED)
    loop = BatchedEventLoop(soc, game)
    events = columnar_session(game_name, seed, duration_s).events
    traces: List[ProcessingTrace] = []
    clock = 0.0
    for event in events:
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        traces.append(loop.deliver(event))
    if duration_s > clock:
        soc.advance_time(duration_s - clock)
    return SessionResult(
        game_name=game_name,
        seed=seed,
        duration_s=duration_s,
        report=soc.report(),
        traces=traces,
        events=events,
        soc=soc,
        game=game,
    )
