"""User-behaviour models, event-trace generation, and sessions.

The paper measures real users; we substitute parameterised stochastic
behaviour models (per game) that reproduce the published event-stream
statistics: heavy gesture repetition with small variations, bursty
interaction, and per-game gesture mixes. All randomness is seeded.
"""

from repro.users.behavior import BehaviorModel, behavior_for
from repro.users.sessions import SessionResult, run_baseline_session
from repro.users.tracegen import generate_events, generate_trace

__all__ = [
    "BehaviorModel",
    "SessionResult",
    "behavior_for",
    "generate_events",
    "generate_trace",
    "run_baseline_session",
]
