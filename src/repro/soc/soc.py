"""SoC assembly: wire every component to one shared energy meter.

:func:`snapdragon_821` builds the Pixel-XL-class phone the paper
evaluates on. A :class:`Soc` is deliberately dumb — it owns components
and the battery but has no policy; sessions and schemes decide what runs
and what sleeps.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SimulationError
from repro.soc.battery import Battery
from repro.soc.component import ComponentGroup, HardwareComponent
from repro.soc.cpu import CpuCluster
from repro.soc.energy import EnergyMeter, EnergyReport, TAG_IDLE
from repro.soc.ip import (
    AudioCodec,
    DisplayController,
    Dsp,
    Gpu,
    ImageSignalProcessor,
    IpBlock,
    SensorHubIp,
    VideoCodec,
)
from repro.soc.memory import Memory
from repro.soc.power_profiles import PowerProfiles, pixel_xl_profiles
from repro.soc.sensors import (
    Accelerometer,
    CameraSensor,
    GpsReceiver,
    Gyroscope,
    Sensor,
    TouchPanel,
)

#: Canonical IP block names (keys of :attr:`Soc.ips`).
IP_GPU = "gpu"
IP_DISPLAY = "display"
IP_VIDEO_CODEC = "video_codec"
IP_AUDIO_CODEC = "audio_codec"
IP_ISP = "isp"
IP_DSP = "dsp"
IP_SENSOR_HUB = "sensor_hub"

#: Canonical sensor names (keys of :attr:`Soc.sensors`).
SENSOR_TOUCH = "touch"
SENSOR_GYRO = "gyro"
SENSOR_ACCEL = "accel"
SENSOR_GPS = "gps"
SENSOR_CAMERA = "camera"


class Soc:
    """A fully-assembled phone SoC plus battery.

    All components share one :class:`EnergyMeter`; experiments read the
    meter's report after a session and optionally project battery life.
    """

    def __init__(
        self,
        meter: EnergyMeter,
        cpu: CpuCluster,
        memory: Memory,
        ips: Dict[str, IpBlock],
        sensors: Dict[str, Sensor],
        battery: Battery,
        profiles: PowerProfiles,
    ) -> None:
        self.meter = meter
        self.cpu = cpu
        self.memory = memory
        self.ips = ips
        self.sensors = sensors
        self.battery = battery
        self.profiles = profiles
        self._elapsed_seconds = 0.0

    @property
    def elapsed_seconds(self) -> float:
        """Simulated wall time advanced via :meth:`advance_time`."""
        return self._elapsed_seconds

    def ip(self, name: str) -> IpBlock:
        """Look up an IP block by canonical name."""
        try:
            return self.ips[name]
        except KeyError:
            raise SimulationError(f"SoC has no IP block named {name!r}") from None

    def sensor(self, name: str) -> Sensor:
        """Look up a sensor by canonical name."""
        try:
            return self.sensors[name]
        except KeyError:
            raise SimulationError(f"SoC has no sensor named {name!r}") from None

    def all_components(self) -> Dict[str, HardwareComponent]:
        """Every component keyed by name (CPU, memory, IPs, sensors)."""
        components: Dict[str, HardwareComponent] = {
            self.cpu.name: self.cpu,
            self.memory.name: self.memory,
        }
        components.update(self.ips)
        components.update(self.sensors)
        return components

    def advance_time(self, seconds: float) -> None:
        """Advance wall time, accruing background power on everything.

        The platform floor (PMIC, rails, modem standby) is charged to a
        pseudo-component so the idle-phone battery-life figure includes
        consumers we do not model individually.
        """
        if seconds < 0:
            raise SimulationError(f"cannot advance time by {seconds} s")
        if seconds == 0:
            return
        for component in self.all_components().values():
            component.accrue_background(seconds, tag=TAG_IDLE)
        self.meter.charge(
            "platform_floor",
            ComponentGroup.IP,
            self.profiles.platform_floor_watts * seconds,
            tag=TAG_IDLE,
        )
        self._elapsed_seconds += seconds

    def report(self) -> EnergyReport:
        """Snapshot of the shared meter."""
        return self.meter.report()

    def average_watts(self) -> float:
        """Mean power over the elapsed session time."""
        if self._elapsed_seconds <= 0:
            raise SimulationError("no simulated time has elapsed")
        return self.meter.total_joules / self._elapsed_seconds


def snapdragon_821(
    profiles: Optional[PowerProfiles] = None,
    battery: Optional[Battery] = None,
    meter: Optional[EnergyMeter] = None,
) -> Soc:
    """Build the Pixel XL phone model used throughout the experiments.

    ``meter`` lets the batched session paths install a
    :class:`~repro.soc.energy.ColumnarMeter` (byte-identical folds,
    append-only hot path) without touching any component wiring.
    """
    profiles = profiles or pixel_xl_profiles()
    meter = meter if meter is not None else EnergyMeter()
    cpu = CpuCluster(meter, profiles.cpu)
    memory = Memory(meter, profiles.memory)
    ips: Dict[str, IpBlock] = {
        IP_GPU: Gpu(IP_GPU, meter, profiles.gpu),
        IP_DISPLAY: DisplayController(IP_DISPLAY, meter, profiles.display),
        IP_VIDEO_CODEC: VideoCodec(IP_VIDEO_CODEC, meter, profiles.video_codec),
        IP_AUDIO_CODEC: AudioCodec(IP_AUDIO_CODEC, meter, profiles.audio_codec),
        IP_ISP: ImageSignalProcessor(IP_ISP, meter, profiles.isp),
        IP_DSP: Dsp(IP_DSP, meter, profiles.dsp),
        IP_SENSOR_HUB: SensorHubIp(IP_SENSOR_HUB, meter, profiles.sensor_hub),
    }
    sensors: Dict[str, Sensor] = {
        SENSOR_TOUCH: TouchPanel(SENSOR_TOUCH, meter, profiles.touch),
        SENSOR_GYRO: Gyroscope(SENSOR_GYRO, meter, profiles.gyro),
        SENSOR_ACCEL: Accelerometer(SENSOR_ACCEL, meter, profiles.accel),
        SENSOR_GPS: GpsReceiver(SENSOR_GPS, meter, profiles.gps),
        SENSOR_CAMERA: CameraSensor(SENSOR_CAMERA, meter, profiles.camera),
    }
    return Soc(
        meter=meter,
        cpu=cpu,
        memory=memory,
        ips=ips,
        sensors=sensors,
        battery=battery or Battery(),
        profiles=profiles,
    )
