"""Per-component power/energy constants for a Pixel-XL-class phone.

The numbers are *calibrated*, not measured: they are chosen so that the
simulated phone reproduces the paper's published characterization —
idle battery life ~20 h, heavy-game battery life ~3 h (Fig. 3), and an
energy split of <10% sensors+memory, 40–60% CPU, 34–51% IPs (Fig. 2).
Absolute joules are therefore representative of a Snapdragon 821 but not
authoritative; only the ratios matter to the experiments.

All per-unit energies are in joules; powers in watts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MICRO, MILLI, NANO


@dataclass(frozen=True)
class CpuProfile:
    """CPU cluster constants (Kryo-like 2+2 big.LITTLE)."""

    big_freq_hz: float = 2.15e9
    little_freq_hz: float = 1.6e9
    big_energy_per_cycle: float = 0.90 * NANO
    little_energy_per_cycle: float = 0.25 * NANO
    idle_power_watts: float = 0.08
    sleep_power_watts: float = 0.005
    wake_energy_joules: float = 40 * MICRO


@dataclass(frozen=True)
class IpProfile:
    """One accelerator/IP block's constants."""

    setup_energy_joules: float
    energy_per_work_unit: float
    energy_per_byte: float
    idle_power_watts: float
    sleep_power_watts: float
    wake_energy_joules: float
    work_rate_per_second: float  # work units processed per second


@dataclass(frozen=True)
class MemoryProfile:
    """LPDDR4 channel constants."""

    energy_per_byte: float = 0.12 * NANO
    idle_power_watts: float = 0.055
    sleep_power_watts: float = 0.012
    bandwidth_bytes_per_second: float = 12e9


@dataclass(frozen=True)
class SensorProfile:
    """One physical sensor's constants."""

    sample_energy_joules: float
    idle_power_watts: float


@dataclass(frozen=True)
class PowerProfiles:
    """The full phone constant set (see module docstring for intent)."""

    cpu: CpuProfile
    gpu: IpProfile
    display: IpProfile
    video_codec: IpProfile
    audio_codec: IpProfile
    isp: IpProfile
    dsp: IpProfile
    sensor_hub: IpProfile
    memory: MemoryProfile
    touch: SensorProfile
    gyro: SensorProfile
    accel: SensorProfile
    gps: SensorProfile
    camera: SensorProfile
    #: Always-on platform power not attributable to modelled components
    #: (PMIC, rails, modem standby). Part of the idle-phone 20 h figure.
    platform_floor_watts: float = 0.18


def pixel_xl_profiles() -> PowerProfiles:
    """Constants for the Pixel XL / Snapdragon 821 used in the paper."""
    return PowerProfiles(
        cpu=CpuProfile(),
        gpu=IpProfile(
            setup_energy_joules=60 * MICRO,
            energy_per_work_unit=0.55 * MILLI,
            energy_per_byte=0.05 * NANO,
            idle_power_watts=0.04,
            sleep_power_watts=0.004,
            wake_energy_joules=250 * MICRO,
            work_rate_per_second=8000.0,
        ),
        display=IpProfile(
            setup_energy_joules=10 * MICRO,
            energy_per_work_unit=2.2 * MILLI,  # one frame refresh
            energy_per_byte=0.01 * NANO,
            idle_power_watts=0.25,  # panel self-refresh floor while on
            sleep_power_watts=0.01,
            wake_energy_joules=2 * MILLI,
            work_rate_per_second=60.0,
        ),
        video_codec=IpProfile(
            setup_energy_joules=30 * MICRO,
            energy_per_work_unit=1.4 * MILLI,
            energy_per_byte=0.03 * NANO,
            idle_power_watts=0.015,
            sleep_power_watts=0.002,
            wake_energy_joules=120 * MICRO,
            work_rate_per_second=120.0,
        ),
        audio_codec=IpProfile(
            setup_energy_joules=8 * MICRO,
            energy_per_work_unit=0.25 * MILLI,
            energy_per_byte=0.01 * NANO,
            idle_power_watts=0.010,
            sleep_power_watts=0.001,
            wake_energy_joules=40 * MICRO,
            work_rate_per_second=200.0,
        ),
        isp=IpProfile(
            setup_energy_joules=50 * MICRO,
            energy_per_work_unit=1.6 * MILLI,  # one camera frame
            energy_per_byte=0.04 * NANO,
            idle_power_watts=0.02,
            sleep_power_watts=0.002,
            wake_energy_joules=300 * MICRO,
            work_rate_per_second=30.0,
        ),
        dsp=IpProfile(
            setup_energy_joules=15 * MICRO,
            energy_per_work_unit=0.4 * MILLI,
            energy_per_byte=0.02 * NANO,
            idle_power_watts=0.012,
            sleep_power_watts=0.001,
            wake_energy_joules=60 * MICRO,
            work_rate_per_second=500.0,
        ),
        sensor_hub=IpProfile(
            setup_energy_joules=1 * MICRO,
            energy_per_work_unit=4 * MICRO,  # one sensor batch
            energy_per_byte=0.01 * NANO,
            idle_power_watts=0.006,
            sleep_power_watts=0.001,
            wake_energy_joules=5 * MICRO,
            work_rate_per_second=2000.0,
        ),
        memory=MemoryProfile(),
        touch=SensorProfile(sample_energy_joules=2 * MICRO, idle_power_watts=0.004),
        gyro=SensorProfile(sample_energy_joules=1.2 * MICRO, idle_power_watts=0.003),
        accel=SensorProfile(sample_energy_joules=0.8 * MICRO, idle_power_watts=0.002),
        gps=SensorProfile(sample_energy_joules=8 * MILLI, idle_power_watts=0.005),
        camera=SensorProfile(sample_energy_joules=1.5 * MILLI, idle_power_watts=0.004),
    )
