"""Accelerator / IP block models.

Each IP block (GPU, display controller, codecs, ISP, DSP, sensor hub)
charges a fixed setup energy per invocation plus per-work-unit and
per-byte energy. Blocks can be put to sleep between invocations — that
is the entire mechanism behind the paper's Max-IP baseline [43] — at the
cost of a wake-up energy on the next invocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.component import ComponentGroup, HardwareComponent, PowerState
from repro.soc.energy import EnergyMeter
from repro.soc.power_profiles import IpProfile


@dataclass(frozen=True)
class IpInvocation:
    """Result of one IP invocation: what it cost and how long it took."""

    ip_name: str
    work_units: float
    bytes_moved: int
    energy_joules: float
    seconds: float


class IpBlock(HardwareComponent):
    """A domain-specific accelerator charging per-invocation energy."""

    def __init__(self, name: str, meter: EnergyMeter, profile: IpProfile) -> None:
        super().__init__(
            name=name,
            group=ComponentGroup.IP,
            meter=meter,
            idle_power_watts=profile.idle_power_watts,
            sleep_power_watts=profile.sleep_power_watts,
            wake_energy_joules=profile.wake_energy_joules,
        )
        self._profile = profile
        self._invocations = 0
        self._work_units = 0.0

    @property
    def profile(self) -> IpProfile:
        """The constant set this block was built with."""
        return self._profile

    @property
    def invocation_count(self) -> int:
        """How many times this block has been invoked."""
        return self._invocations

    @property
    def total_work_units(self) -> float:
        """Total work units processed across all invocations."""
        return self._work_units

    def invoke(
        self,
        work_units: float,
        bytes_in: int = 0,
        bytes_out: int = 0,
        tag: str = "event",
    ) -> IpInvocation:
        """Run one offloaded task on this IP block.

        Wakes the block if it was sleeping (charging wake energy under
        the same ``tag``), charges setup + work + data-movement energy,
        and returns an :class:`IpInvocation` record.
        """
        if work_units < 0:
            raise ValueError(f"{self.name!r}: negative work units {work_units}")
        if bytes_in < 0 or bytes_out < 0:
            raise ValueError(f"{self.name!r}: negative byte counts")
        self.wake(tag=tag)
        if self.state == PowerState.IDLE:
            self.transition(PowerState.ACTIVE, tag=tag)
        bytes_moved = bytes_in + bytes_out
        energy = (
            self._profile.setup_energy_joules
            + work_units * self._profile.energy_per_work_unit
            + bytes_moved * self._profile.energy_per_byte
        )
        seconds = work_units / self._profile.work_rate_per_second if work_units else 0.0
        self.charge(energy, tag=tag)
        self.transition(PowerState.IDLE, tag=tag)
        self._invocations += 1
        self._work_units += work_units
        return IpInvocation(
            ip_name=self.name,
            work_units=work_units,
            bytes_moved=bytes_moved,
            energy_joules=energy,
            seconds=seconds,
        )

    def energy_for(self, work_units: float, bytes_in: int = 0, bytes_out: int = 0) -> float:
        """Energy that :meth:`invoke` would charge, without charging it."""
        if work_units < 0 or bytes_in < 0 or bytes_out < 0:
            raise ValueError(f"{self.name!r}: negative invocation parameters")
        return (
            self._profile.setup_energy_joules
            + work_units * self._profile.energy_per_work_unit
            + (bytes_in + bytes_out) * self._profile.energy_per_byte
        )


class Gpu(IpBlock):
    """3D render and compose engine (Adreno-530-class)."""


class DisplayController(IpBlock):
    """Panel refresh and composition pipeline; work unit = one frame."""


class VideoCodec(IpBlock):
    """Hardware video encode/decode; work unit = one frame."""


class AudioCodec(IpBlock):
    """Audio DSP codec path; work unit = one buffer."""


class ImageSignalProcessor(IpBlock):
    """Camera ISP; work unit = one captured frame."""


class Dsp(IpBlock):
    """Hexagon-class general DSP used for physics/vision kernels."""


class SensorHubIp(IpBlock):
    """Low-power sensor hub core; work unit = one sensor batch."""
