"""LPDDR4 memory channel model.

Memory charges per byte moved. Event processing moves its inputs and
outputs through memory (the Binder shared-memory hop, handler state
reads/writes, IP DMA buffers), so short-circuiting an event also saves
its memory traffic — the ledger makes that visible.
"""

from __future__ import annotations

from repro.soc.component import ComponentGroup, HardwareComponent
from repro.soc.energy import EnergyMeter
from repro.soc.power_profiles import MemoryProfile


class Memory(HardwareComponent):
    """A DRAM channel charging per-byte transfer energy."""

    def __init__(self, meter: EnergyMeter, profile: MemoryProfile, name: str = "dram") -> None:
        super().__init__(
            name=name,
            group=ComponentGroup.MEMORY,
            meter=meter,
            idle_power_watts=profile.idle_power_watts,
            sleep_power_watts=profile.sleep_power_watts,
        )
        self._profile = profile
        self._bytes_moved = 0

    @property
    def profile(self) -> MemoryProfile:
        """The constant set this channel was built with."""
        return self._profile

    @property
    def bytes_moved(self) -> int:
        """Total bytes transferred so far."""
        return self._bytes_moved

    def transfer(self, num_bytes: int, tag: str = "event") -> float:
        """Move ``num_bytes`` through the channel; returns wall time."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        if num_bytes == 0:
            return 0.0
        self.charge(num_bytes * self._profile.energy_per_byte, tag=tag)
        self._bytes_moved += num_bytes
        return num_bytes / self._profile.bandwidth_bytes_per_second

    def energy_for(self, num_bytes: int) -> float:
        """Energy that :meth:`transfer` would charge, without charging."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        return num_bytes * self._profile.energy_per_byte
