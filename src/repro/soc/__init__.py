"""Mobile SoC hardware substrate.

A Snapdragon-821-class system-on-chip model: CPU cluster, accelerator/IP
blocks, LPDDR4 memory, sensors, and a battery, all charging their
activity to a shared :class:`~repro.soc.energy.EnergyMeter`. The model
is an *energy accounting* simulator — SNIP's evaluation is about which
component activity is avoided, so the ledger is the ground truth every
experiment reads.
"""

from repro.soc.battery import Battery
from repro.soc.component import ComponentGroup, HardwareComponent, PowerState
from repro.soc.cpu import CpuCluster
from repro.soc.energy import EnergyMeter, EnergyReport
from repro.soc.ip import (
    AudioCodec,
    DisplayController,
    Dsp,
    Gpu,
    ImageSignalProcessor,
    IpBlock,
    SensorHubIp,
    VideoCodec,
)
from repro.soc.memory import Memory
from repro.soc.sensors import (
    Accelerometer,
    CameraSensor,
    GpsReceiver,
    Gyroscope,
    Sensor,
    TouchPanel,
)
from repro.soc.soc import Soc, snapdragon_821

__all__ = [
    "Accelerometer",
    "AudioCodec",
    "Battery",
    "CameraSensor",
    "ComponentGroup",
    "CpuCluster",
    "DisplayController",
    "Dsp",
    "EnergyMeter",
    "EnergyReport",
    "GpsReceiver",
    "Gpu",
    "Gyroscope",
    "HardwareComponent",
    "ImageSignalProcessor",
    "IpBlock",
    "Memory",
    "PowerState",
    "Sensor",
    "SensorHubIp",
    "Soc",
    "TouchPanel",
    "VideoCodec",
    "snapdragon_821",
]
