"""Kryo-like big.LITTLE CPU cluster model.

The cluster is the unit of accounting — the paper's Fig. 2 reports "CPU"
as one bucket — but work can be steered to big or little cores, which
differ ~3x in energy per cycle. Event-handler dispatch and game logic
run on big cores; background bookkeeping (tracing, sensor batching) runs
on little cores.
"""

from __future__ import annotations

from repro.soc.component import ComponentGroup, HardwareComponent
from repro.soc.energy import EnergyMeter
from repro.soc.power_profiles import CpuProfile


class CpuCluster(HardwareComponent):
    """A 2+2 big.LITTLE CPU cluster charging cycles to the meter."""

    def __init__(self, meter: EnergyMeter, profile: CpuProfile, name: str = "cpu") -> None:
        super().__init__(
            name=name,
            group=ComponentGroup.CPU,
            meter=meter,
            idle_power_watts=profile.idle_power_watts,
            sleep_power_watts=profile.sleep_power_watts,
            wake_energy_joules=profile.wake_energy_joules,
        )
        self._profile = profile
        self._big_cycles = 0
        self._little_cycles = 0

    @property
    def profile(self) -> CpuProfile:
        """The constant set this cluster was built with."""
        return self._profile

    @property
    def big_cycles_executed(self) -> int:
        """Total cycles retired on big cores."""
        return self._big_cycles

    @property
    def little_cycles_executed(self) -> int:
        """Total cycles retired on little cores."""
        return self._little_cycles

    @property
    def total_cycles_executed(self) -> int:
        """Total cycles retired on any core."""
        return self._big_cycles + self._little_cycles

    def execute(self, cycles: int, big: bool = True, tag: str = "event") -> float:
        """Run ``cycles`` of work; returns the wall time consumed.

        Parameters
        ----------
        cycles:
            Dynamic instruction-cycle count to retire.
        big:
            Steer to big (default) or little cores.
        tag:
            Energy-ledger tag (``"lookup"`` for SNIP table overhead).
        """
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        if cycles == 0:
            return 0.0
        self.wake(tag=tag)
        if big:
            energy = cycles * self._profile.big_energy_per_cycle
            seconds = cycles / self._profile.big_freq_hz
            self._big_cycles += cycles
        else:
            energy = cycles * self._profile.little_energy_per_cycle
            seconds = cycles / self._profile.little_freq_hz
            self._little_cycles += cycles
        self.charge(energy, tag=tag)
        return seconds

    def energy_for(self, cycles: int, big: bool = True) -> float:
        """Energy that :meth:`execute` would charge, without charging it.

        Used by schemes to reason about prospective savings.
        """
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        per_cycle = (
            self._profile.big_energy_per_cycle if big else self._profile.little_energy_per_cycle
        )
        return cycles * per_cycle
