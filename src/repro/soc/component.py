"""Hardware component base class and power-state machine.

Components expose two energy paths:

* **active energy** — charged per unit of work (cycles, bytes, frames,
  invocations) while doing something;
* **background power** — idle/sleep leakage integrated over wall time by
  :meth:`HardwareComponent.accrue_background`.

Power states follow the usual mobile-SoC ladder ``OFF < SLEEP < IDLE <
ACTIVE``. The Max-IP baseline of the paper works by pushing idle IP
blocks down to ``SLEEP`` between invocations; the state machine here is
what makes that scheme expressible.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict

from repro.errors import PowerStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.soc.energy import EnergyMeter


class ComponentGroup(enum.Enum):
    """Paper Fig. 2 groups every component into one of these buckets."""

    CPU = "cpu"
    IP = "ip"
    MEMORY = "memory"
    SENSOR = "sensor"

    def __str__(self) -> str:
        return self.value


class PowerState(enum.IntEnum):
    """Component power ladder, ordered from deepest to shallowest."""

    OFF = 0
    SLEEP = 1
    IDLE = 2
    ACTIVE = 3


#: Legal transitions: from-state -> set of to-states.
_LEGAL_TRANSITIONS: Dict[PowerState, frozenset] = {
    PowerState.OFF: frozenset({PowerState.SLEEP, PowerState.IDLE}),
    PowerState.SLEEP: frozenset({PowerState.OFF, PowerState.IDLE}),
    PowerState.IDLE: frozenset({PowerState.OFF, PowerState.SLEEP, PowerState.ACTIVE}),
    PowerState.ACTIVE: frozenset({PowerState.IDLE}),
}


class HardwareComponent:
    """Base class for everything that consumes energy on the SoC.

    Parameters
    ----------
    name:
        Unique component name within an SoC (ledger key).
    group:
        Fig. 2 accounting bucket.
    meter:
        Shared energy ledger to charge into.
    idle_power_watts / sleep_power_watts:
        Background power in the ``IDLE`` and ``SLEEP`` states. ``OFF``
        draws nothing; ``ACTIVE`` background draw equals idle draw (the
        active premium is charged per unit of work instead).
    wake_energy_joules:
        One-shot energy cost of a ``SLEEP -> IDLE`` wake-up. This is the
        cost that makes naive Max-IP sleeping non-free.
    """

    def __init__(
        self,
        name: str,
        group: ComponentGroup,
        meter: "EnergyMeter",
        idle_power_watts: float,
        sleep_power_watts: float = 0.0,
        wake_energy_joules: float = 0.0,
    ) -> None:
        if idle_power_watts < 0 or sleep_power_watts < 0 or wake_energy_joules < 0:
            raise ValueError(f"negative power parameter on component {name!r}")
        if sleep_power_watts > idle_power_watts:
            raise ValueError(
                f"{name!r}: sleep power ({sleep_power_watts} W) must not exceed "
                f"idle power ({idle_power_watts} W)"
            )
        self.name = name
        self.group = group
        self._meter = meter
        self.idle_power_watts = idle_power_watts
        self.sleep_power_watts = sleep_power_watts
        self.wake_energy_joules = wake_energy_joules
        self._state = PowerState.IDLE
        self._wake_count = 0

    # -- power-state machine ------------------------------------------

    @property
    def state(self) -> PowerState:
        """Current power state."""
        return self._state

    @property
    def wake_count(self) -> int:
        """How many SLEEP->IDLE wake-ups have occurred (overhead metric)."""
        return self._wake_count

    def transition(self, target: PowerState, tag: str = "event") -> None:
        """Move to ``target``, charging wake energy when leaving SLEEP."""
        if target == self._state:
            return
        legal = _LEGAL_TRANSITIONS[self._state]
        if target not in legal:
            raise PowerStateError(
                f"{self.name!r}: illegal transition {self._state.name} -> {target.name}"
            )
        if self._state == PowerState.SLEEP and target == PowerState.IDLE:
            self._wake_count += 1
            self.charge(self.wake_energy_joules, tag=tag)
        self._state = target

    def sleep(self, tag: str = "event") -> None:
        """Convenience: drop to SLEEP (from IDLE or ACTIVE via IDLE)."""
        if self._state == PowerState.ACTIVE:
            self.transition(PowerState.IDLE, tag=tag)
        if self._state != PowerState.SLEEP:
            self.transition(PowerState.SLEEP, tag=tag)

    def wake(self, tag: str = "event") -> None:
        """Convenience: rise to IDLE from SLEEP or OFF."""
        if self._state in (PowerState.SLEEP, PowerState.OFF):
            self.transition(PowerState.IDLE, tag=tag)

    # -- energy accounting --------------------------------------------

    def charge(self, joules: float, tag: str = "event") -> None:
        """Charge active energy to the shared meter under this component."""
        self._meter.charge(self.name, self.group, joules, tag=tag)

    def accrue_background(self, seconds: float, tag: str = "idle") -> float:
        """Integrate background (leakage) power over ``seconds``.

        Returns the joules charged so callers can assert on it.
        """
        if seconds < 0:
            raise ValueError(f"{self.name!r}: negative background interval {seconds}")
        if self._state in (PowerState.IDLE, PowerState.ACTIVE):
            watts = self.idle_power_watts
        elif self._state == PowerState.SLEEP:
            watts = self.sleep_power_watts
        else:
            watts = 0.0
        joules = watts * seconds
        if joules > 0:
            self.charge(joules, tag=tag)
        return joules

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, state={self._state.name})"
