"""Physical input sensors.

Sensors are cheap relative to the rest of the SoC — the paper's Fig. 2
shows sensors + memory below 10% of total energy, which is why the paper
argues that sensor-level optimizations (e.g. low-fidelity modes [13])
cannot move the needle. We model each sensor as a per-sample energy
charge; the *values* sensed come from the user-behaviour model, not from
the sensor object, keeping hardware and workload concerns separate.
"""

from __future__ import annotations

from repro.soc.component import ComponentGroup, HardwareComponent
from repro.soc.energy import EnergyMeter
from repro.soc.power_profiles import SensorProfile


class Sensor(HardwareComponent):
    """One physical sensor charging a fixed energy per sample."""

    def __init__(self, name: str, meter: EnergyMeter, profile: SensorProfile) -> None:
        super().__init__(
            name=name,
            group=ComponentGroup.SENSOR,
            meter=meter,
            idle_power_watts=profile.idle_power_watts,
        )
        self._profile = profile
        self._samples = 0

    @property
    def profile(self) -> SensorProfile:
        """The constant set this sensor was built with."""
        return self._profile

    @property
    def sample_count(self) -> int:
        """Total samples taken so far."""
        return self._samples

    def sample(self, tag: str = "event") -> float:
        """Take one reading; returns the energy charged."""
        self.wake(tag=tag)
        energy = self._profile.sample_energy_joules
        self.charge(energy, tag=tag)
        self._samples += 1
        return energy


class TouchPanel(Sensor):
    """Capacitive touch digitizer (touch / swipe / multi-touch input)."""


class Gyroscope(Sensor):
    """Rotation-rate sensor (tilt input)."""


class Accelerometer(Sensor):
    """Linear-acceleration sensor (shake / movement input)."""


class GpsReceiver(Sensor):
    """GNSS receiver — per-fix energy is orders of magnitude above MEMS."""


class CameraSensor(Sensor):
    """Image sensor feeding the ISP; per-sample = one raw frame readout."""
