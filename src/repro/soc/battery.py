"""Battery model and drain-time projection.

The paper's Fig. 3 reports how long each game takes to drain a 100%
charged 3450 mAh pack (idle phone ~20 h, Race Kings ~3 h). The model
here converts an observed average power into that projection and also
supports step-wise draining during long simulated sessions.
"""

from __future__ import annotations

from repro.errors import BatteryDepletedError
from repro.units import SECONDS_PER_HOUR, mah_to_joules

#: Pixel XL pack capacity used throughout the paper.
PIXEL_XL_CAPACITY_MAH = 3450.0


class Battery:
    """A battery pack tracked in joules.

    Parameters
    ----------
    capacity_mah:
        Rated capacity; converted to joules at the nominal pack voltage.
    """

    def __init__(self, capacity_mah: float = PIXEL_XL_CAPACITY_MAH) -> None:
        if capacity_mah <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mah}")
        self.capacity_mah = capacity_mah
        self.capacity_joules = mah_to_joules(capacity_mah)
        self._drained_joules = 0.0

    @property
    def drained_joules(self) -> float:
        """Energy removed from the pack so far."""
        return self._drained_joules

    @property
    def remaining_joules(self) -> float:
        """Energy still available."""
        return max(0.0, self.capacity_joules - self._drained_joules)

    @property
    def remaining_fraction(self) -> float:
        """State of charge in 0..1."""
        return self.remaining_joules / self.capacity_joules

    @property
    def is_depleted(self) -> bool:
        """True once the pack has hit 0%."""
        return self.remaining_joules <= 0.0

    def drain(self, joules: float) -> None:
        """Remove ``joules`` from the pack.

        Raises
        ------
        BatteryDepletedError
            If the pack is already empty. A drain that *crosses* zero is
            allowed and clamps, mirroring a phone shutting down mid-use.
        """
        if joules < 0:
            raise ValueError(f"cannot drain negative energy: {joules}")
        if self.is_depleted and joules > 0:
            raise BatteryDepletedError(
                f"battery already depleted (capacity {self.capacity_mah} mAh)"
            )
        self._drained_joules = min(self.capacity_joules, self._drained_joules + joules)

    def recharge_full(self) -> None:
        """Reset to 100% (used between experiment runs)."""
        self._drained_joules = 0.0

    def hours_to_empty(self, average_watts: float) -> float:
        """Project full-capacity drain time at a constant power draw.

        This is the paper's Fig. 3 metric: measure a game for 5–10
        minutes, then extrapolate to the full 3450 mAh.
        """
        if average_watts <= 0:
            raise ValueError(f"average power must be positive, got {average_watts}")
        return self.capacity_joules / average_watts / SECONDS_PER_HOUR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Battery(capacity_mah={self.capacity_mah}, "
            f"remaining={self.remaining_fraction:.1%})"
        )
