"""Per-component energy ledger.

Every hardware component charges its activity here. The ledger keys each
charge by ``(component, group, tag)`` so the experiment drivers can slice
the same data three ways:

* by **component** (``"gpu"``, ``"big_cpu"``) for detailed debugging;
* by **group** (CPU / IPs / Memory / Sensors) for the paper's Fig. 2
  breakdown;
* by **tag** (``"event"``, ``"lookup"``, ``"idle"``) for the Fig. 11c
  overhead accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.soc.component import ComponentGroup

#: Charge tag for regular event-processing work.
TAG_EVENT = "event"
#: Charge tag for SNIP lookup-table loads and comparisons (overhead).
TAG_LOOKUP = "lookup"
#: Charge tag for idle/leakage power integrated over session time.
TAG_IDLE = "idle"


@dataclass(frozen=True)
class EnergyReport:
    """Immutable snapshot of an :class:`EnergyMeter`.

    Attributes
    ----------
    total_joules:
        Grand total over every charge.
    by_component / by_group / by_tag:
        Marginal totals along each axis.
    by_group_and_tag:
        Joint totals, used by the overhead analysis.
    """

    total_joules: float
    by_component: Mapping[str, float]
    by_group: Mapping[ComponentGroup, float]
    by_tag: Mapping[str, float]
    by_group_and_tag: Mapping[Tuple[ComponentGroup, str], float]

    def group_fraction(self, group: ComponentGroup) -> float:
        """Fraction of total energy consumed by ``group`` (0 if empty)."""
        if self.total_joules <= 0:
            return 0.0
        return self.by_group.get(group, 0.0) / self.total_joules

    def tag_fraction(self, tag: str) -> float:
        """Fraction of total energy carrying ``tag`` (0 if empty)."""
        if self.total_joules <= 0:
            return 0.0
        return self.by_tag.get(tag, 0.0) / self.total_joules


class EnergyMeter:
    """Accumulates energy charges from all components of one SoC."""

    def __init__(self) -> None:
        self._by_component: Dict[str, float] = defaultdict(float)
        self._by_group: Dict[ComponentGroup, float] = defaultdict(float)
        self._by_tag: Dict[str, float] = defaultdict(float)
        self._by_group_tag: Dict[Tuple[ComponentGroup, str], float] = defaultdict(float)
        self._total = 0.0

    def charge(
        self,
        component: str,
        group: ComponentGroup,
        joules: float,
        tag: str = TAG_EVENT,
    ) -> None:
        """Record ``joules`` of consumption.

        Negative charges are rejected — refunds would let a scheme hide
        energy it actually spent.
        """
        if joules < 0:
            raise ValueError(f"negative energy charge from {component!r}: {joules}")
        if joules == 0:
            return
        self._by_component[component] += joules
        self._by_group[group] += joules
        self._by_tag[tag] += joules
        self._by_group_tag[(group, tag)] += joules
        self._total += joules

    @property
    def total_joules(self) -> float:
        """Total energy charged so far."""
        return self._total

    def component_joules(self, component: str) -> float:
        """Energy charged by one component so far."""
        return self._by_component.get(component, 0.0)

    def group_joules(self, group: ComponentGroup) -> float:
        """Energy charged by one component group so far."""
        return self._by_group.get(group, 0.0)

    def tag_joules(self, tag: str) -> float:
        """Energy charged under one tag so far."""
        return self._by_tag.get(tag, 0.0)

    def report(self) -> EnergyReport:
        """Immutable snapshot of the current ledger."""
        return EnergyReport(
            total_joules=self._total,
            by_component=dict(self._by_component),
            by_group=dict(self._by_group),
            by_tag=dict(self._by_tag),
            by_group_and_tag=dict(self._by_group_tag),
        )

    def reset(self) -> None:
        """Clear the ledger (used between scheme runs on a shared SoC)."""
        self._by_component.clear()
        self._by_group.clear()
        self._by_tag.clear()
        self._by_group_tag.clear()
        self._total = 0.0


def merge_reports(reports: Iterable[EnergyReport]) -> EnergyReport:
    """Sum several reports into one (e.g. across session repetitions)."""
    by_component: Dict[str, float] = defaultdict(float)
    by_group: Dict[ComponentGroup, float] = defaultdict(float)
    by_tag: Dict[str, float] = defaultdict(float)
    by_group_tag: Dict[Tuple[ComponentGroup, str], float] = defaultdict(float)
    total = 0.0
    for report in reports:
        total += report.total_joules
        for key, value in report.by_component.items():
            by_component[key] += value
        for group, value in report.by_group.items():
            by_group[group] += value
        for tag, value in report.by_tag.items():
            by_tag[tag] += value
        for pair, value in report.by_group_and_tag.items():
            by_group_tag[pair] += value
    return EnergyReport(
        total_joules=total,
        by_component=dict(by_component),
        by_group=dict(by_group),
        by_tag=dict(by_tag),
        by_group_and_tag=dict(by_group_tag),
    )
