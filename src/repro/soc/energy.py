"""Per-component energy ledger.

Every hardware component charges its activity here. The ledger keys each
charge by ``(component, group, tag)`` so the experiment drivers can slice
the same data three ways:

* by **component** (``"gpu"``, ``"big_cpu"``) for detailed debugging;
* by **group** (CPU / IPs / Memory / Sensors) for the paper's Fig. 2
  breakdown;
* by **tag** (``"event"``, ``"lookup"``, ``"idle"``) for the Fig. 11c
  overhead accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.soc.component import ComponentGroup

#: Charge tag for regular event-processing work.
TAG_EVENT = "event"
#: Charge tag for SNIP lookup-table loads and comparisons (overhead).
TAG_LOOKUP = "lookup"
#: Charge tag for idle/leakage power integrated over session time.
TAG_IDLE = "idle"


@dataclass(frozen=True)
class EnergyReport:
    """Immutable snapshot of an :class:`EnergyMeter`.

    Attributes
    ----------
    total_joules:
        Grand total over every charge.
    by_component / by_group / by_tag:
        Marginal totals along each axis.
    by_group_and_tag:
        Joint totals, used by the overhead analysis.
    """

    total_joules: float
    by_component: Mapping[str, float]
    by_group: Mapping[ComponentGroup, float]
    by_tag: Mapping[str, float]
    by_group_and_tag: Mapping[Tuple[ComponentGroup, str], float]

    def group_fraction(self, group: ComponentGroup) -> float:
        """Fraction of total energy consumed by ``group`` (0 if empty)."""
        if self.total_joules <= 0:
            return 0.0
        return self.by_group.get(group, 0.0) / self.total_joules

    def tag_fraction(self, tag: str) -> float:
        """Fraction of total energy carrying ``tag`` (0 if empty)."""
        if self.total_joules <= 0:
            return 0.0
        return self.by_tag.get(tag, 0.0) / self.total_joules


class EnergyMeter:
    """Accumulates energy charges from all components of one SoC."""

    def __init__(self) -> None:
        self._by_component: Dict[str, float] = defaultdict(float)
        self._by_group: Dict[ComponentGroup, float] = defaultdict(float)
        self._by_tag: Dict[str, float] = defaultdict(float)
        self._by_group_tag: Dict[Tuple[ComponentGroup, str], float] = defaultdict(float)
        self._total = 0.0

    def charge(
        self,
        component: str,
        group: ComponentGroup,
        joules: float,
        tag: str = TAG_EVENT,
    ) -> None:
        """Record ``joules`` of consumption.

        Negative charges are rejected — refunds would let a scheme hide
        energy it actually spent.
        """
        if joules < 0:
            raise ValueError(f"negative energy charge from {component!r}: {joules}")
        if joules == 0:
            return
        self._by_component[component] += joules
        self._by_group[group] += joules
        self._by_tag[tag] += joules
        self._by_group_tag[(group, tag)] += joules
        self._total += joules

    @property
    def total_joules(self) -> float:
        """Total energy charged so far."""
        return self._total

    def component_joules(self, component: str) -> float:
        """Energy charged by one component so far."""
        return self._by_component.get(component, 0.0)

    def group_joules(self, group: ComponentGroup) -> float:
        """Energy charged by one component group so far."""
        return self._by_group.get(group, 0.0)

    def tag_joules(self, tag: str) -> float:
        """Energy charged under one tag so far."""
        return self._by_tag.get(tag, 0.0)

    def report(self) -> EnergyReport:
        """Immutable snapshot of the current ledger."""
        return EnergyReport(
            total_joules=self._total,
            by_component=dict(self._by_component),
            by_group=dict(self._by_group),
            by_tag=dict(self._by_tag),
            by_group_and_tag=dict(self._by_group_tag),
        )

    def reset(self) -> None:
        """Clear the ledger (used between scheme runs on a shared SoC)."""
        self._by_component.clear()
        self._by_group.clear()
        self._by_tag.clear()
        self._by_group_tag.clear()
        self._total = 0.0


# -- columnar fast path -------------------------------------------------

#: Process-wide interning of ``(component, group, tag)`` charge keys.
#: Key ids are an encoding detail — every folded quantity depends only
#: on the per-meter record order and the id→key metadata, so reports
#: stay byte-identical however ids were dealt across sessions or jobs.
_KEY_IDS: Dict[Tuple[str, ComponentGroup, str], int] = {}
_KEY_META: List[Tuple[str, ComponentGroup, str]] = []


def charge_key_id(component: str, group: ComponentGroup, tag: str) -> int:
    """Intern one charge key; used to precompute static cost patterns."""
    key = (component, group, tag)
    key_id = _KEY_IDS.get(key)
    if key_id is None:
        key_id = len(_KEY_META)
        _KEY_IDS[key] = key_id
        _KEY_META.append(key)
    return key_id


def _axis_fold(
    key_ids: np.ndarray,
    values: np.ndarray,
    axis_of: Dict[int, object],
) -> Dict[object, float]:
    """Grouped sums along one axis, in the scalar meter's exact order.

    For every distinct axis key (component name, group, tag, or
    group-tag pair) this folds that key's charges with a sequential
    ``np.add.accumulate`` over the records in arrival order — the same
    left-to-right float additions ``EnergyMeter.charge`` performs — and
    inserts keys in first-charge order, so ``dict(...)`` snapshots (and
    therefore pickles) are byte-identical to the scalar ledger's.
    """
    # Translate per-record key ids into dense per-axis indices with one
    # vectorized table gather; only the tiny id universe needs Python.
    max_id = int(key_ids.max())
    table = np.empty(max_id + 1, dtype=np.int64)
    axis_indices: Dict[object, int] = {}
    axis_keys: List[object] = []
    for key_id in np.unique(key_ids):
        axis_key = axis_of[int(key_id)]
        axis_index = axis_indices.get(axis_key)
        if axis_index is None:
            axis_index = axis_indices[axis_key] = len(axis_keys)
            axis_keys.append(axis_key)
        table[key_id] = axis_index
    translated = table[key_ids]
    # First-charge order decides dict insertion order, like the scalar
    # meter's defaultdicts.
    first_seen = {
        int(translated[position]): None
        for position in np.sort(
            np.unique(translated, return_index=True)[1]
        )
    }
    folded: Dict[object, float] = {}
    for axis_index in first_seen:
        bucket = values[translated == axis_index]
        folded[axis_keys[axis_index]] = float(np.add.accumulate(bucket)[-1])
    return folded


class ColumnarMeter(EnergyMeter):
    """Append-only energy ledger with a vectorized grouped fold.

    ``charge`` records ``(key id, joules)`` instead of updating four
    dicts; totals are folded lazily — per axis, with masked sequential
    ``np.add.accumulate`` sums in record order — so every float result
    and every dict insertion order is bit-identical to an
    :class:`EnergyMeter` fed the same charges. The batched dispatch
    layer also pours precomputed static cost patterns straight into the
    record columns via :meth:`extend`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._key_ids: List[int] = []
        self._values: List[float] = []
        self._fold_cache: Tuple[int, EnergyReport] = (-1, None)  # type: ignore[assignment]

    def charge(
        self,
        component: str,
        group: ComponentGroup,
        joules: float,
        tag: str = TAG_EVENT,
    ) -> None:
        if joules < 0:
            raise ValueError(f"negative energy charge from {component!r}: {joules}")
        if joules == 0:
            return
        self._key_ids.append(charge_key_id(component, group, tag))
        self._values.append(joules)

    def extend(self, pattern: Sequence[Tuple[int, float]]) -> None:
        """Append a precomputed (key id, joules) charge pattern.

        Patterns are recorded from real scalar charge sequences (see
        :class:`repro.android.dispatch.SessionCostModel`), so they carry
        no zero or negative charges by construction.
        """
        self._key_ids.extend(item[0] for item in pattern)
        self._values.extend(item[1] for item in pattern)

    # -- folded views ---------------------------------------------------

    def _folded(self) -> EnergyReport:
        count = len(self._values)
        cached_count, cached = self._fold_cache
        if cached_count == count:
            return cached
        if count == 0:
            report = EnergyReport(
                total_joules=0.0, by_component={}, by_group={},
                by_tag={}, by_group_and_tag={},
            )
        else:
            key_ids = np.asarray(self._key_ids, dtype=np.int64)
            values = np.asarray(self._values, dtype=np.float64)
            meta = _KEY_META
            report = EnergyReport(
                total_joules=float(np.add.accumulate(values)[-1]),
                by_component=_axis_fold(
                    key_ids, values, {i: key[0] for i, key in enumerate(meta)}
                ),
                by_group=_axis_fold(
                    key_ids, values, {i: key[1] for i, key in enumerate(meta)}
                ),
                by_tag=_axis_fold(
                    key_ids, values, {i: key[2] for i, key in enumerate(meta)}
                ),
                by_group_and_tag=_axis_fold(
                    key_ids, values, {i: (key[1], key[2]) for i, key in enumerate(meta)}
                ),
            )
        self._fold_cache = (count, report)
        return report

    @property
    def total_joules(self) -> float:
        return self._folded().total_joules

    def component_joules(self, component: str) -> float:
        return self._folded().by_component.get(component, 0.0)

    def group_joules(self, group: ComponentGroup) -> float:
        return self._folded().by_group.get(group, 0.0)

    def tag_joules(self, tag: str) -> float:
        return self._folded().by_tag.get(tag, 0.0)

    def report(self) -> EnergyReport:
        return self._folded()

    def reset(self) -> None:
        super().reset()
        self._key_ids.clear()
        self._values.clear()
        self._fold_cache = (-1, None)  # type: ignore[assignment]


def merge_reports(reports: Iterable[EnergyReport]) -> EnergyReport:
    """Sum several reports into one (e.g. across session repetitions)."""
    by_component: Dict[str, float] = defaultdict(float)
    by_group: Dict[ComponentGroup, float] = defaultdict(float)
    by_tag: Dict[str, float] = defaultdict(float)
    by_group_tag: Dict[Tuple[ComponentGroup, str], float] = defaultdict(float)
    total = 0.0
    for report in reports:
        total += report.total_joules
        for key, value in report.by_component.items():
            by_component[key] += value
        for group, value in report.by_group.items():
            by_group[group] += value
        for tag, value in report.by_tag.items():
            by_tag[tag] += value
        for pair, value in report.by_group_and_tag.items():
            by_group_tag[pair] += value
    return EnergyReport(
        total_joules=total,
        by_component=dict(by_component),
        by_group=dict(by_group),
        by_tag=dict(by_tag),
        by_group_and_tag=dict(by_group_tag),
    )
