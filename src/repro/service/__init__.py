"""Continuous SNIP serving: the profile -> train -> ship daemon.

The batch drivers run the paper's pipeline once; this package runs it
as a *service*. Each cycle ingests device mispredict reports from a
replayable on-disk queue, re-profiles with the cached cloud profiler,
publishes the candidate into the package registry, runs the promotion
or staged-rollout pass, and ships the refreshed champion back to the
simulated fleet — whose miss reports feed the next cycle. Every cycle
is journalled in a :class:`~repro.service.ledger.CycleLedger`, so the
daemon can be killed at any point and resumed to a byte-identical
ledger (see ``docs/SERVICE.md`` for the crash-resume contract).
"""

from repro.service.daemon import ServiceConfig, ServiceResult, SnipService
from repro.service.ledger import CycleLedger
from repro.service.reports import DeviceReport, ReportBatch, ReportQueue
from repro.service.shipping import ShipDecision, ship_cycle

__all__ = [
    "CycleLedger",
    "DeviceReport",
    "ReportBatch",
    "ReportQueue",
    "ServiceConfig",
    "ServiceResult",
    "ShipDecision",
    "SnipService",
    "ship_cycle",
]
