"""Shared publish -> promote shipping pass.

One learning cycle's table does not ship blind: it is published into
the registry (content-deduplicated) and judged by the gated promotion
pass. This module is the single implementation of that sequence, used
by the fig12 batch driver and the ``serve`` daemon's offline path, so
both record identical verdicts for identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import SnipConfig
from repro.registry.promotion import PromotionPolicy
from repro.registry.records import PackageMetrics
from repro.registry.store import PackageRegistry


@dataclass(frozen=True)
class ShipDecision:
    """What one shipping pass concluded about a candidate package."""

    version: int        # registry version the candidate landed on (or hit)
    digest: str
    shipped: bool       # did the candidate become the champion?
    created: bool       # False when the digest deduplicated to an entry
    reasons: Tuple[str, ...]  # why it was not shipped (empty on ship)


def ship_cycle(
    registry: PackageRegistry,
    game_name: str,
    config: SnipConfig,
    package,
    metrics: PackageMetrics,
    policy: PromotionPolicy,
    source: str,
    source_digest: Optional[str] = None,
) -> ShipDecision:
    """Publish one candidate and run it through gated promotion.

    A digest the slot already holds is not re-judged: nothing new can
    ship, and re-promoting the deduplicated entry would churn its
    recorded decision. Both branches are idempotent, so replaying a
    cycle (fig12 against a reused registry, a resumed daemon) yields
    the same decision and byte-identical registry state.
    """
    entry, created = registry.publish(
        game_name,
        config,
        package,
        metrics,
        source=source,
        source_digest=source_digest,
    )
    if not created:
        # Identical table to an earlier cycle: nothing new ships.
        return ShipDecision(
            version=entry.version,
            digest=entry.digest,
            shipped=False,
            created=False,
            reasons=(f"identical to registered version {entry.version}",),
        )
    verdict = registry.promote(
        game_name, config, version=entry.version, policy=policy
    )
    return ShipDecision(
        version=entry.version,
        digest=entry.digest,
        shipped=verdict.promoted,
        created=True,
        reasons=verdict.reasons,
    )
