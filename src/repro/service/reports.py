"""The replayable on-disk device-report queue.

Devices (simulated by the ship-stage fleet) report per-session probe
outcomes — hits, misses, event counts — and the daemon's ingest stage
consumes them to decide which sessions to re-profile. The queue is a
directory of numbered batch files, written atomically and deleted only
on acknowledgement, so a daemon killed between producing and consuming
a batch replays it instead of losing it.

Batches carry a ``sequence`` chosen by the producer (the daemon uses
its cycle index), which makes re-enqueueing after a crash an idempotent
overwrite with identical bytes rather than a duplicate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.service.ledger import atomic_write, canonical_json

#: Bump on incompatible changes to the batch-file layout.
BATCH_FORMAT_VERSION = 1

_BATCH_PREFIX = "batch_"
_BATCH_SUFFIX = ".json"


@dataclass(frozen=True)
class DeviceReport:
    """What one device uplinks to the service after its sessions."""

    device_id: int
    archetype: str
    cohort: str
    sessions: int
    events: int
    hits: int
    misses: int

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "device_id": self.device_id,
            "archetype": self.archetype,
            "cohort": self.cohort,
            "sessions": self.sessions,
            "events": self.events,
            "hits": self.hits,
            "misses": self.misses,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DeviceReport":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                device_id=int(payload["device_id"]),
                archetype=str(payload["archetype"]),
                cohort=str(payload["cohort"]),
                sessions=int(payload["sessions"]),
                events=int(payload["events"]),
                hits=int(payload["hits"]),
                misses=int(payload["misses"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed device report: {exc}") from exc

    @classmethod
    def from_result(cls, result) -> "DeviceReport":
        """Distil one fleet :class:`~repro.fleet.work.DeviceResult`."""
        return cls(
            device_id=result.device_id,
            archetype=result.archetype,
            cohort=result.cohort,
            sessions=result.sessions,
            events=result.events,
            hits=result.hits,
            misses=result.misses,
        )


@dataclass(frozen=True)
class ReportBatch:
    """One queue entry: every device report from one producing cycle."""

    sequence: int
    producer_cycle: int
    reports: Tuple[DeviceReport, ...]

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "format_version": BATCH_FORMAT_VERSION,
            "sequence": self.sequence,
            "producer_cycle": self.producer_cycle,
            "reports": [report.to_dict() for report in self.reports],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReportBatch":
        """Inverse of :meth:`to_dict`."""
        if payload.get("format_version") != BATCH_FORMAT_VERSION:
            raise ServiceError(
                f"unsupported report-batch format "
                f"{payload.get('format_version')!r}"
            )
        try:
            return cls(
                sequence=int(payload["sequence"]),
                producer_cycle=int(payload["producer_cycle"]),
                reports=tuple(
                    DeviceReport.from_dict(report)
                    for report in payload["reports"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed report batch: {exc}") from exc


class ReportQueue:
    """Directory-backed batch queue with at-least-once delivery."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, sequence: int) -> Path:
        """The file holding one batch."""
        return self.root / f"{_BATCH_PREFIX}{sequence:08d}{_BATCH_SUFFIX}"

    def enqueue(
        self,
        reports: Sequence[DeviceReport],
        producer_cycle: int,
        sequence: int,
    ) -> ReportBatch:
        """Write one batch atomically.

        An existing file at the same sequence is overwritten — the
        producer owns its sequence numbers, so a crash-replayed enqueue
        lands the same bytes instead of duplicating the batch.
        """
        batch = ReportBatch(
            sequence=sequence,
            producer_cycle=producer_cycle,
            reports=tuple(reports),
        )
        atomic_write(
            self.path(sequence), canonical_json(batch.to_dict()).encode("utf-8")
        )
        return batch

    def pending(self) -> List[int]:
        """Unacknowledged batch sequences, oldest first."""
        sequences = []
        for path in self.root.glob(f"{_BATCH_PREFIX}*{_BATCH_SUFFIX}"):
            stem = path.name[len(_BATCH_PREFIX):-len(_BATCH_SUFFIX)]
            try:
                sequences.append(int(stem))
            except ValueError:
                raise ServiceError(f"stray file in report queue: {path}") from None
        return sorted(sequences)

    def depth(self) -> int:
        """How many batches are waiting (the backpressure signal)."""
        return len(self.pending())

    def load(self, sequence: int) -> ReportBatch:
        """Read one pending batch."""
        path = self.path(sequence)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ServiceError(f"unreadable report batch {path}: {exc}") from exc
        batch = ReportBatch.from_dict(payload)
        if batch.sequence != sequence:
            raise ServiceError(
                f"report batch {path} carries sequence {batch.sequence}"
            )
        return batch

    def ack(self, sequence: int) -> None:
        """Acknowledge (delete) one batch; already-gone is a no-op.

        Idempotence matters for resume: the ingest stage acks its
        claimed sequences after journalling them, so a replayed ingest
        re-acks sequences that may already be deleted.
        """
        try:
            self.path(sequence).unlink()
        except OSError:
            pass
