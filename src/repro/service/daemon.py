"""The ``repro-snip serve`` supervisor loop.

Each cycle runs five stages — ingest, profile, publish, plan, ship —
and journals every stage's outcome in the run directory's
:class:`~repro.service.ledger.CycleLedger` before moving on:

ingest
    Claim up to ``max_batches_per_cycle`` pending report batches from
    the on-disk queue (a deeper backlog is *merged* into later cycles —
    the backpressure rule), and adopt the worst-missing devices'
    sessions as new profile seeds.
profile
    Re-run the cloud profiler over the base corpus plus the adopted
    seeds. The profiler is content-cached, so an unchanged corpus is a
    cache hit and a resumed cycle rebuilds the identical package.
publish
    Measure the candidate on a held-out session and publish it into
    the package registry (digest-deduplicated).
plan
    Decide how to ship, *from the ledger's own champion lineage* (never
    the live registry, which a crash may have left mid-mutation):
    steady (candidate already champion), offline gated promotion, or a
    staged rollout when a challenger fraction is configured.
ship
    Run the fleet with the shipped package(s) — checkpointed per
    cycle, so a killed ship resumes shard-by-shard — apply the rollout
    verdict if any, and enqueue the devices' miss reports for the next
    cycle's ingest.

Every stage either *executes then records*, or — when its record
already exists — *replays* from the ledger. All side effects ahead of
a record are idempotent (cached profile, deduplicating publish,
idempotent promotion, sequence-keyed enqueue), which is what makes a
kill at any point resumable to a byte-identical ledger. SIGTERM and
SIGINT set a flag checked between stages: the daemon stops cleanly at
the next stage boundary, leaving a resumable run directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import shutil
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.config import SnipConfig
from repro.core.package_cache import package_digest
from repro.core.profiler import CloudProfiler, SnipPackage
from repro.errors import ServiceError
from repro.fleet.engine import (
    DEFAULT_MAX_LIVE_SHARDS,
    FleetEngine,
    peak_rss_bytes,
)
from repro.fleet.executors import FleetExecutor
from repro.fleet.spec import FleetSpec
from repro.fleet.telemetry import (
    CYCLE_FINISHED,
    CYCLE_STARTED,
    PEAK_RSS,
    QUEUE_DEPTH,
    STAGE_FINISHED,
    TelemetryBus,
    TelemetryEvent,
)
from repro.fleet.work import DeviceResult, ShardResult
from repro.registry.metrics import measure_package
from repro.registry.promotion import PromotionPolicy
from repro.registry.rollout import judge_cohorts
from repro.registry.store import PackageRegistry
from repro.service.ledger import CycleLedger, canonical_json, exclusive_create
from repro.service.reports import DeviceReport, ReportQueue

#: Bump on incompatible changes to the run-directory layout.
SERVICE_FORMAT_VERSION = 1

MANIFEST_NAME = "service.json"
LEDGER_NAME = "ledger.json"
QUEUE_DIR = "queue"
FLEET_DIR = "fleet"
REGISTRY_DIR = "registry"

#: Stage names, in execution order.
STAGE_INGEST = "ingest"
STAGE_PROFILE = "profile"
STAGE_PUBLISH = "publish"
STAGE_PLAN = "plan"
STAGE_SHIP = "ship"
STAGES = (STAGE_INGEST, STAGE_PROFILE, STAGE_PUBLISH, STAGE_PLAN, STAGE_SHIP)

#: Plan modes.
MODE_STEADY = "steady"      # candidate is already the champion
MODE_OFFLINE = "offline"    # metric-gated promotion before the fleet
MODE_ROLLOUT = "rollout"    # champion/challenger cohort split


class _StopRequested(Exception):
    """Internal: a signal asked the supervisor to stop at a boundary."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one service run depends on (pinned in the manifest).

    The daemon's outputs — ledger, registry state, report batches —
    are pure functions of this config plus the policy; job counts,
    executors, and restarts never change them.
    """

    game_name: str
    devices: int = 8
    sessions_per_device: int = 1
    session_duration_s: float = 5.0
    seed: int = 0
    shard_size: int = 4
    #: Profiling corpus: the developer's base seeds plus a sliding
    #: window of seeds adopted from the worst-missing devices.
    base_profile_seeds: Tuple[int, ...] = (1,)
    profile_duration_s: float = 8.0
    max_profile_seeds: int = 8
    seeds_per_cycle: int = 1
    #: Backpressure: a cycle ingests at most this many queued batches;
    #: a deeper backlog is merged into subsequent cycles.
    max_batches_per_cycle: int = 4
    #: Early cycles promote with permissive floors, reproducing the
    #: paper's bootstrap from an insufficient initial profile.
    ungated_cycles: int = 1
    #: 0 ships offline-gated promotions; > 0 runs a staged rollout
    #: dealing this fleet fraction into the challenger cohort.
    challenger_fraction: float = 0.0
    #: The ship fleet always runs the SNIP pass (misses feed ingest);
    #: this gates the candidate's held-out *energy* measurement, the
    #: expensive half of publish.
    measure_candidate_energy: bool = False
    eval_seed: int = 7919
    eval_duration_s: float = 20.0

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ServiceError(f"devices must be positive, got {self.devices}")
        if self.session_duration_s <= 0 or self.profile_duration_s <= 0:
            raise ServiceError("durations must be positive")
        if self.eval_duration_s <= 0:
            raise ServiceError("eval_duration_s must be positive")
        if not self.base_profile_seeds:
            raise ServiceError("base_profile_seeds must not be empty")
        if self.max_profile_seeds < len(self.base_profile_seeds):
            raise ServiceError(
                "max_profile_seeds must cover the base corpus "
                f"({len(self.base_profile_seeds)} seeds)"
            )
        if self.seeds_per_cycle < 0:
            raise ServiceError(
                f"seeds_per_cycle must be non-negative, got {self.seeds_per_cycle}"
            )
        if self.max_batches_per_cycle < 1:
            raise ServiceError(
                f"max_batches_per_cycle must be positive, "
                f"got {self.max_batches_per_cycle}"
            )
        if self.ungated_cycles < 0:
            raise ServiceError(
                f"ungated_cycles must be non-negative, got {self.ungated_cycles}"
            )
        if not 0.0 <= self.challenger_fraction <= 1.0:
            raise ServiceError(
                f"challenger_fraction must be within [0, 1], "
                f"got {self.challenger_fraction}"
            )

    def fingerprint(self, policy: PromotionPolicy) -> str:
        """Stable digest of the (config, policy) pair a run dir serves."""
        payload = {
            "format_version": SERVICE_FORMAT_VERSION,
            "config": dataclasses.asdict(self),
            "policy": dataclasses.asdict(policy),
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class ServiceResult:
    """What one :meth:`SnipService.run` invocation accomplished."""

    cycles_completed: int
    stopped: bool           # a signal ended the run at a stage boundary
    run_dir: Path
    ledger_path: Path


def service_progress_printer(out) -> Callable[[TelemetryEvent], None]:
    """A subscriber rendering one line per daemon lifecycle event.

    Intended for stderr: ``serve --format json`` keeps stdout as a
    single parseable document while this narrates the cycles.
    """

    def _print(event: TelemetryEvent) -> None:
        if event.kind == CYCLE_STARTED:
            print(
                f"[serve] cycle {event.payload.get('cycle', '?')} started "
                f"(queue depth {event.payload.get('queue_depth', '?')})",
                file=out,
            )
        elif event.kind == STAGE_FINISHED:
            print(
                f"[serve] cycle {event.payload.get('cycle', '?')} "
                f"{event.payload.get('stage', '?')} done "
                f"({event.payload.get('wall_s', 0.0):.2f}s)",
                file=out,
            )
        elif event.kind == CYCLE_FINISHED:
            verdict = event.payload.get("mode", "?")
            promoted = event.payload.get("promoted")
            print(
                f"[serve] cycle {event.payload.get('cycle', '?')} finished "
                f"({verdict}, "
                f"{'promoted' if promoted else 'champion kept'}, "
                f"{event.payload.get('wall_s', 0.0):.2f}s)",
                file=out,
            )

    return _print


class SnipService:
    """The continuous profile -> train -> ship supervisor."""

    def __init__(
        self,
        config: ServiceConfig,
        run_dir: Union[str, Path],
        snip_config: Optional[SnipConfig] = None,
        policy: Optional[PromotionPolicy] = None,
        registry: Optional[PackageRegistry] = None,
        executor: Optional[FleetExecutor] = None,
        telemetry: Optional[TelemetryBus] = None,
        max_live_shards: int = DEFAULT_MAX_LIVE_SHARDS,
        stage_hook: Optional[Callable[[int, str, str], None]] = None,
    ) -> None:
        """``stage_hook(cycle, stage, phase)`` fires around live stages.

        ``phase`` is ``"pre"`` before a stage executes and ``"post"``
        after its ledger record lands; replayed stages skip the hook.
        The crash-resume tests use it to kill the daemon at precise
        points.
        """
        self.config = config
        self.run_dir = Path(run_dir)
        self.snip_config = snip_config or SnipConfig()
        self.policy = policy or PromotionPolicy()
        self.executor = executor
        self.telemetry = telemetry or TelemetryBus()
        self.max_live_shards = max_live_shards
        self.stage_hook = stage_hook
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._init_manifest()
        self.registry = registry or PackageRegistry(self.run_dir / REGISTRY_DIR)
        self.ledger = CycleLedger(self.run_dir / LEDGER_NAME)
        self.queue = ReportQueue(self.run_dir / QUEUE_DIR)
        #: In-memory package staging between profile and publish/ship;
        #: resume falls back to the cache, then to rebuilding.
        self._packages: Dict[str, SnipPackage] = {}
        self._stop = False
        self._previous_handlers: Dict[int, Any] = {}

    # -- run directory -----------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Where the run manifest lives."""
        return self.run_dir / MANIFEST_NAME

    @property
    def ledger_path(self) -> Path:
        """Where the cycle ledger lives."""
        return self.run_dir / LEDGER_NAME

    def _init_manifest(self) -> None:
        fingerprint = self.config.fingerprint(self.policy)
        if not self.manifest_path.exists():
            manifest = {
                "format_version": SERVICE_FORMAT_VERSION,
                "fingerprint": fingerprint,
                "config": dataclasses.asdict(self.config),
                "policy": dataclasses.asdict(self.policy),
            }
            try:
                exclusive_create(
                    self.manifest_path,
                    canonical_json(manifest).encode("utf-8"),
                )
                return
            except FileExistsError:
                pass  # lost a create race; validate the winner's below
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"unreadable service manifest {self.manifest_path}: {exc}"
            ) from exc
        if manifest.get("format_version") != SERVICE_FORMAT_VERSION:
            raise ServiceError(
                f"service run format {manifest.get('format_version')!r} does "
                f"not match this build ({SERVICE_FORMAT_VERSION})"
            )
        if manifest.get("fingerprint") != fingerprint:
            raise ServiceError(
                f"run dir {self.run_dir} was created for a different service "
                f"config or promotion policy; use a fresh --run-dir or the "
                f"original parameters"
            )

    # -- signals -----------------------------------------------------------

    def _handle_signal(self, signum, frame) -> None:
        self._stop = True

    def _install_signals(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous_handlers[signum] = signal.signal(
                    signum, self._handle_signal
                )
            except ValueError:
                pass  # not the main thread (tests drive run() directly)

    def _restore_signals(self) -> None:
        for signum, handler in self._previous_handlers.items():
            try:
                signal.signal(signum, handler)
            except ValueError:
                pass
        self._previous_handlers.clear()

    # -- supervisor loop ---------------------------------------------------

    def run(self, cycles: Optional[int] = None) -> ServiceResult:
        """Run until ``cycles`` total cycles are complete (or a signal).

        ``cycles`` counts *completed cycles in the ledger*, so resuming
        an interrupted ``run(cycles=4)`` finishes the in-flight cycle
        and stops at the same place the uninterrupted run would have.
        ``None`` loops until SIGTERM/SIGINT.
        """
        self._stop = False
        self._install_signals()
        stopped = False
        try:
            while not self._stop:
                if cycles is not None and self.ledger.completed_count() >= cycles:
                    break
                try:
                    self._run_cycle(self.ledger.next_index())
                except _StopRequested:
                    stopped = True
                    break
            else:
                stopped = True
        finally:
            self._restore_signals()
        return ServiceResult(
            cycles_completed=self.ledger.completed_count(),
            stopped=stopped,
            run_dir=self.run_dir,
            ledger_path=self.ledger_path,
        )

    def _run_cycle(self, index: int) -> None:
        self.ledger.begin_cycle(index)
        depth = self.queue.depth()
        started = self.telemetry.elapsed_seconds()
        self.telemetry.emit(CYCLE_STARTED, cycle=index, queue_depth=depth)
        self.telemetry.emit(QUEUE_DEPTH, depth=depth)
        ingest = self._stage(index, STAGE_INGEST, lambda: self._ingest())
        # Ack outside the stage body so both fresh and replayed ingests
        # clear their claimed batches (ack is idempotent).
        for sequence in ingest["batches"]:
            self.queue.ack(sequence)
        profile = self._stage(
            index, STAGE_PROFILE, lambda: self._profile(index)
        )
        publish = self._stage(
            index, STAGE_PUBLISH, lambda: self._publish(profile)
        )
        plan = self._stage(
            index, STAGE_PLAN, lambda: self._plan(index, publish)
        )
        ship = self._stage(index, STAGE_SHIP, lambda: self._ship(index, plan))
        self.ledger.complete_cycle(index)
        shutil.rmtree(self._cycle_checkpoint_dir(index), ignore_errors=True)
        self._packages.clear()
        self.telemetry.emit(PEAK_RSS, bytes=peak_rss_bytes())
        self.telemetry.emit(
            CYCLE_FINISHED,
            cycle=index,
            mode=ship["mode"],
            promoted=ship["promoted"],
            champion_version=ship["champion_version_after"],
            wall_s=self.telemetry.elapsed_seconds() - started,
        )

    def _stage(
        self, index: int, name: str, execute: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Replay a recorded stage, or execute-and-record a fresh one."""
        recorded = self.ledger.stage(index, name)
        if recorded is not None:
            return recorded
        if self._stop:
            raise _StopRequested()
        if self.stage_hook is not None:
            self.stage_hook(index, name, "pre")
        started = self.telemetry.elapsed_seconds()
        payload = self.ledger.record_stage(index, name, execute())
        if self.stage_hook is not None:
            self.stage_hook(index, name, "post")
        self.telemetry.emit(
            STAGE_FINISHED,
            cycle=index,
            stage=name,
            wall_s=self.telemetry.elapsed_seconds() - started,
        )
        return payload

    # -- stages ------------------------------------------------------------

    def _ingest(self) -> Dict[str, Any]:
        """Claim queued report batches and adopt re-profiling seeds."""
        pending = self.queue.pending()
        claimed = pending[: self.config.max_batches_per_cycle]
        reports: List[DeviceReport] = []
        for sequence in claimed:
            reports.extend(self.queue.load(sequence).reports)
        offenders = sorted(
            (report for report in reports if report.misses > 0),
            key=lambda report: (-report.misses, report.device_id),
        )
        adopted = [
            {
                "device_id": report.device_id,
                "misses": report.misses,
                "seed": self._adopted_seed(report.device_id),
            }
            for report in offenders[: self.config.seeds_per_cycle]
        ]
        return {
            "batches": claimed,
            "deferred": len(pending) - len(claimed),
            "queue_depth": len(pending),
            "reports": len(reports),
            "adopted": adopted,
        }

    def _adopted_seed(self, device_id: int) -> int:
        """Trace seed for re-profiling one device's sessions.

        A pure hash of ``(config.seed, device_id)``, offset well away
        from the small hand-picked base seeds.
        """
        digest = hashlib.blake2b(
            f"serve-adopt:{self.config.seed}:{device_id}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return 100_000 + int.from_bytes(digest, "big") % 1_000_000

    def _profile_corpus(self, index: int) -> Tuple[int, ...]:
        """Base seeds plus the sliding window of adopted seeds."""
        seeds = list(self.config.base_profile_seeds)
        for cycle in range(index + 1):
            record = self.ledger.stage(cycle, STAGE_INGEST)
            if record is None:
                continue
            for adopted in record["adopted"]:
                if adopted["seed"] not in seeds:
                    seeds.append(adopted["seed"])
        overflow = len(seeds) - self.config.max_profile_seeds
        if overflow > 0:
            # Evict the oldest *adopted* seeds; the base corpus stays.
            base = len(self.config.base_profile_seeds)
            seeds = seeds[:base] + seeds[base + overflow:]
        return tuple(seeds)

    def _profile(self, index: int) -> Dict[str, Any]:
        """Re-run the cached profiler over this cycle's corpus."""
        seeds = self._profile_corpus(index)
        profiler = CloudProfiler(self.snip_config, cache=self.registry.cache)
        package = profiler.build_package_from_sessions(
            self.config.game_name,
            seeds=list(seeds),
            duration_s=self.config.profile_duration_s,
        )
        digest = package_digest(
            self.config.game_name,
            self.snip_config,
            list(seeds),
            self.config.profile_duration_s,
            profiler.overrides,
        )
        self._packages[digest] = package
        return {
            "digest": digest,
            "seeds": list(seeds),
            "profile_events": package.profile_events,
            "table_entries": package.table.entry_count,
            "table_bytes": package.table_bytes,
        }

    def _resolve_package(self, digest: str, seeds: List[int]) -> SnipPackage:
        """A profiled package by digest: staged, cached, or rebuilt."""
        package = self._packages.get(digest)
        if package is not None:
            return package
        package = self.registry.cache.load(digest)
        if package is None and seeds:
            # The cache was cleared between crash and resume; the
            # profile is a pure function of its recorded seeds, so
            # rebuild it (the profiler re-caches under the same key).
            profiler = CloudProfiler(self.snip_config, cache=self.registry.cache)
            package = profiler.build_package_from_sessions(
                self.config.game_name,
                seeds=list(seeds),
                duration_s=self.config.profile_duration_s,
            )
        if package is None:
            raise ServiceError(
                f"package {digest} is missing from the cache at "
                f"{self.registry.cache.root} and cannot be rebuilt"
            )
        self._packages[digest] = package
        return package

    def _registered_package(self, digest: str) -> SnipPackage:
        """A previously registered package (must be in the cache)."""
        package = self._packages.get(digest) or self.registry.cache.load(digest)
        if package is None:
            raise ServiceError(
                f"registered package {digest} is missing from the cache at "
                f"{self.registry.cache.root}"
            )
        return package

    def _publish(self, profile: Dict[str, Any]) -> Dict[str, Any]:
        """Measure the candidate on a held-out session and register it."""
        package = self._resolve_package(profile["digest"], profile["seeds"])
        metrics = measure_package(
            package,
            self.snip_config,
            eval_seed=self.config.eval_seed,
            eval_duration_s=self.config.eval_duration_s,
            measure_energy=self.config.measure_candidate_energy,
        )
        entry, _created = self.registry.publish(
            self.config.game_name,
            self.snip_config,
            package,
            metrics,
            source="serve",
            source_digest=profile["digest"],
        )
        # ``created`` is deliberately NOT journalled: a resumed publish
        # deduplicates where the original created, and the ledger must
        # not see the difference.
        return {
            "version": entry.version,
            "digest": entry.digest,
            "metrics": metrics.to_dict(),
        }

    def _champion_lineage(self, index: int) -> Tuple[Optional[int], Optional[str]]:
        """Champion (version, digest) after the last shipped cycle.

        Derived from the ledger, never the live registry: a crash can
        leave the registry mid-mutation, but the ledger only records
        completed stages, so resume plans from consistent state.
        """
        version: Optional[int] = None
        digest: Optional[str] = None
        for cycle in range(index):
            record = self.ledger.stage(cycle, STAGE_SHIP)
            if record is not None and record["champion_version_after"] is not None:
                version = record["champion_version_after"]
                digest = record["champion_digest_after"]
        return version, digest

    def _plan(self, index: int, publish: Dict[str, Any]) -> Dict[str, Any]:
        """Pick the shipping mode from ledger state alone."""
        champion_version, champion_digest = self._champion_lineage(index)
        ungated = index < self.config.ungated_cycles
        candidate_version = publish["version"]
        if champion_version is None:
            mode = MODE_OFFLINE
        elif candidate_version == champion_version:
            mode = MODE_STEADY
        elif ungated:
            mode = MODE_OFFLINE
        elif self.config.challenger_fraction > 0:
            mode = MODE_ROLLOUT
        else:
            mode = MODE_OFFLINE
        return {
            "mode": mode,
            "ungated": ungated,
            "candidate_version": candidate_version,
            "candidate_digest": publish["digest"],
            "champion_version_before": champion_version,
            "champion_digest_before": champion_digest,
        }

    def _ungated_policy(self) -> PromotionPolicy:
        """The bootstrap policy: floors open, ranking weights kept."""
        return dataclasses.replace(
            self.policy,
            min_hit_rate=0.0,
            min_selection_accuracy=0.0,
            min_energy_saved_fraction=0.0,
            max_table_bytes=0,
        )

    def _cycle_checkpoint_dir(self, index: int) -> Path:
        """Per-cycle fleet checkpoint directory (gc'd on completion)."""
        return self.run_dir / FLEET_DIR / f"cycle_{index:04d}"

    def _cycle_seed(self, index: int) -> int:
        """Per-cycle fleet seed: fresh sessions each cycle (drift)."""
        digest = hashlib.blake2b(
            f"serve-cycle:{self.config.seed}:{index}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") % 2**31

    def _fleet_spec(
        self, index: int, champion_digest: str, challenger_digest: str,
        challenger_fraction: float,
    ) -> FleetSpec:
        return FleetSpec(
            game_name=self.config.game_name,
            devices=self.config.devices,
            sessions_per_device=self.config.sessions_per_device,
            duration_s=self.config.session_duration_s,
            seed=self._cycle_seed(index),
            shard_size=self.config.shard_size,
            profile_seeds=self.config.base_profile_seeds,
            profile_duration_s=self.config.profile_duration_s,
            measure_energy=True,
            federate=False,
            challenger_fraction=challenger_fraction,
            champion_digest=champion_digest,
            challenger_digest=challenger_digest,
        )

    def _ship(self, index: int, plan: Dict[str, Any]) -> Dict[str, Any]:
        """Promote/roll out per the plan, run the fleet, queue reports."""
        mode = plan["mode"]
        game = self.config.game_name
        decision_dict: Optional[Dict[str, Any]] = None
        promoted = False
        if mode == MODE_OFFLINE:
            policy = self._ungated_policy() if plan["ungated"] else self.policy
            verdict = self.registry.promote(
                game, self.snip_config,
                version=plan["candidate_version"], policy=policy,
            )
            decision_dict = verdict.to_dict()
            promoted = verdict.promoted
        # What the champion cohort runs during this cycle's fleet:
        if promoted:
            shipped_version = plan["candidate_version"]
            shipped_digest = plan["candidate_digest"]
        elif plan["champion_version_before"] is not None:
            shipped_version = plan["champion_version_before"]
            shipped_digest = plan["champion_digest_before"]
        else:
            # Bootstrap rejection: no champion exists yet, but the
            # fleet must run *something* to generate the reports the
            # loop learns from — ship the candidate provisionally.
            shipped_version = plan["candidate_version"]
            shipped_digest = plan["candidate_digest"]
        champion_package = self._registered_package(shipped_digest)
        challenger_package: Optional[SnipPackage] = None
        fraction = 0.0
        challenger_digest = ""
        if mode == MODE_ROLLOUT:
            fraction = self.config.challenger_fraction
            challenger_digest = plan["candidate_digest"]
            challenger_package = self._registered_package(challenger_digest)
        spec = self._fleet_spec(index, shipped_digest, challenger_digest, fraction)
        collected: List[DeviceResult] = []

        def observe(shard: ShardResult) -> None:
            collected.extend(shard.device_results)

        engine = FleetEngine(
            spec,
            executor=self.executor,
            config=self.snip_config,
            telemetry=self.telemetry,
            checkpoint=self._cycle_checkpoint_dir(index),
            package=champion_package,
            challenger=challenger_package,
            max_live_shards=self.max_live_shards,
            shard_observer=observe,
        )
        report = engine.run()
        if mode == MODE_ROLLOUT:
            decision = judge_cohorts(
                challenger_version=plan["candidate_version"],
                champion_version=plan["champion_version_before"],
                cohorts=report.cohorts or {},
                policy=self.policy,
            )
            self.registry.apply_decision(game, self.snip_config, decision)
            decision_dict = decision.to_dict()
            promoted = decision.promoted
        if promoted:
            champion_after = plan["candidate_version"]
            champion_digest_after: Optional[str] = plan["candidate_digest"]
        else:
            champion_after = plan["champion_version_before"]
            champion_digest_after = plan["champion_digest_before"]
        self.queue.enqueue(
            [DeviceReport.from_result(result) for result in collected],
            producer_cycle=index,
            sequence=index,
        )
        return {
            "mode": mode,
            "promoted": promoted,
            "decision": decision_dict,
            "champion_version_after": champion_after,
            "champion_digest_after": champion_digest_after,
            "shipped_version": shipped_version,
            "shipped_digest": shipped_digest,
            "report_sequence": index,
            "devices": report.totals.devices,
            "events": report.totals.events,
            "hits": report.totals.hits,
            "misses": report.totals.misses,
            "savings": report.totals.savings,
            "hit_rate": report.totals.hit_rate,
            "spec_fingerprint": spec.fingerprint(),
        }
