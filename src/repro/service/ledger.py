"""The daemon's cycle ledger: a replayable journal of every cycle.

One ``ledger.json`` per service run directory records, for each cycle,
the payload of every completed stage. The ledger is the daemon's
single source of truth for resume: a stage whose record exists is
*replayed* from the ledger instead of re-executed, so a run killed at
any point and restarted converges on the same document.

The bytes are part of the determinism contract: canonical JSON (sorted
keys, fixed indentation, trailing newline) with **no wall-clock
fields** — wall time is telemetry, never ledger. An interrupted-and-
resumed run must produce a ledger byte-identical to an uninterrupted
one, which is what the crash-resume tests pin.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ServiceError

#: Bump on incompatible changes to the ledger document layout.
LEDGER_FORMAT_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Render a JSON document in the ledger's canonical byte form."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def canonicalize(payload: Any) -> Any:
    """Round-trip a payload through JSON so equality means byte equality.

    Tuples become lists, dict key order stops mattering, and anything
    non-serialisable (which must never reach the ledger) fails loudly
    here instead of at persist time.
    """
    try:
        return json.loads(json.dumps(payload, sort_keys=True))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"ledger payload is not JSON-serialisable: {exc}") from exc


def atomic_write(path: Path, data: bytes) -> None:
    """Write a file atomically (tmp + rename); readers never see a torn file."""
    tmp = path.with_suffix(path.suffix + f".{os.getpid()}.tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def exclusive_create(path: Path, data: bytes) -> None:
    """Publish a file exactly once across concurrent creators.

    Stages the payload under an ``O_EXCL`` temp name and links it into
    place; the loser of a create race gets :class:`FileExistsError`
    (a plain rename would silently clobber the winner).
    """
    tmp = path.with_suffix(path.suffix + f".create.{os.getpid()}.tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.link(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


class CycleLedger:
    """Persistent per-cycle stage journal for one service run."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._cycles: List[Dict[str, Any]] = []
        if self.path.exists():
            self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ServiceError(f"unreadable cycle ledger {self.path}: {exc}") from exc
        if document.get("format_version") != LEDGER_FORMAT_VERSION:
            raise ServiceError(
                f"cycle ledger format {document.get('format_version')!r} does "
                f"not match this build ({LEDGER_FORMAT_VERSION})"
            )
        cycles = document.get("cycles")
        if not isinstance(cycles, list):
            raise ServiceError(f"malformed cycle ledger {self.path}")
        for position, cycle in enumerate(cycles):
            if cycle.get("index") != position:
                raise ServiceError(
                    f"cycle ledger {self.path} is not dense at position {position}"
                )
        self._cycles = cycles

    def _persist(self) -> None:
        atomic_write(self.path, canonical_json(self.to_dict()).encode("utf-8"))

    def to_dict(self) -> Dict[str, Any]:
        """The full canonical document."""
        return {
            "format_version": LEDGER_FORMAT_VERSION,
            "cycles": self._cycles,
        }

    def to_json(self) -> str:
        """Canonical JSON rendering (the byte-identity surface)."""
        return canonical_json(self.to_dict())

    # -- cycle lifecycle ---------------------------------------------------

    @property
    def cycle_count(self) -> int:
        """Cycles begun so far (complete or not)."""
        return len(self._cycles)

    def completed_count(self) -> int:
        """Cycles marked complete."""
        return sum(1 for cycle in self._cycles if cycle.get("complete"))

    def next_index(self) -> int:
        """The cycle the daemon should run next.

        The in-flight (last, incomplete) cycle if there is one — resume
        picks up exactly where the crash happened — otherwise one past
        the last complete cycle.
        """
        if self._cycles and not self._cycles[-1].get("complete"):
            return self._cycles[-1]["index"]
        return len(self._cycles)

    def cycle(self, index: int) -> Optional[Dict[str, Any]]:
        """One cycle's record, or ``None`` if never begun."""
        if 0 <= index < len(self._cycles):
            return self._cycles[index]
        return None

    def begin_cycle(self, index: int) -> Dict[str, Any]:
        """Open (or reopen) the record for one cycle."""
        existing = self.cycle(index)
        if existing is not None:
            return existing
        if index != len(self._cycles):
            raise ServiceError(
                f"cannot begin cycle {index}: ledger holds "
                f"{len(self._cycles)} cycles"
            )
        record: Dict[str, Any] = {"index": index, "complete": False, "stages": {}}
        self._cycles.append(record)
        self._persist()
        return record

    def complete_cycle(self, index: int) -> None:
        """Mark one cycle finished (idempotent)."""
        record = self.cycle(index)
        if record is None:
            raise ServiceError(f"cannot complete cycle {index}: never begun")
        if not record["complete"]:
            record["complete"] = True
            self._persist()

    # -- stage records -----------------------------------------------------

    def stage(self, index: int, name: str) -> Optional[Any]:
        """A stage's recorded payload, or ``None`` if not yet recorded."""
        record = self.cycle(index)
        if record is None:
            return None
        return record["stages"].get(name)

    def record_stage(self, index: int, name: str, payload: Any) -> Any:
        """Journal one stage's payload; returns the canonicalised form.

        Recording is the stage's commit point: every side effect the
        stage performs must be durable (or idempotently re-executable)
        *before* this call, because a resumed run replays recorded
        stages from the ledger instead of re-running them.
        """
        record = self.cycle(index)
        if record is None:
            raise ServiceError(f"cannot record stage for cycle {index}: never begun")
        if record["complete"]:
            raise ServiceError(f"cycle {index} is already complete")
        payload = canonicalize(payload)
        record["stages"][name] = payload
        self._persist()
        return payload
