"""Unit helpers: bytes, energy, time, and human-readable formatting.

The simulator keeps raw quantities in base SI-ish units — bytes, joules,
seconds, cycles — as plain floats/ints. This module centralises the
conversion constants and the formatting used by the report renderers so
that e.g. "5 GB" in a figure means the same thing everywhere.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Typical Pixel-XL-class capacities used by the Fig. 6 feasibility lines.
TYPICAL_MEMORY_BYTES = 4 * GIB
TYPICAL_SDCARD_BYTES = 64 * GIB

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9

SECONDS_PER_HOUR = 3600.0

#: Nominal battery pack voltage used to convert mAh to joules.
BATTERY_NOMINAL_VOLTS = 3.85


def mah_to_joules(mah: float, volts: float = BATTERY_NOMINAL_VOLTS) -> float:
    """Convert a battery capacity in milliamp-hours to joules."""
    if mah < 0:
        raise ValueError(f"capacity must be non-negative, got {mah}")
    return mah * MILLI * volts * SECONDS_PER_HOUR


def joules_to_mah(joules: float, volts: float = BATTERY_NOMINAL_VOLTS) -> float:
    """Convert joules back to milliamp-hours at the nominal voltage."""
    if joules < 0:
        raise ValueError(f"energy must be non-negative, got {joules}")
    return joules / (MILLI * volts * SECONDS_PER_HOUR)


def hours(seconds: float) -> float:
    """Seconds expressed in hours."""
    return seconds / SECONDS_PER_HOUR


def format_bytes(count: float) -> str:
    """Render a byte count like ``"1.5 GB"`` (binary units).

    >>> format_bytes(1536)
    '1.5 kB'
    """
    magnitude = abs(count)
    if magnitude >= GIB:
        return f"{count / GIB:.1f} GB"
    if magnitude >= MIB:
        return f"{count / MIB:.1f} MB"
    if magnitude >= KIB:
        return f"{count / KIB:.1f} kB"
    return f"{count:.0f} B"


def format_energy(joules: float) -> str:
    """Render an energy amount with an appropriate SI prefix."""
    magnitude = abs(joules)
    if magnitude >= 1.0:
        return f"{joules:.2f} J"
    if magnitude >= MILLI:
        return f"{joules / MILLI:.2f} mJ"
    if magnitude >= MICRO:
        return f"{joules / MICRO:.2f} uJ"
    return f"{joules / NANO:.2f} nJ"


def format_duration(seconds: float) -> str:
    """Render a duration as hours/minutes/seconds depending on scale."""
    magnitude = abs(seconds)
    if magnitude >= SECONDS_PER_HOUR:
        return f"{seconds / SECONDS_PER_HOUR:.1f} h"
    if magnitude >= 60:
        return f"{seconds / 60:.1f} min"
    if magnitude >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1e3:.1f} ms"


def format_percent(fraction: float, digits: int = 1) -> str:
    """Render a 0..1 fraction as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty clamp interval [{low}, {high}]")
    return max(low, min(high, value))
