"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with right-padded columns.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(list(headers))]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in materialised)
    return "\n".join(lines)


def pct(fraction: float, digits: int = 1) -> str:
    """Format a 0..1 fraction as a percent cell."""
    return f"{fraction * 100:.{digits}f}%"
