"""Experiment drivers: one module per paper figure/table.

Each driver exposes a ``run_*`` function returning a structured result
object with a ``to_text()`` rendering; the benchmark harness calls these
and prints the same rows/series the paper reports. See DESIGN.md's
experiment index for the mapping.
"""

from repro.analysis.experiments import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
