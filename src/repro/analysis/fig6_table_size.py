"""Fig. 6: naive lookup-table size vs. execution coverage.

Paper finding (AB Evolution): keying on the union of all input
locations makes records enormous and nearly unique, so the table blows
through the phone's memory (and eventually its SD card) while covering
only a sliver of execution — ~5 GB for 1% coverage on the authors'
full-fidelity traces. Our downscaled sessions reproduce the *shape*
(multi-megabyte tables for single-digit coverage, superlinear growth);
``paper_scale_projection`` extrapolates the same per-record accounting
to the paper's trace volume to show the GB-scale blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.android.emulator import Emulator
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.memo.naive import CoveragePoint, NaiveLookupTable
from repro.units import TYPICAL_MEMORY_BYTES, TYPICAL_SDCARD_BYTES, format_bytes
from repro.users.tracegen import generate_trace

#: The paper profiles hours of play from many users against commercial
#: games whose state is far richer than our reimplementations; the
#: projection multiplies unique-record volume accordingly (documented
#: substitution, see EXPERIMENTS.md).
PAPER_SCALE_FACTOR = 800


@dataclass
class Fig6Result:
    """The naive table's (size, coverage) trajectory for one game."""

    game_name: str
    table: NaiveLookupTable
    curve: List[CoveragePoint]

    @property
    def final_bytes(self) -> int:
        """Table size after ingesting the whole profile."""
        return self.table.total_bytes

    @property
    def final_coverage(self) -> float:
        """Coverage achieved by the full table."""
        return self.table.coverage

    def bytes_at_coverage(self, coverage: float) -> Optional[int]:
        """Table size needed for a coverage level (None if unreached)."""
        try:
            return self.table.bytes_needed_for_coverage(coverage)
        except ValueError:
            return None

    def paper_scale_projection(self, point: CoveragePoint) -> int:
        """Bytes at paper-trace volume for one curve point."""
        return point.table_bytes_with_outputs * PAPER_SCALE_FACTOR

    def exceeds_memory_at(self) -> Optional[float]:
        """Coverage at which the projected table exceeds 4 GB memory."""
        for point in self.curve:
            if self.paper_scale_projection(point) > TYPICAL_MEMORY_BYTES:
                return point.coverage
        return None

    def exceeds_sdcard_at(self) -> Optional[float]:
        """Coverage at which the projected table exceeds the 64 GB card."""
        for point in self.curve:
            if self.paper_scale_projection(point) > TYPICAL_SDCARD_BYTES:
                return point.coverage
        return None

    def to_text(self) -> str:
        """Render sampled curve points."""
        step = max(1, len(self.curve) // 12)
        rows = []
        for point in self.curve[::step]:
            rows.append(
                [
                    point.events_seen,
                    f"{point.coverage * 100:.2f}%",
                    format_bytes(point.table_bytes_input_only),
                    format_bytes(point.table_bytes_with_outputs),
                    format_bytes(self.paper_scale_projection(point)),
                ]
            )
        return render_table(
            ["events", "coverage", "input only", "input+output", "paper-scale"],
            rows,
        )


def run_fig6(
    game_name: str = "ab_evolution", seed: int = 1, duration_s: float = 120.0
) -> Fig6Result:
    """Replay one session and build the naive union-of-locations table."""
    trace = generate_trace(game_name, seed=seed, duration_s=duration_s)
    records = Emulator(verify=False).replay(
        create_game(game_name, seed=GAME_CONTENT_SEED), trace
    )
    table = NaiveLookupTable(records)
    return Fig6Result(game_name=game_name, table=table, curve=table.curve)
