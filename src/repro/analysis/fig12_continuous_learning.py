"""Fig. 12: continuous learning recovers from insufficient profiles.

Paper finding (AB Evolution): when the initial profile is artificially
insufficient, SNIP short-circuits with ~40% erroneous output fields for
the first few play instances, but as the cloud loop keeps re-learning
from new sessions the error collapses below 0.1% — no developer
intervention required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import pct, render_table
from repro.core.config import SnipConfig
from repro.core.learning import ContinuousLearner, EpochResult
from repro.fleet.executors import FleetExecutor


@dataclass
class Fig12Result:
    """The error trajectory over learning epochs."""

    game_name: str
    epochs: List[EpochResult]

    @property
    def initial_error(self) -> float:
        """Error of the first (data-starved) epoch."""
        return self.epochs[0].error_fraction

    @property
    def final_error(self) -> float:
        """Error after the last epoch."""
        return self.epochs[-1].error_fraction

    @property
    def converged_epoch(self) -> Optional[int]:
        """First epoch whose error crossed the confidence threshold."""
        for result in self.epochs:
            if result.confident:
                return result.epoch
        return None

    def to_text(self) -> str:
        """Render the learning trajectory."""
        rows = [
            [
                result.epoch,
                result.training_events,
                result.table_entries,
                pct(result.hit_fraction),
                pct(result.error_fraction, 3),
                "yes" if result.confident else "no",
            ]
            for result in self.epochs
        ]
        return render_table(
            ["epoch", "train events", "entries", "hit rate",
             "% erroneous fields", "confident"],
            rows,
        )


def _epoch_task(payload: tuple) -> EpochResult:
    """Evaluate one learning epoch in isolation (picklable task).

    Every epoch's training corpus is a pure function of ``(seed,
    epoch)`` — :meth:`ContinuousLearner._epoch_seeds` — so a worker can
    rebuild the sessions of all earlier epochs locally and evaluate its
    epoch with no state from the serial loop. The per-epoch results are
    bit-identical to running the loop sequentially.
    """
    (
        game_name,
        epoch,
        session_duration_s,
        initial_events,
        ramp,
        ungated_epochs,
        config,
        seed,
    ) = payload
    learner = ContinuousLearner(
        game_name,
        config=config,
        session_duration_s=session_duration_s,
        initial_events=initial_events,
        ramp=ramp,
        ungated_epochs=ungated_epochs,
        seed=seed,
    )
    for earlier in range(epoch):
        learner.ingest_session(earlier)
    return learner.run_epoch(epoch)


def run_fig12(
    game_name: str = "ab_evolution",
    epochs: int = 8,
    session_duration_s: float = 30.0,
    initial_events: int = 60,
    ramp: float = 2.2,
    ungated_epochs: int = 2,
    config: Optional[SnipConfig] = None,
    seed: int = 0,
    executor: Optional[FleetExecutor] = None,
) -> Fig12Result:
    """Drive the continuous-learning loop and record each epoch.

    ``ungated_epochs`` reproduces the paper's artificially insufficient
    initial profile: early tables ship without the confidence gate and
    misfire heavily until real profile volume accumulates.

    With an ``executor``, the epochs are evaluated in parallel workers
    (each regenerating the earlier epochs' sessions from seeds) and the
    trajectory is reassembled in epoch order — same numbers, shorter
    wall clock.
    """
    if executor is not None and executor.jobs > 1:
        results = executor.run(
            _epoch_task,
            [
                (
                    game_name,
                    epoch,
                    session_duration_s,
                    initial_events,
                    ramp,
                    ungated_epochs,
                    config,
                    seed,
                )
                for epoch in range(epochs)
            ],
        )
        return Fig12Result(game_name=game_name, epochs=results)
    learner = ContinuousLearner(
        game_name,
        config=config,
        session_duration_s=session_duration_s,
        initial_events=initial_events,
        ramp=ramp,
        ungated_epochs=ungated_epochs,
        seed=seed,
    )
    return Fig12Result(game_name=game_name, epochs=learner.run(epochs))
