"""Fig. 12: continuous learning recovers from insufficient profiles.

Paper finding (AB Evolution): when the initial profile is artificially
insufficient, SNIP short-circuits with ~40% erroneous output fields for
the first few play instances, but as the cloud loop keeps re-learning
from new sessions the error collapses below 0.1% — no developer
intervention required.

Each learning cycle's table is *not* blind-shipped: the package is
published to a :class:`~repro.registry.store.PackageRegistry` and runs
the gated promotion pass, so a data-starved early table is recorded as
a rejected candidate and only cycles that clear the floors (and beat
the incumbent) become the champion. The per-cycle decisions are part of
the figure's output.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.report import pct, render_table
from repro.core.config import SnipConfig
from repro.core.learning import ContinuousLearner, EpochResult
from repro.core.profiler import SnipPackage
from repro.fleet.executors import FleetExecutor
from repro.registry.metrics import metrics_from_epoch
from repro.registry.promotion import PromotionPolicy
from repro.registry.store import PackageRegistry
from repro.service.shipping import ship_cycle


@dataclass(frozen=True)
class CycleDecision:
    """What the registry decided about one learning cycle's table."""

    epoch: int
    version: int        # registry version the cycle published (or hit)
    shipped: bool       # did this cycle's table become the champion?
    reasons: Tuple[str, ...]  # why it was not shipped (empty on ship)


@dataclass
class Fig12Result:
    """The error trajectory over learning epochs."""

    game_name: str
    epochs: List[EpochResult]
    #: Per-cycle registry verdicts, in epoch order.
    decisions: Optional[List[CycleDecision]] = None

    @property
    def initial_error(self) -> float:
        """Error of the first (data-starved) epoch."""
        return self.epochs[0].error_fraction

    @property
    def final_error(self) -> float:
        """Error after the last epoch."""
        return self.epochs[-1].error_fraction

    @property
    def converged_epoch(self) -> Optional[int]:
        """First epoch whose error crossed the confidence threshold."""
        for result in self.epochs:
            if result.confident:
                return result.epoch
        return None

    @property
    def first_shipped_epoch(self) -> Optional[int]:
        """First epoch whose table the promotion pass activated."""
        for decision in self.decisions or []:
            if decision.shipped:
                return decision.epoch
        return None

    def to_text(self) -> str:
        """Render the learning trajectory."""
        decisions = {
            decision.epoch: decision for decision in self.decisions or []
        }
        rows = [
            [
                result.epoch,
                result.training_events,
                result.table_entries,
                pct(result.hit_fraction),
                pct(result.error_fraction, 3),
                "yes" if result.confident else "no",
            ]
            + (
                [
                    "yes" if decisions[result.epoch].shipped else "no",
                ]
                if result.epoch in decisions
                else []
            )
            for result in self.epochs
        ]
        headers = [
            "epoch", "train events", "entries", "hit rate",
            "% erroneous fields", "confident",
        ]
        if decisions:
            headers.append("shipped")
        return render_table(headers, rows)


@dataclass(frozen=True)
class EpochTask:
    """One epoch's evaluation, shipped to a fleet worker."""

    game_name: str
    epoch: int
    session_duration_s: float
    initial_events: int
    ramp: float
    ungated_epochs: int
    config: Optional[SnipConfig]
    seed: int


@dataclass(frozen=True)
class EpochOutcome:
    """What an epoch worker sends back: the numbers and the table."""

    result: EpochResult
    package: SnipPackage


def _epoch_task(task: EpochTask) -> EpochOutcome:
    """Evaluate one learning epoch in isolation (picklable task).

    Every epoch's training corpus is a pure function of ``(seed,
    epoch)`` — :meth:`ContinuousLearner._epoch_seeds` — so a worker can
    rebuild the sessions of all earlier epochs locally and evaluate its
    epoch with no state from the serial loop. The per-epoch results are
    bit-identical to running the loop sequentially.
    """
    learner = ContinuousLearner(
        task.game_name,
        config=task.config,
        session_duration_s=task.session_duration_s,
        initial_events=task.initial_events,
        ramp=task.ramp,
        ungated_epochs=task.ungated_epochs,
        seed=task.seed,
    )
    for earlier in range(task.epoch):
        learner.ingest_session(earlier)
    result = learner.run_epoch(task.epoch)
    return EpochOutcome(result=result, package=learner.packages[-1])


def _publish_cycles(
    registry: PackageRegistry,
    game_name: str,
    config: SnipConfig,
    results: List[EpochResult],
    packages: List[SnipPackage],
    policy: PromotionPolicy,
) -> List[CycleDecision]:
    """Run every cycle's table through the service shipping pass.

    Delegates to :func:`repro.service.shipping.ship_cycle` — the same
    publish -> promote sequence the ``serve`` daemon's offline path
    uses — so batch replays of the experiment and live service cycles
    record identical verdicts for identical tables.
    """
    decisions = []
    for result, package in zip(results, packages):
        metrics = metrics_from_epoch(
            package, result.hit_fraction, result.error_fraction
        )
        shipped = ship_cycle(
            registry, game_name, config, package, metrics, policy,
            source="fig12",
        )
        decisions.append(
            CycleDecision(
                epoch=result.epoch,
                version=shipped.version,
                shipped=shipped.shipped,
                reasons=shipped.reasons,
            )
        )
    return decisions


def run_fig12(
    game_name: str = "ab_evolution",
    epochs: int = 8,
    session_duration_s: float = 30.0,
    initial_events: int = 60,
    ramp: float = 2.2,
    ungated_epochs: int = 2,
    config: Optional[SnipConfig] = None,
    seed: int = 0,
    executor: Optional[FleetExecutor] = None,
    registry: Optional[PackageRegistry] = None,
    policy: Optional[PromotionPolicy] = None,
) -> Fig12Result:
    """Drive the continuous-learning loop and record each epoch.

    ``ungated_epochs`` reproduces the paper's artificially insufficient
    initial profile: early tables ship without the confidence gate and
    misfire heavily until real profile volume accumulates.

    With an ``executor``, the epochs are evaluated in parallel workers
    (each regenerating the earlier epochs' sessions from seeds) and the
    trajectory is reassembled in epoch order — same numbers, shorter
    wall clock.

    Every cycle's table goes through the registry's publish -> promote
    pass (an ephemeral registry when none is supplied), and the
    per-cycle verdicts land in :attr:`Fig12Result.decisions`. Because
    the epoch results and the publish order are both deterministic, a
    supplied registry ends up byte-identical however the epochs were
    scheduled.
    """
    tasks = [
        EpochTask(
            game_name=game_name,
            epoch=epoch,
            session_duration_s=session_duration_s,
            initial_events=initial_events,
            ramp=ramp,
            ungated_epochs=ungated_epochs,
            config=config,
            seed=seed,
        )
        for epoch in range(epochs)
    ]
    if executor is not None and executor.jobs > 1:
        outcomes = executor.run(_epoch_task, tasks)
        results = [outcome.result for outcome in outcomes]
        packages = [outcome.package for outcome in outcomes]
    else:
        learner = ContinuousLearner(
            game_name,
            config=config,
            session_duration_s=session_duration_s,
            initial_events=initial_events,
            ramp=ramp,
            ungated_epochs=ungated_epochs,
            seed=seed,
        )
        results = learner.run(epochs)
        packages = list(learner.packages)
    registry_config = config or SnipConfig()
    policy = policy or PromotionPolicy()
    if registry is None:
        with tempfile.TemporaryDirectory(prefix="fig12-registry-") as scratch:
            decisions = _publish_cycles(
                PackageRegistry(Path(scratch)),
                game_name,
                registry_config,
                results,
                packages,
                policy,
            )
    else:
        decisions = _publish_cycles(
            registry, game_name, registry_config, results, packages, policy
        )
    return Fig12Result(game_name=game_name, epochs=results, decisions=decisions)
