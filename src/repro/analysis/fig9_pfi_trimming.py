"""Fig. 9: PFI trimming — error vs. input bytes kept.

Paper finding (AB Evolution): starting from the complete input record
(100% accuracy by construction), PFI trims fields in reverse-importance
order with barely any error growth until only ~1.2 kB of necessary
inputs remain (~0.2% of the record), after which the error climbs
steeply. The necessary fields span all three input categories, with a
core of In.Event bytes surviving to the very end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import pct, render_table
from repro.core.config import SnipConfig
from repro.core.profiler import CloudProfiler
from repro.core.selection import TrimPoint, trimming_curve
from repro.games.base import InputCategory
from repro.units import format_bytes
from repro.users.tracegen import generate_trace


@dataclass
class Fig9Result:
    """The full trimming walk plus the selected necessary inputs."""

    game_name: str
    points: List[TrimPoint]
    necessary_bytes: int
    necessary_category_bytes: Dict[InputCategory, int]
    full_record_bytes: int

    @property
    def necessary_fraction(self) -> float:
        """Necessary bytes as a fraction of the full record."""
        if self.full_record_bytes <= 0:
            return 0.0
        return self.necessary_bytes / self.full_record_bytes

    def error_at_bytes(self, bytes_kept: int) -> Optional[float]:
        """Error at the first walk point at or below a byte budget."""
        for point in self.points:
            if point.bytes_kept <= bytes_kept:
                return point.error
        return None

    def to_text(self) -> str:
        """Render sampled walk points plus the selection summary."""
        step = max(1, len(self.points) // 16)
        rows = [
            [
                format_bytes(point.bytes_kept),
                pct(point.error, 2),
                point.removed_field or "(start)",
                str(point.removed_category) if point.removed_category else "-",
            ]
            for point in self.points[::step]
        ]
        walk = render_table(["bytes kept", "error", "removed", "category"], rows)
        summary = render_table(
            ["necessary inputs", "value"],
            [
                ["bytes", format_bytes(self.necessary_bytes)],
                ["fraction of record", pct(self.necessary_fraction, 3)],
            ]
            + [
                [f"bytes ({category.value})", format_bytes(nbytes)]
                for category, nbytes in self.necessary_category_bytes.items()
            ],
        )
        return f"{walk}\n\n{summary}"


def run_fig9(
    game_name: str = "ab_evolution",
    seeds=(1, 2),
    duration_s: float = 60.0,
    config: Optional[SnipConfig] = None,
) -> Fig9Result:
    """Profile, run PFI, walk the trimming curve, and select."""
    config = config or SnipConfig()
    profiler = CloudProfiler(config)
    traces = [generate_trace(game_name, seed, duration_s) for seed in seeds]
    records = profiler.replay_traces(game_name, traces)
    analysis = profiler.analyze(records)
    points = trimming_curve(analysis)
    selection = profiler.select(analysis)
    full_record_bytes = sum(
        sum(info.nbytes for info in profile.universe)
        for profile in analysis.profiles.values()
    )
    return Fig9Result(
        game_name=game_name,
        points=points,
        necessary_bytes=selection.total_bytes,
        necessary_category_bytes=selection.category_breakdown(),
        full_record_bytes=full_record_bytes,
    )
