"""Table I: what each prior scheme can and cannot short-circuit.

The paper's example handler interleaves CPU functions with IP
invocations: CPU-side reuse can skip only the repeated ``CPUFunc_i``,
IP-side techniques only the ``IP_i`` calls, and only SNIP can snip the
whole chain. We quantify that scoping on a real session: for each
scheme, how much of one game's handler work (cycles and IP energy) is
*reachable* in principle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import pct, render_table
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.soc.soc import snapdragon_821
from repro.users.sessions import estimate_trace_energy
from repro.users.tracegen import generate_events


@dataclass
class Table1Result:
    """Reachable shares of handler energy per scheme family."""

    game_name: str
    cpu_func_energy_fraction: float  # Max CPU's reach (reusable kernels)
    ip_call_energy_fraction: float   # Max IP's reach (cacheable IP calls)
    whole_chain_fraction: float      # SNIP's reach (the entire handler)

    def to_text(self) -> str:
        """Render the scoping comparison."""
        return render_table(
            ["scheme family", "reachable handler energy"],
            [
                ["Max CPU (repeated CPUFunc_i only)",
                 pct(self.cpu_func_energy_fraction)],
                ["Max IP (repeated IP_i calls only)",
                 pct(self.ip_call_energy_fraction)],
                ["SNIP (whole event chain)", pct(self.whole_chain_fraction)],
            ],
        )


def run_table1(
    game_name: str = "ab_evolution", seed: int = 7, duration_s: float = 30.0
) -> Table1Result:
    """Decompose one session's handler energy by scheme reachability."""
    soc = snapdragon_821()
    game = create_game(game_name, seed=GAME_CONTENT_SEED)
    total = 0.0
    reusable_cpu = 0.0
    cacheable_ip = 0.0
    from repro.schemes.max_ip import SKIPPABLE_IPS

    for event in generate_events(game_name, seed, duration_s):
        game.advance_engine(event)
        trace = game.process(event)
        total += estimate_trace_energy(soc, trace)
        for call in trace.cpu_funcs:
            if call.reusable:
                reusable_cpu += soc.cpu.energy_for(call.cycles, big=call.big)
        for call in trace.ip_calls:
            if call.key is not None and call.ip_name in SKIPPABLE_IPS:
                cacheable_ip += soc.ip(call.ip_name).energy_for(
                    call.work_units, bytes_in=call.bytes_in, bytes_out=call.bytes_out
                )
    if total <= 0:
        return Table1Result(game_name, 0.0, 0.0, 0.0)
    return Table1Result(
        game_name=game_name,
        cpu_func_energy_fraction=reusable_cpu / total,
        ip_call_energy_fraction=cacheable_ip / total,
        whole_chain_fraction=1.0,
    )
