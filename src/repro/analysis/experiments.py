"""Experiment registry: one entry per paper figure/table.

``run_experiment("fig4")`` executes the driver with its default
parameters and returns the structured result; every result renders with
``to_text()``. The registry is what DESIGN.md's per-experiment index
points at.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.fig2_energy_breakdown import run_fig2
from repro.analysis.fig3_battery_drain import run_fig3
from repro.analysis.fig4_useless_events import run_fig4
from repro.analysis.fig6_table_size import run_fig6
from repro.analysis.fig7_io_characteristics import run_fig7
from repro.analysis.fig8_event_only import run_fig8
from repro.analysis.fig9_pfi_trimming import run_fig9
from repro.analysis.fig11_energy_benefits import run_fig11
from repro.analysis.fig12_continuous_learning import run_fig12
from repro.analysis.table1_optimization_scope import run_table1

#: Experiment id -> zero-argument driver with paper-default parameters.
#: ``fig*``/``table1`` regenerate the paper's evaluation; the extra ids
#: are this repo's ablations and extensions.
EXPERIMENTS: Dict[str, Callable] = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "table1": run_table1,
}


def _register_extensions() -> None:
    from repro.analysis.ablation_quantization import run_quantization_ablation
    from repro.analysis.component_savings import run_component_savings
    from repro.analysis.summary import run_summary

    EXPERIMENTS["summary"] = run_summary
    EXPERIMENTS["components"] = run_component_savings
    EXPERIMENTS["quantization"] = run_quantization_ablation


_register_extensions()


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment by id with optional parameter overrides."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None
    return driver(**kwargs)
