"""One-shot reproduction summary across the cheap experiments.

Runs the characterization suite (Figs. 2-4) plus the AB Evolution
memoization studies (Figs. 6-8) and renders one combined paper-vs-
measured digest. The heavyweight experiments (Figs. 9, 11, 12) have
their own benchmarks; this summary is the quick health check a user
runs first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fig2_energy_breakdown import Fig2Result, run_fig2
from repro.analysis.fig3_battery_drain import Fig3Result, run_fig3
from repro.analysis.fig4_useless_events import Fig4Result, run_fig4
from repro.analysis.fig6_table_size import Fig6Result, run_fig6
from repro.analysis.fig8_event_only import Fig8Result, run_fig8
from repro.analysis.report import pct, render_table
from repro.units import format_bytes


@dataclass
class ReproductionSummary:
    """The quick-check digest over Figs. 2, 3, 4, 6, 8."""

    fig2: Fig2Result
    fig3: Fig3Result
    fig4: Fig4Result
    fig6: Fig6Result
    fig8: Fig8Result

    def checks(self):
        """(claim, paper, measured, holds) rows for the digest."""
        max_sens_mem = max(
            item.sensors_plus_memory for item in self.fig2.breakdowns
        )
        lightest = self.fig3.rows[0].battery_hours
        heaviest = self.fig3.rows[-1].battery_hours
        useless = [row.useless_fraction for row in self.fig4.rows]
        rows = [
            ("sensors+memory share", "< 10%", pct(max_sens_mem),
             max_sens_mem < 0.12),
            ("idle battery life", "~20 h", f"{self.fig3.idle_hours:.1f} h",
             15.0 < self.fig3.idle_hours < 25.0),
            ("lightest game drain", "~8.5 h", f"{lightest:.1f} h",
             7.0 < lightest < 11.0),
            ("heaviest game drain", "~3 h", f"{heaviest:.1f} h",
             2.5 < heaviest < 4.5),
            ("useless events band", "17-43%",
             f"{pct(min(useless))}-{pct(max(useless))}",
             0.10 < min(useless) and max(useless) < 0.50),
            ("worst useless game", "ab_evolution", self.fig4.max_useless_game,
             self.fig4.max_useless_game == "ab_evolution"),
            ("naive table verdict", "GBs for a sliver",
             f"{format_bytes(self.fig6.final_bytes)} for "
             f"{pct(self.fig6.final_coverage)}",
             self.fig6.final_bytes > 5_000_000
             and self.fig6.final_coverage < 0.10),
            ("event-only table verdict", "small but fatally wrong",
             f"{pct(self.fig8.size_ratio, 2)} of naive, "
             f"{pct(self.fig8.state_error_share)} fatal errors",
             self.fig8.size_ratio < 0.05 and self.fig8.state_error_share > 0.5),
        ]
        return rows

    @property
    def all_hold(self) -> bool:
        """Whether every quick check reproduces the paper's shape."""
        return all(holds for *_, holds in self.checks())

    def to_text(self) -> str:
        """Render the digest."""
        rows = [
            [claim, paper, measured, "OK" if holds else "DEVIATES"]
            for claim, paper, measured, holds in self.checks()
        ]
        return render_table(["claim", "paper", "measured", "verdict"], rows)


def run_summary(duration_s: float = 45.0, seed: int = 1) -> ReproductionSummary:
    """Run the quick-check experiments and assemble the digest."""
    return ReproductionSummary(
        fig2=run_fig2(seed=seed, duration_s=duration_s),
        fig3=run_fig3(seed=seed, duration_s=duration_s),
        fig4=run_fig4(seed=seed, duration_s=max(30.0, duration_s)),
        fig6=run_fig6(seed=seed, duration_s=max(60.0, duration_s)),
        fig8=run_fig8(seed=seed, duration_s=max(90.0, duration_s)),
    )
