"""UX impact of tolerated Out.Temp errors (paper Sec. IV-B argument).

The paper tolerates wrong ``Out.Temp`` substitutions because "one
frame's tile being wrong will have little to no impact on the user" —
a glitched tile shows for <16 ms while human reaction time is 10-20x
slower [19]. The authors defer a user study; this module quantifies the
argument for a given runtime configuration: how often a wrong temporary
output would actually be *perceivable*, i.e. persist on screen at least
one reaction time because no newer frame overwrote it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import pct, render_table

#: One 60 Hz frame (how long a wrong tile is normally visible).
FRAME_SECONDS = 1.0 / 60.0
#: Median visual reaction time from the paper's citation [19].
REACTION_SECONDS = 0.25


@dataclass(frozen=True)
class UxImpactEstimate:
    """Perceivability estimate for one game's temp-error profile.

    Attributes
    ----------
    temp_error_rate:
        Fraction of events whose substituted Out.Temp fields are wrong.
    refresh_rate_hz:
        How often the affected surface is redrawn (a wrong tile lives
        until the next redraw).
    events_per_second:
        Event rate feeding the surface.
    """

    game_name: str
    temp_error_rate: float
    refresh_rate_hz: float
    events_per_second: float

    @property
    def glitch_seconds_visible(self) -> float:
        """How long one wrong temp output stays on screen."""
        if self.refresh_rate_hz <= 0:
            return REACTION_SECONDS  # never overwritten: fully visible
        return 1.0 / self.refresh_rate_hz

    @property
    def perceivable(self) -> bool:
        """Whether a single glitch lasts a reaction time."""
        return self.glitch_seconds_visible >= REACTION_SECONDS

    @property
    def glitches_per_minute(self) -> float:
        """Rate of wrong temp outputs reaching the screen."""
        return self.temp_error_rate * self.events_per_second * 60.0

    @property
    def perceived_glitches_per_minute(self) -> float:
        """Glitches that persist long enough to register."""
        if self.perceivable:
            return self.glitches_per_minute
        # Sub-reaction-time glitches only register when several land
        # back-to-back on the same surface; approximate by the chance
        # that a full reaction window is wall-to-wall glitches.
        window_frames = max(1, int(REACTION_SECONDS * self.refresh_rate_hz))
        streak_probability = self.temp_error_rate ** window_frames
        return streak_probability * self.events_per_second * 60.0

    def row(self):
        """Table row for rendering."""
        return [
            self.game_name,
            pct(self.temp_error_rate, 2),
            f"{self.glitch_seconds_visible * 1000:.0f} ms",
            "yes" if self.perceivable else "no",
            f"{self.perceived_glitches_per_minute:.3f}/min",
        ]


def estimate_ux_impact(
    game_name: str,
    temp_error_rate: float,
    refresh_rate_hz: float = 60.0,
    events_per_second: float = 60.0,
) -> UxImpactEstimate:
    """Build the estimate from a measured temp-error rate."""
    if not 0.0 <= temp_error_rate <= 1.0:
        raise ValueError(f"temp_error_rate out of [0,1]: {temp_error_rate}")
    if events_per_second < 0 or refresh_rate_hz < 0:
        raise ValueError("rates must be non-negative")
    return UxImpactEstimate(
        game_name=game_name,
        temp_error_rate=temp_error_rate,
        refresh_rate_hz=refresh_rate_hz,
        events_per_second=events_per_second,
    )


def render_ux_table(estimates) -> str:
    """Render a set of estimates as the paper-style argument table."""
    return render_table(
        ["game", "temp error rate", "glitch visible", "perceivable",
         "perceived glitches"],
        [estimate.row() for estimate in estimates],
    )
