"""Fig. 3: battery drain across the seven games.

Paper finding: even the lightest game (Colorphun) drains the 3450 mAh
pack in ~8.5 h against ~20 h for an idle (screen-on) phone, and complex
3D/AR titles get down to ~3 h — about 6x faster than idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.fleet.executors import FleetExecutor, SerialExecutor
from repro.games.registry import GAME_NAMES
from repro.soc.soc import snapdragon_821
from repro.users.sessions import run_baseline_session_task


def idle_battery_hours(duration_s: float = 60.0) -> float:
    """Projected battery life of a screen-on idle phone."""
    soc = snapdragon_821()
    soc.advance_time(duration_s)
    return soc.battery.hours_to_empty(soc.average_watts())


@dataclass(frozen=True)
class DrainRow:
    """One game's power draw and projected battery life."""

    game_name: str
    average_watts: float
    battery_hours: float


@dataclass
class Fig3Result:
    """Per-game drain plus the idle-phone reference."""

    idle_hours: float
    rows: List[DrainRow]

    def by_game(self) -> Dict[str, DrainRow]:
        """Rows keyed by game name."""
        return {row.game_name: row for row in self.rows}

    @property
    def drain_speedup_vs_idle(self) -> float:
        """How much faster the heaviest game drains vs idle (paper ~6x)."""
        heaviest = min(self.rows, key=lambda row: row.battery_hours)
        return self.idle_hours / heaviest.battery_hours

    def to_text(self) -> str:
        """Render the figure as a table."""
        rows = [["(idle phone)", "-", f"{self.idle_hours:.1f} h"]]
        rows.extend(
            [row.game_name, f"{row.average_watts:.2f} W", f"{row.battery_hours:.1f} h"]
            for row in self.rows
        )
        return render_table(["workload", "avg power", "battery life"], rows)


def run_fig3(
    seed: int = 1,
    duration_s: float = 60.0,
    executor: Optional[FleetExecutor] = None,
) -> Fig3Result:
    """Measure each game's draw and project full-pack drain time."""
    executor = executor or SerialExecutor()
    results = executor.run(
        run_baseline_session_task,
        [(game_name, seed, duration_s) for game_name in GAME_NAMES],
    )
    rows = [
        DrainRow(
            game_name=result.game_name,
            average_watts=result.average_watts,
            battery_hours=result.battery_hours,
        )
        for result in results
    ]
    return Fig3Result(idle_hours=idle_battery_hours(), rows=rows)
