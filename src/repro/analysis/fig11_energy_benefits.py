"""Fig. 11: energy benefits, coverage and overheads of every scheme.

Paper findings: Max CPU saves 0.5-13% and Max IP 0.7-9% (each blind to
the other's half of the SoC), while SNIP saves 24-37% (avg ~32%, or
+1.6 h of battery) by short-circuiting 40-61% of execution (avg ~52%);
SNIP's lookup overheads average ~3% of energy, Memory Game paying the
most because of its wide per-event comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import pct, render_table
from repro.core.config import SnipConfig
from repro.fleet.executors import FleetExecutor, SerialExecutor
from repro.schemes import (
    BaselineScheme,
    MaxCpuScheme,
    MaxIpScheme,
    NoOverheadsScheme,
    SnipScheme,
    run_scheme_session,
)
from repro.schemes.base import SchemeRun

SCHEME_ORDER = ("max_cpu", "max_ip", "snip", "no_overheads")


@dataclass(frozen=True)
class GameComparison:
    """All scheme runs for one game, against its baseline."""

    game_name: str
    baseline: SchemeRun
    runs: Dict[str, SchemeRun]

    def savings(self, scheme_name: str) -> float:
        """Energy savings of a scheme vs. baseline."""
        return self.runs[scheme_name].savings_vs(self.baseline)

    def coverage(self, scheme_name: str) -> float:
        """Short-circuited execution fraction for a scheme."""
        return self.runs[scheme_name].coverage

    @property
    def snip_overhead_fraction(self) -> float:
        """Fig. 11c: the lookup cost SNIP pays, as energy given up
        relative to the overhead-free variant."""
        return max(0.0, self.savings("no_overheads") - self.savings("snip"))

    @property
    def extra_battery_hours(self) -> float:
        """Battery life SNIP adds over baseline."""
        return self.runs["snip"].battery_hours - self.baseline.battery_hours


@dataclass
class Fig11Result:
    """The full scheme-by-game comparison grid."""

    comparisons: List[GameComparison]
    compared_bytes: Dict[str, float]  # game -> mean bytes compared/event

    def by_game(self) -> Dict[str, GameComparison]:
        """Comparisons keyed by game name."""
        return {item.game_name: item for item in self.comparisons}

    def average_savings(self, scheme_name: str) -> float:
        """Mean savings across games for one scheme."""
        values = [item.savings(scheme_name) for item in self.comparisons]
        return sum(values) / len(values)

    def average_coverage(self, scheme_name: str) -> float:
        """Mean coverage across games for one scheme."""
        values = [item.coverage(scheme_name) for item in self.comparisons]
        return sum(values) / len(values)

    @property
    def average_extra_battery_hours(self) -> float:
        """Mean extra battery life from SNIP (paper: ~1.6 h)."""
        values = [item.extra_battery_hours for item in self.comparisons]
        return sum(values) / len(values)

    def to_text(self) -> str:
        """Render the three panels."""
        panel_a = render_table(
            ["game"] + [f"{name} save" for name in SCHEME_ORDER] + ["snip +hrs"],
            [
                [item.game_name]
                + [pct(item.savings(name)) for name in SCHEME_ORDER]
                + [f"{item.extra_battery_hours:+.1f} h"]
                for item in self.comparisons
            ],
        )
        panel_b = render_table(
            ["game"] + [f"{name} cov" for name in SCHEME_ORDER],
            [
                [item.game_name]
                + [pct(item.coverage(name)) for name in SCHEME_ORDER]
                for item in self.comparisons
            ],
        )
        panel_c = render_table(
            ["game", "snip overhead", "bytes compared/event"],
            [
                [
                    item.game_name,
                    pct(item.snip_overhead_fraction, 2),
                    f"{self.compared_bytes.get(item.game_name, 0.0):.0f} B",
                ]
                for item in self.comparisons
            ],
        )
        return (
            f"(a) energy benefits\n{panel_a}\n\n"
            f"(b) short-circuited execution\n{panel_b}\n\n"
            f"(c) SNIP overheads\n{panel_c}"
        )


def _compare_game_task(payload: tuple) -> Tuple[GameComparison, float]:
    """Run all schemes for one game (picklable fleet-executor task).

    Each game's comparison is fully independent — the schemes profile
    per game — so fanning games out across workers reproduces the
    serial grid exactly.
    """
    game_name, seed, duration_s, config = payload
    snip = SnipScheme(config)
    no_overheads = NoOverheadsScheme(config)
    snip.prepare(game_name)
    # Share the profile package so both variants decide identically.
    no_overheads._packages[game_name] = snip.package_for(game_name)
    baseline = run_scheme_session(BaselineScheme(), game_name, seed, duration_s)
    runs: Dict[str, SchemeRun] = {}
    for scheme in (MaxCpuScheme(), MaxIpScheme(), snip, no_overheads):
        runs[scheme.name] = run_scheme_session(scheme, game_name, seed, duration_s)
    table = snip.package_for(game_name).table
    weighted = 0.0
    for event_type in table.selection.by_event_type:
        weighted += table.comparison_bytes(event_type)
    mean_bytes = weighted / max(1, len(table.selection.by_event_type))
    comparison = GameComparison(game_name=game_name, baseline=baseline, runs=runs)
    return comparison, mean_bytes


def run_fig11(
    games: Optional[Sequence[str]] = None,
    seed: int = 7,
    duration_s: float = 60.0,
    config: Optional[SnipConfig] = None,
    executor: Optional[FleetExecutor] = None,
) -> Fig11Result:
    """Run every scheme on every game and assemble the grid.

    ``executor`` distributes per-game comparisons across workers; the
    grid is reassembled in games order, so results match the serial run.
    """
    from repro.games.registry import GAME_NAMES

    games = list(games or GAME_NAMES)
    config = config or SnipConfig()
    executor = executor or SerialExecutor()
    outcomes = executor.run(
        _compare_game_task,
        [(game_name, seed, duration_s, config) for game_name in games],
    )
    comparisons = [comparison for comparison, _ in outcomes]
    compared_bytes = {
        comparison.game_name: mean_bytes for comparison, mean_bytes in outcomes
    }
    return Fig11Result(comparisons=comparisons, compared_bytes=compared_bytes)
