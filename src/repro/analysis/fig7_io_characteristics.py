"""Fig. 7: input/output size characteristics of event processing.

Paper findings (AB Evolution): In.Event records are small (2-640 B),
fixed-size and consumed ubiquitously; In.History spreads from ~600 B to
~119 kB because game context grows with scene richness; In.Extern is
rare (well under 1% of events) but ~1 MB when it happens. Outputs
mirror the split, with Out.Temp under ~64 B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.report import pct, render_table
from repro.android.emulator import Emulator, ProfileRecord
from repro.android.events import schema_for
from repro.games.base import InputCategory, OutputCategory
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.units import format_bytes
from repro.users.tracegen import generate_trace


@dataclass(frozen=True)
class CategoryProfile:
    """Size/occurrence statistics for one I/O category."""

    category: str
    occurrence_fraction: float  # events consuming/producing it
    min_bytes: int
    max_bytes: int
    mean_bytes: float

    def row(self) -> List[object]:
        """Table row for rendering."""
        return [
            self.category,
            pct(self.occurrence_fraction),
            format_bytes(self.min_bytes),
            format_bytes(self.max_bytes),
            format_bytes(self.mean_bytes),
        ]


def _profile_category(sizes: List[int], total_events: int, name: str) -> CategoryProfile:
    if not sizes:
        return CategoryProfile(name, 0.0, 0, 0, 0.0)
    return CategoryProfile(
        category=name,
        occurrence_fraction=len(sizes) / total_events,
        min_bytes=min(sizes),
        max_bytes=max(sizes),
        mean_bytes=sum(sizes) / len(sizes),
    )


@dataclass
class Fig7Result:
    """Input (7a) and output (7b) category profiles for one game."""

    game_name: str
    inputs: Dict[str, CategoryProfile]
    outputs: Dict[str, CategoryProfile]
    event_count: int

    def to_text(self) -> str:
        """Render both panels."""
        headers = ["category", "% events", "min", "max", "mean"]
        input_table = render_table(
            headers, [profile.row() for profile in self.inputs.values()]
        )
        output_table = render_table(
            headers, [profile.row() for profile in self.outputs.values()]
        )
        return f"(a) inputs\n{input_table}\n\n(b) outputs\n{output_table}"


def run_fig7(
    game_name: str = "ab_evolution", seed: int = 1, duration_s: float = 120.0
) -> Fig7Result:
    """Replay one session and profile per-event I/O sizes by category."""
    trace = generate_trace(game_name, seed=seed, duration_s=duration_s)
    records: Sequence[ProfileRecord] = Emulator(verify=False).replay(
        create_game(game_name, seed=GAME_CONTENT_SEED), trace
    )
    input_sizes: Dict[InputCategory, List[int]] = {c: [] for c in InputCategory}
    output_sizes: Dict[OutputCategory, List[int]] = {c: [] for c in OutputCategory}
    for record in records:
        for category in InputCategory:
            if category is InputCategory.EVENT:
                # The whole event object is passed to the handler (the
                # paper's fixed-size In.Event record), regardless of
                # which fields the handler touches.
                nbytes = schema_for(record.event_type).nbytes
            else:
                nbytes = record.trace.input_bytes(category)
            if nbytes > 0:
                input_sizes[category].append(nbytes)
        for category in OutputCategory:
            nbytes = record.trace.output_bytes(category)
            if nbytes > 0:
                output_sizes[category].append(nbytes)
    total = len(records)
    inputs = {
        category.value: _profile_category(sizes, total, category.value)
        for category, sizes in input_sizes.items()
    }
    outputs = {
        category.value: _profile_category(sizes, total, category.value)
        for category, sizes in output_sizes.items()
    }
    return Fig7Result(
        game_name=game_name, inputs=inputs, outputs=outputs, event_count=total
    )
