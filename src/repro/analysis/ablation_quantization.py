"""Ablation: sensor quantization vs. memoization opportunity.

DESIGN.md calls out table keying (exact match on quantised sensor
values) as a design choice. Event fields are captured at the sensor's
resolution; coarser capture makes In.Event records repeat more (more
memoization opportunity, Sec. IV-B) at the cost of input fidelity. This
driver sweeps a *virtual* re-quantisation factor over a replayed profile
and reports how the In.Event-only table's coverage and error respond —
the quantitative backdrop for the resolutions the event schemas pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import pct, render_table
from repro.android.emulator import Emulator, ProfileRecord
from repro.android.events import EventType
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.users.tracegen import generate_trace


def _requantise(value, factor: int):
    """Coarsen one already-quantised field value by ``factor``."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return (value // factor) * factor
    if isinstance(value, float):
        return round(value / factor) * factor
    return value


@dataclass(frozen=True)
class QuantizationPoint:
    """Event-key statistics at one re-quantisation factor."""

    factor: int
    distinct_keys: int
    repeat_fraction: float   # events whose coarse key was seen before
    ambiguous_fraction: float  # repeats whose outputs disagree


@dataclass
class QuantizationAblation:
    """The sweep over coarsening factors."""

    game_name: str
    points: List[QuantizationPoint]

    def to_text(self) -> str:
        """Render the sweep."""
        rows = [
            [point.factor, point.distinct_keys,
             pct(point.repeat_fraction), pct(point.ambiguous_fraction)]
            for point in self.points
        ]
        return render_table(
            ["coarsening", "distinct keys", "repeat events", "ambiguous"],
            rows,
        )


def run_quantization_ablation(
    game_name: str = "ab_evolution",
    seed: int = 1,
    duration_s: float = 60.0,
    factors: Sequence[int] = (1, 2, 4, 8),
) -> QuantizationAblation:
    """Sweep coarsening factors over one profile's user events."""
    trace = generate_trace(game_name, seed=seed, duration_s=duration_s)
    records: List[ProfileRecord] = Emulator(verify=False).replay(
        create_game(game_name, seed=GAME_CONTENT_SEED), trace
    )
    user_records = [
        record for record in records
        if record.event_type is not EventType.FRAME_TICK
    ]
    points = []
    for factor in factors:
        seen: Dict[Tuple, set] = {}
        repeats = 0
        ambiguous = 0
        for record in user_records:
            key = (record.event_type,) + tuple(
                _requantise(value, factor) for _, value in record.event_values
            )
            signature = record.trace.output_class()
            if key in seen:
                repeats += 1
                if signature not in seen[key]:
                    ambiguous += 1
                seen[key].add(signature)
            else:
                seen[key] = {signature}
        total = len(user_records)
        points.append(
            QuantizationPoint(
                factor=factor,
                distinct_keys=len(seen),
                repeat_fraction=repeats / total if total else 0.0,
                ambiguous_fraction=ambiguous / total if total else 0.0,
            )
        )
    return QuantizationAblation(game_name=game_name, points=points)
