"""Fig. 2: per-component energy breakdown across the seven games.

Paper finding: sensors + memory stay under ~10% of total energy while
CPU (40-60%) and IPs (34-51%) split the rest roughly evenly — the
motivation for optimizing the whole SoC rather than one component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import pct, render_table
from repro.fleet.executors import FleetExecutor, SerialExecutor
from repro.games.registry import GAME_NAMES
from repro.soc.component import ComponentGroup
from repro.users.sessions import run_baseline_session_task


@dataclass(frozen=True)
class GameBreakdown:
    """One game's group-level energy shares."""

    game_name: str
    cpu: float
    ip: float
    memory: float
    sensor: float

    @property
    def sensors_plus_memory(self) -> float:
        """The paper's '<10%' bucket."""
        return self.memory + self.sensor


@dataclass
class Fig2Result:
    """All seven games' breakdowns, in complexity order."""

    breakdowns: List[GameBreakdown]

    def by_game(self) -> Dict[str, GameBreakdown]:
        """Breakdowns keyed by game name."""
        return {item.game_name: item for item in self.breakdowns}

    def to_text(self) -> str:
        """Render the figure as a table."""
        rows = [
            [
                item.game_name,
                pct(item.cpu),
                pct(item.ip),
                pct(item.memory),
                pct(item.sensor),
                pct(item.sensors_plus_memory),
            ]
            for item in self.breakdowns
        ]
        return render_table(
            ["game", "cpu", "ips", "memory", "sensors", "sens+mem"], rows
        )


def run_fig2(
    seed: int = 1,
    duration_s: float = 60.0,
    executor: Optional[FleetExecutor] = None,
) -> Fig2Result:
    """Measure baseline sessions and slice the ledger by group.

    ``executor`` fans the seven per-game sessions out across workers;
    results are identical to the serial path (sessions are independent
    and reassembled in game order).
    """
    executor = executor or SerialExecutor()
    results = executor.run(
        run_baseline_session_task,
        [(game_name, seed, duration_s) for game_name in GAME_NAMES],
    )
    breakdowns = []
    for result in results:
        report = result.report
        breakdowns.append(
            GameBreakdown(
                game_name=result.game_name,
                cpu=report.group_fraction(ComponentGroup.CPU),
                ip=report.group_fraction(ComponentGroup.IP),
                memory=report.group_fraction(ComponentGroup.MEMORY),
                sensor=report.group_fraction(ComponentGroup.SENSOR),
            )
        )
    return Fig2Result(breakdowns=breakdowns)
