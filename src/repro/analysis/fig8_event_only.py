"""Fig. 8: the In.Event-only lookup table and why it fails.

Paper findings (AB Evolution): keying on event fields alone shrinks the
table to ~1.5% of the naive one and covers ~27% of execution — but ~22%
of execution lands on keys with multiple possible outputs, and of the
erroneous short-circuits, a majority corrupt Out.History/Out.Extern
state, which disqualifies the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import pct, render_table
from repro.android.emulator import Emulator
from repro.games.base import OutputCategory
from repro.games.registry import GAME_CONTENT_SEED, create_game
from repro.memo.event_only import EventOnlyStats, EventOnlyTable
from repro.memo.naive import NaiveLookupTable
from repro.units import format_bytes
from repro.users.tracegen import generate_trace


@dataclass
class Fig8Result:
    """Size comparison (8a) and error breakdown (8b)."""

    game_name: str
    stats: EventOnlyStats
    naive_bytes: int

    @property
    def size_ratio(self) -> float:
        """Event-only table size relative to the naive table."""
        if self.naive_bytes <= 0:
            return 0.0
        return self.stats.table_bytes / self.naive_bytes

    @property
    def temp_error_share(self) -> float:
        """Share of erroneous executions that only glitch Out.Temp."""
        return self.stats.error_breakdown.get(OutputCategory.TEMP, 0.0)

    @property
    def state_error_share(self) -> float:
        """Share corrupting Out.History/Out.Extern (the fatal ones)."""
        return (
            self.stats.error_breakdown.get(OutputCategory.HISTORY, 0.0)
            + self.stats.error_breakdown.get(OutputCategory.EXTERN, 0.0)
        )

    def to_text(self) -> str:
        """Render both panels."""
        part_a = render_table(
            ["metric", "value"],
            [
                ["event-only table", format_bytes(self.stats.table_bytes)],
                ["naive table", format_bytes(self.naive_bytes)],
                ["size ratio", pct(self.size_ratio, 2)],
                ["coverage", pct(self.stats.coverage)],
                ["ambiguous execution", pct(self.stats.ambiguous_fraction)],
                ["erroneous execution", pct(self.stats.erroneous_fraction)],
            ],
        )
        part_b = render_table(
            ["error category", "share"],
            [
                ["out_temp (tolerable)", pct(self.temp_error_share)],
                ["out_history + out_extern (fatal)", pct(self.state_error_share)],
            ],
        )
        return f"(a) table\n{part_a}\n\n(b) erroneous outputs\n{part_b}"


def run_fig8(
    game_name: str = "ab_evolution", seed: int = 1, duration_s: float = 120.0
) -> Fig8Result:
    """Build both tables over one replayed session and compare."""
    trace = generate_trace(game_name, seed=seed, duration_s=duration_s)
    records = Emulator(verify=False).replay(
        create_game(game_name, seed=GAME_CONTENT_SEED), trace
    )
    event_only = EventOnlyTable(records)
    naive = NaiveLookupTable(records)
    return Fig8Result(
        game_name=game_name, stats=event_only.stats(), naive_bytes=naive.total_bytes
    )
