"""Fig. 4: useless user events and the energy they waste.

Paper finding: 17-43% of processed user events change nothing in the
game (AB Evolution worst at 43% — drags past the catapult's maximum
stretch), and processing them wastes a substantial share of the
event-processing energy (~34% in aggregate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import pct, render_table
from repro.fleet.executors import FleetExecutor, SerialExecutor
from repro.games.registry import GAME_NAMES
from repro.users.sessions import run_baseline_session_task


@dataclass(frozen=True)
class UselessRow:
    """One game's useless-event statistics."""

    game_name: str
    useless_fraction: float
    wasted_energy_fraction: float
    user_events: int


@dataclass
class Fig4Result:
    """All seven games' useless-event statistics."""

    rows: List[UselessRow]

    def by_game(self) -> Dict[str, UselessRow]:
        """Rows keyed by game name."""
        return {row.game_name: row for row in self.rows}

    @property
    def max_useless_game(self) -> str:
        """The workload with the highest useless fraction."""
        return max(self.rows, key=lambda row: row.useless_fraction).game_name

    def to_text(self) -> str:
        """Render the figure as a table."""
        rows = [
            [row.game_name, pct(row.useless_fraction),
             pct(row.wasted_energy_fraction), row.user_events]
            for row in self.rows
        ]
        return render_table(
            ["game", "% useless events", "% energy wasted", "user events"], rows
        )


def run_fig4(
    seed: int = 1,
    duration_s: float = 60.0,
    executor: Optional[FleetExecutor] = None,
) -> Fig4Result:
    """Measure useless user events over baseline sessions."""
    executor = executor or SerialExecutor()
    results = executor.run(
        run_baseline_session_task,
        [(game_name, seed, duration_s) for game_name in GAME_NAMES],
    )
    rows = [
        UselessRow(
            game_name=result.game_name,
            useless_fraction=result.useless_user_fraction,
            wasted_energy_fraction=result.wasted_energy_fraction,
            user_events=len(result.user_traces()),
        )
        for result in results
    ]
    return Fig4Result(rows=rows)
