"""Where SNIP's savings come from: per-component-group breakdown.

The paper's core pitch is that snipping the *whole* event chain saves
energy on the CPU **and** the accelerators at once (unlike Max CPU /
Max IP, each blind to the other half). This driver runs baseline and
SNIP on the same session and splits the saved joules by ledger group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import pct, render_table
from repro.core.config import SnipConfig
from repro.schemes import BaselineScheme, SnipScheme, run_scheme_session
from repro.soc.component import ComponentGroup


@dataclass
class ComponentSavings:
    """Per-group savings of SNIP vs baseline on one game."""

    game_name: str
    baseline_by_group: Dict[ComponentGroup, float]
    snip_by_group: Dict[ComponentGroup, float]

    def saved_joules(self, group: ComponentGroup) -> float:
        """Joules SNIP avoided in one group (can be slightly negative
        for groups that carry lookup overheads)."""
        return self.baseline_by_group.get(group, 0.0) - \
            self.snip_by_group.get(group, 0.0)

    def savings_fraction(self, group: ComponentGroup) -> float:
        """Relative savings within one group."""
        base = self.baseline_by_group.get(group, 0.0)
        if base <= 0:
            return 0.0
        return self.saved_joules(group) / base

    @property
    def total_savings_fraction(self) -> float:
        """Overall energy savings."""
        base = sum(self.baseline_by_group.values())
        if base <= 0:
            return 0.0
        return (base - sum(self.snip_by_group.values())) / base

    def to_text(self) -> str:
        """Render the breakdown."""
        rows = []
        for group in ComponentGroup:
            rows.append(
                [
                    group.value,
                    f"{self.baseline_by_group.get(group, 0.0):.1f} J",
                    f"{self.snip_by_group.get(group, 0.0):.1f} J",
                    pct(self.savings_fraction(group)),
                ]
            )
        rows.append(
            [
                "total",
                f"{sum(self.baseline_by_group.values()):.1f} J",
                f"{sum(self.snip_by_group.values()):.1f} J",
                pct(self.total_savings_fraction),
            ]
        )
        return render_table(["group", "baseline", "snip", "saved"], rows)


def run_component_savings(
    game_name: str = "ab_evolution",
    seed: int = 7,
    duration_s: float = 45.0,
    config: Optional[SnipConfig] = None,
    snip_scheme: Optional[SnipScheme] = None,
) -> ComponentSavings:
    """Measure one game's per-group baseline-vs-SNIP split."""
    scheme = snip_scheme or SnipScheme(config or SnipConfig())
    scheme.prepare(game_name)
    baseline = run_scheme_session(BaselineScheme(), game_name, seed, duration_s)
    snip = run_scheme_session(scheme, game_name, seed, duration_s)
    return ComponentSavings(
        game_name=game_name,
        baseline_by_group=dict(baseline.report.by_group),
        snip_by_group=dict(snip.report.by_group),
    )
