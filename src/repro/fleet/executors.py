"""Execution backends for fleet work: serial, pool, and bounded queue.

Every executor implements the same contract: run a picklable function
over an indexed sequence of payloads and **stream** ``(index, result)``
pairs back in completion order. Failures are retried against a capped,
run-wide retry budget; exhausting it raises
:class:`~repro.errors.WorkerCrashError`. Because every payload is
self-contained and results carry their index, the choice of executor
(and the number of workers) can never change what a fleet run computes
— only how fast, and in what order, it computes it. Consumers that
need payload-ordered lists use :meth:`FleetExecutor.run`, which slots
the stream by index.

:class:`QueueFleetExecutor` is the fleet-scale backend: it keeps a
bounded submission window (``jobs * prefetch``) over the payload
sequence instead of materialising every future upfront, so a million-
device sweep holds only the in-flight tasks in memory, and it reports
its backlog through ``queue_depth`` telemetry gauges.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import FleetError, WorkerCrashError
from repro.fleet.telemetry import (
    QUEUE_DEPTH,
    SHARD_FINISHED,
    SHARD_RETRIED,
    SHARD_STARTED,
    WORKER_FAILURE,
    TelemetryBus,
)

#: Default cap on retries across one whole run (not per payload).
DEFAULT_RETRY_BUDGET = 3

#: Default submitted-but-unreduced window per worker for the queue
#: executor: enough to keep workers busy while the reducer folds,
#: small enough that in-flight results stay bounded.
DEFAULT_PREFETCH = 2


class FleetExecutor:
    """Contract shared by every execution backend."""

    #: Worker parallelism the backend provides.
    jobs: int = 1

    def stream(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` pairs in completion order.

        This is the primitive the streaming engine consumes: results
        surface as workers finish them, so the caller can fold and
        drop each one instead of collecting the whole sweep. Payloads
        may be any sequence — including a lazily materialising one —
        and are only indexed when (re)submitted.
        """
        raise NotImplementedError

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> List[Any]:
        """Run ``fn`` over ``payloads``; results ordered by payload index.

        ``on_result(index, result)`` fires as each result lands (in
        completion order), while the returned list is always
        index-ordered. Materialises every result — callers that can
        fold incrementally should consume :meth:`stream` instead.
        """
        results: List[Any] = [None] * len(payloads)
        for index, result in self.stream(
            fn, payloads, telemetry=telemetry, retry_budget=retry_budget
        ):
            results[index] = result
            if on_result:
                on_result(index, result)
        return results


class _RetryBudget:
    """Run-wide failure allowance shared by all payloads."""

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise FleetError(f"retry budget must be non-negative, got {budget}")
        self._remaining = budget

    def spend(self, index: Optional[int], error: BaseException) -> None:
        """Consume one retry, or raise when the budget is gone."""
        if self._remaining <= 0:
            raise WorkerCrashError(
                f"retry budget exhausted at shard {index}: {error!r}"
            ) from error
        self._remaining -= 1


class SerialExecutor(FleetExecutor):
    """In-process fallback sharing the pool executors' interface.

    Used for ``--jobs 1``, for environments without usable process
    pools, and as the determinism reference the parallel paths are
    byte-compared against.
    """

    jobs = 1

    def stream(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> Iterator[Tuple[int, Any]]:
        budget = _RetryBudget(retry_budget)
        total = len(payloads)
        for index in range(total):
            while True:
                started = telemetry.elapsed_seconds() if telemetry else 0.0
                if telemetry:
                    telemetry.emit(SHARD_STARTED, shard_index=index)
                try:
                    result = fn(payloads[index])
                except Exception as exc:
                    budget.spend(index, exc)
                    if telemetry:
                        telemetry.emit(
                            WORKER_FAILURE, shard_index=index, error=repr(exc)
                        )
                        telemetry.emit(SHARD_RETRIED, shard_index=index)
                    continue
                wall_s = (
                    telemetry.elapsed_seconds() - started if telemetry else None
                )
                _announce(telemetry, index, result, wall_s=wall_s)
                if telemetry:
                    telemetry.emit(QUEUE_DEPTH, depth=total - index - 1)
                yield index, result
                break


class ProcessFleetExecutor(FleetExecutor):
    """``multiprocessing``-backed pool executor (eager submission).

    Submits every payload upfront and streams results as they land.
    Survives both worker exceptions (the payload is resubmitted) and
    whole-pool crashes (the pool is rebuilt and every unfinished payload
    resubmitted), each charged against the shared retry budget.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise FleetError(
                f"ProcessFleetExecutor needs jobs >= 2, got {jobs}; "
                "use SerialExecutor for single-worker runs"
            )
        self.jobs = jobs

    def stream(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> Iterator[Tuple[int, Any]]:
        budget = _RetryBudget(retry_budget)
        pending = list(range(len(payloads)))
        completed: set = set()
        starts: dict = {}
        while pending:
            try:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    futures = {}
                    for index in pending:
                        futures[pool.submit(fn, payloads[index])] = index
                        if telemetry:
                            starts[index] = telemetry.elapsed_seconds()
                            telemetry.emit(SHARD_STARTED, shard_index=index)
                    failed: List[int] = []
                    outstanding = len(futures)
                    for future in as_completed(futures):
                        index = futures[future]
                        outstanding -= 1
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            budget.spend(index, exc)
                            if telemetry:
                                telemetry.emit(
                                    WORKER_FAILURE, shard_index=index, error=repr(exc)
                                )
                                telemetry.emit(SHARD_RETRIED, shard_index=index)
                            failed.append(index)
                            continue
                        completed.add(index)
                        wall_s = (
                            telemetry.elapsed_seconds() - starts[index]
                            if telemetry
                            else None
                        )
                        _announce(telemetry, index, result, wall_s=wall_s)
                        if telemetry:
                            telemetry.emit(
                                QUEUE_DEPTH, depth=outstanding + len(failed)
                            )
                        yield index, result
                    pending = failed
            except BrokenProcessPool as exc:
                # A worker died hard (OOM-kill, segfault): every
                # in-flight future fails at once. Rebuild the pool and
                # resubmit whatever has no result yet, charging one
                # retry for the crash rather than one per casualty.
                budget.spend(None, exc)
                pending = [index for index in pending if index not in completed]
                if telemetry:
                    telemetry.emit(WORKER_FAILURE, error="process pool crashed")
                    for index in pending:
                        telemetry.emit(SHARD_RETRIED, shard_index=index)


class QueueFleetExecutor(FleetExecutor):
    """Queue-fed pool executor with a bounded in-flight window.

    Payloads are drawn from a FIFO backlog and at most
    ``jobs * prefetch`` are submitted at once, so neither the futures
    table nor the unreduced results can grow with the sweep size —
    the backend the million-device benchmark runs on. Failed payloads
    rejoin the backlog (charged to the shared retry budget) and pool
    crashes rebuild the pool and resubmit the in-flight window, same
    recovery semantics as :class:`ProcessFleetExecutor`. Emits
    ``queue_depth`` gauges so the telemetry bus tracks how deep the
    unprocessed queue ran.
    """

    def __init__(self, jobs: int, prefetch: int = DEFAULT_PREFETCH) -> None:
        if jobs < 1:
            raise FleetError(f"QueueFleetExecutor needs jobs >= 1, got {jobs}")
        if prefetch < 1:
            raise FleetError(f"prefetch must be positive, got {prefetch}")
        self.jobs = jobs
        self.prefetch = prefetch

    @property
    def window(self) -> int:
        """Most payloads submitted-but-unreduced at any moment."""
        return self.jobs * self.prefetch

    def stream(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> Iterator[Tuple[int, Any]]:
        budget = _RetryBudget(retry_budget)
        backlog = deque(range(len(payloads)))
        completed: set = set()
        starts: dict = {}
        while backlog:
            inflight: dict = {}
            try:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    while backlog or inflight:
                        while backlog and len(inflight) < self.window:
                            index = backlog.popleft()
                            inflight[pool.submit(fn, payloads[index])] = index
                            if telemetry:
                                starts[index] = telemetry.elapsed_seconds()
                                telemetry.emit(SHARD_STARTED, shard_index=index)
                        if telemetry:
                            telemetry.emit(
                                QUEUE_DEPTH, depth=len(inflight) + len(backlog)
                            )
                        done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                        for future in done:
                            index = inflight.pop(future)
                            try:
                                result = future.result()
                            except BrokenProcessPool:
                                raise
                            except Exception as exc:
                                budget.spend(index, exc)
                                if telemetry:
                                    telemetry.emit(
                                        WORKER_FAILURE,
                                        shard_index=index,
                                        error=repr(exc),
                                    )
                                    telemetry.emit(
                                        SHARD_RETRIED, shard_index=index
                                    )
                                backlog.append(index)
                                continue
                            completed.add(index)
                            wall_s = (
                                telemetry.elapsed_seconds() - starts[index]
                                if telemetry
                                else None
                            )
                            _announce(telemetry, index, result, wall_s=wall_s)
                            yield index, result
            except BrokenProcessPool as exc:
                budget.spend(None, exc)
                casualties = sorted(
                    index
                    for index in inflight.values()
                    if index not in completed
                )
                # Put the crashed window back at the head of the queue
                # so recovery re-runs the oldest work first.
                for index in reversed(casualties):
                    backlog.appendleft(index)
                if telemetry:
                    telemetry.emit(WORKER_FAILURE, error="process pool crashed")
                    for index in casualties:
                        telemetry.emit(SHARD_RETRIED, shard_index=index)


def _announce(
    telemetry: Optional[TelemetryBus],
    index: int,
    result: Any,
    wall_s: Optional[float] = None,
) -> None:
    """Emit SHARD_FINISHED, reading counters off fleet shard results.

    ``wall_s`` is measured by the executor in the *parent* process
    (submission to completion on the telemetry bus clock) rather than
    carried on the result: shard results are pickled and checkpointed,
    so a wall-time field would make two identical runs byte-differ.
    """
    if telemetry is None:
        return
    payload = {}
    for attribute, name in (
        ("events_processed", "events"),
        ("device_count", "devices"),
    ):
        value = getattr(result, attribute, None)
        if value is not None:
            payload[name] = value
    if wall_s is not None:
        payload["wall_s"] = wall_s
    telemetry.emit(SHARD_FINISHED, shard_index=index, **payload)


def make_executor(jobs: int, kind: str = "auto") -> FleetExecutor:
    """The executor for a ``--jobs N`` (and ``--executor KIND``) request.

    ``auto`` keeps the historical dispatch: serial for one job, the
    eager process pool otherwise. ``queue`` selects the bounded-window
    :class:`QueueFleetExecutor` at any job count.
    """
    if jobs < 1:
        raise FleetError(f"jobs must be positive, got {jobs}")
    if kind == "auto":
        return SerialExecutor() if jobs == 1 else ProcessFleetExecutor(jobs)
    if kind == "serial":
        if jobs != 1:
            raise FleetError(f"serial executor runs one job, got --jobs {jobs}")
        return SerialExecutor()
    if kind == "process":
        return ProcessFleetExecutor(jobs)
    if kind == "queue":
        return QueueFleetExecutor(jobs)
    raise FleetError(
        f"unknown executor kind {kind!r}; "
        "expected auto, serial, process, or queue"
    )
