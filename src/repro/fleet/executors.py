"""Execution backends for fleet work: serial and multiprocessing.

Both executors implement the same contract: run a picklable function
over an indexed list of payloads and return the results *in payload
order*, regardless of completion order. Failures are retried against a
capped, run-wide retry budget; exhausting it raises
:class:`~repro.errors.WorkerCrashError`. Because results are slotted by
index and every payload is self-contained, the choice of executor (and
the number of workers) can never change what a fleet run computes —
only how fast it computes it.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import FleetError, WorkerCrashError
from repro.fleet.telemetry import (
    SHARD_FINISHED,
    SHARD_RETRIED,
    SHARD_STARTED,
    WORKER_FAILURE,
    TelemetryBus,
)

#: Default cap on retries across one whole run (not per payload).
DEFAULT_RETRY_BUDGET = 3


class FleetExecutor:
    """Contract shared by every execution backend."""

    #: Worker parallelism the backend provides.
    jobs: int = 1

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> List[Any]:
        """Run ``fn`` over ``payloads``; results ordered by payload index.

        ``on_result(index, result)`` fires as each result lands (in
        completion order — used for incremental checkpointing), while
        the returned list is always index-ordered.
        """
        raise NotImplementedError


class _RetryBudget:
    """Run-wide failure allowance shared by all payloads."""

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise FleetError(f"retry budget must be non-negative, got {budget}")
        self._remaining = budget

    def spend(self, index: Optional[int], error: BaseException) -> None:
        """Consume one retry, or raise when the budget is gone."""
        if self._remaining <= 0:
            raise WorkerCrashError(
                f"retry budget exhausted at shard {index}: {error!r}"
            ) from error
        self._remaining -= 1


class SerialExecutor(FleetExecutor):
    """In-process fallback sharing the pool executor's interface.

    Used for ``--jobs 1``, for environments without usable process
    pools, and as the determinism reference the parallel path is
    byte-compared against.
    """

    jobs = 1

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> List[Any]:
        budget = _RetryBudget(retry_budget)
        results: List[Any] = [None] * len(payloads)
        for index, payload in enumerate(payloads):
            while True:
                if telemetry:
                    telemetry.emit(SHARD_STARTED, shard_index=index)
                try:
                    result = fn(payload)
                except Exception as exc:
                    budget.spend(index, exc)
                    if telemetry:
                        telemetry.emit(
                            WORKER_FAILURE, shard_index=index, error=repr(exc)
                        )
                        telemetry.emit(SHARD_RETRIED, shard_index=index)
                    continue
                results[index] = result
                _announce(telemetry, index, result)
                if on_result:
                    on_result(index, result)
                break
        return results


class ProcessFleetExecutor(FleetExecutor):
    """``multiprocessing``-backed pool executor.

    Survives both worker exceptions (the payload is resubmitted) and
    whole-pool crashes (the pool is rebuilt and every unfinished payload
    resubmitted), each charged against the shared retry budget.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise FleetError(
                f"ProcessFleetExecutor needs jobs >= 2, got {jobs}; "
                "use SerialExecutor for single-worker runs"
            )
        self.jobs = jobs

    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        telemetry: Optional[TelemetryBus] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> List[Any]:
        budget = _RetryBudget(retry_budget)
        results: List[Any] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        while pending:
            try:
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    futures = {}
                    for index in pending:
                        futures[pool.submit(fn, payloads[index])] = index
                        if telemetry:
                            telemetry.emit(SHARD_STARTED, shard_index=index)
                    failed: List[int] = []
                    for future in as_completed(futures):
                        index = futures[future]
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:
                            budget.spend(index, exc)
                            if telemetry:
                                telemetry.emit(
                                    WORKER_FAILURE, shard_index=index, error=repr(exc)
                                )
                                telemetry.emit(SHARD_RETRIED, shard_index=index)
                            failed.append(index)
                            continue
                        results[index] = result
                        _announce(telemetry, index, result)
                        if on_result:
                            on_result(index, result)
                    pending = failed
            except BrokenProcessPool as exc:
                # A worker died hard (OOM-kill, segfault): every
                # in-flight future fails at once. Rebuild the pool and
                # resubmit whatever has no result yet, charging one
                # retry for the crash rather than one per casualty.
                budget.spend(None, exc)
                pending = [index for index in pending if results[index] is None]
                if telemetry:
                    telemetry.emit(WORKER_FAILURE, error="process pool crashed")
                    for index in pending:
                        telemetry.emit(SHARD_RETRIED, shard_index=index)
        return results


def _announce(telemetry: Optional[TelemetryBus], index: int, result: Any) -> None:
    """Emit SHARD_FINISHED, reading counters off fleet shard results."""
    if telemetry is None:
        return
    payload = {}
    for attribute, name in (
        ("events_processed", "events"),
        ("device_count", "devices"),
        ("wall_seconds", "wall_s"),
    ):
        value = getattr(result, attribute, None)
        if value is not None:
            payload[name] = value
    telemetry.emit(SHARD_FINISHED, shard_index=index, **payload)


def make_executor(jobs: int) -> FleetExecutor:
    """The executor for a ``--jobs N`` request."""
    if jobs < 1:
        raise FleetError(f"jobs must be positive, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ProcessFleetExecutor(jobs)
