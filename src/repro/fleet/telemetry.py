"""Fleet telemetry bus: progress, throughput, and failure counters.

The engine and executors publish structured events here instead of
printing; anything that wants live progress (the CLI, a test, a future
dashboard) subscribes. Telemetry is *observability only* — nothing in
the deterministic aggregate report may come from this module, because
wall-clock throughput and worker-failure counts legitimately differ
between runs of the same spec.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

#: Event kinds the engine/executors emit.
RUN_STARTED = "run_started"
SHARD_STARTED = "shard_started"
SHARD_FINISHED = "shard_finished"
SHARD_RETRIED = "shard_retried"
WORKER_FAILURE = "worker_failure"
RUN_FINISHED = "run_finished"
#: Gauge kinds — instantaneous values whose peaks the bus tracks.
#: ``queue_depth`` (payload ``depth``): work submitted or backlogged
#: but not yet reduced, emitted by the executors; ``live_shards``
#: (payload ``count``): shard results the engine holds in memory;
#: ``peak_rss_bytes`` (payload ``bytes``): the process's resident-set
#: high-water mark sampled by the engine.
QUEUE_DEPTH = "queue_depth"
LIVE_SHARDS = "live_shards"
PEAK_RSS = "peak_rss_bytes"
#: Service-loop lifecycle events (see :mod:`repro.service.daemon`).
CYCLE_STARTED = "cycle_started"
STAGE_FINISHED = "stage_finished"
CYCLE_FINISHED = "cycle_finished"

#: Below this elapsed wall time the throughput rate is meaningless:
#: dividing a nonzero event count by a few nanoseconds of clock skew
#: reports absurd rates on the first snapshot of a run or cycle.
MIN_RATE_ELAPSED_S = 1e-6


@dataclass(frozen=True)
class TelemetryEvent:
    """One bus message."""

    kind: str
    shard_index: Optional[int]
    payload: Mapping[str, Any]
    elapsed_s: float


@dataclass
class FleetCounters:
    """Monotonic counters accumulated over one run."""

    shards_total: int = 0
    shards_done: int = 0
    devices_done: int = 0
    events_processed: int = 0
    worker_failures: int = 0
    retries: int = 0
    #: High-water marks of the streaming gauges (see QUEUE_DEPTH,
    #: LIVE_SHARDS, PEAK_RSS): deepest executor queue, most shard
    #: results held live by the engine, largest resident set sampled.
    peak_queue_depth: int = 0
    peak_live_shards: int = 0
    peak_rss_bytes: int = 0

    @property
    def shards_pending(self) -> int:
        """Shards not yet completed."""
        return max(0, self.shards_total - self.shards_done)


class TelemetryBus:
    """Pub/sub fan-out with built-in progress counters.

    Parameters
    ----------
    clock:
        Monotonic time source; injectable so tests can assert
        throughput math without sleeping.
    history_limit:
        Cap on retained events; older ones are discarded once the
        buffer fills. ``None`` (the default) keeps everything — fleet-
        scale sweeps should bound it so telemetry, like the reducer,
        stays constant-memory. Counters are unaffected either way.
    """

    # Wall-clock default is the point of the bus: throughput display is
    # observability-only and excluded from the deterministic report.
    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,  # lint: ignore[det-wallclock]
        history_limit: Optional[int] = None,
    ) -> None:
        self._clock = clock
        self._start = clock()
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        self.counters = FleetCounters()
        self.history: Deque[TelemetryEvent] = deque(maxlen=history_limit)

    # -- subscription ------------------------------------------------------

    def subscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        """Register a callback invoked for every emitted event."""
        self._subscribers.append(callback)

    # -- emission ----------------------------------------------------------

    def emit(
        self, kind: str, shard_index: Optional[int] = None, **payload: Any
    ) -> TelemetryEvent:
        """Publish one event, updating the counters it implies."""
        event = TelemetryEvent(
            kind=kind,
            shard_index=shard_index,
            payload=dict(payload),
            elapsed_s=self.elapsed_seconds(),
        )
        if kind == RUN_STARTED:
            self.counters.shards_total = int(payload.get("shards", 0))
        elif kind == SHARD_FINISHED:
            self.counters.shards_done += 1
            self.counters.devices_done += int(payload.get("devices", 0))
            self.counters.events_processed += int(payload.get("events", 0))
        elif kind == WORKER_FAILURE:
            self.counters.worker_failures += 1
        elif kind == SHARD_RETRIED:
            self.counters.retries += 1
        elif kind == QUEUE_DEPTH:
            self.counters.peak_queue_depth = max(
                self.counters.peak_queue_depth, int(payload.get("depth", 0))
            )
        elif kind == LIVE_SHARDS:
            self.counters.peak_live_shards = max(
                self.counters.peak_live_shards, int(payload.get("count", 0))
            )
        elif kind == PEAK_RSS:
            self.counters.peak_rss_bytes = max(
                self.counters.peak_rss_bytes, int(payload.get("bytes", 0))
            )
        self.history.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    # -- derived metrics ---------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Wall time since the bus was created."""
        return self._clock() - self._start

    def events_per_second(self) -> float:
        """Fleet-wide simulated-event throughput so far.

        Returns 0.0 (rather than a division error or a nonsense
        rate) until at least :data:`MIN_RATE_ELAPSED_S` of wall time
        has elapsed.
        """
        elapsed = self.elapsed_seconds()
        if elapsed < MIN_RATE_ELAPSED_S:
            return 0.0
        return self.counters.events_processed / elapsed

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of the counters (for logs and tests)."""
        return {
            "shards_total": self.counters.shards_total,
            "shards_done": self.counters.shards_done,
            "devices_done": self.counters.devices_done,
            "events_processed": self.counters.events_processed,
            "worker_failures": self.counters.worker_failures,
            "retries": self.counters.retries,
            "peak_queue_depth": self.counters.peak_queue_depth,
            "peak_live_shards": self.counters.peak_live_shards,
            "peak_rss_bytes": self.counters.peak_rss_bytes,
            "events_per_second": self.events_per_second(),
        }


def progress_printer(out) -> Callable[[TelemetryEvent], None]:
    """A subscriber that renders one line per lifecycle event.

    Intended for the CLI's stderr; deliberately excluded from stdout so
    the deterministic report remains byte-comparable across runs.
    """

    def _print(event: TelemetryEvent) -> None:
        if event.kind == RUN_STARTED:
            print(
                f"[fleet] run started: {event.payload.get('devices', '?')} devices "
                f"in {event.payload.get('shards', '?')} shards "
                f"x {event.payload.get('jobs', '?')} jobs",
                file=out,
            )
        elif event.kind == SHARD_FINISHED:
            print(
                f"[fleet] shard {event.shard_index} done "
                f"({event.payload.get('events', 0)} events, "
                f"{event.payload.get('wall_s', 0.0):.2f}s)",
                file=out,
            )
        elif event.kind == WORKER_FAILURE:
            print(
                f"[fleet] worker failure on shard {event.shard_index}: "
                f"{event.payload.get('error', 'unknown')}",
                file=out,
            )
        elif event.kind == SHARD_RETRIED:
            print(f"[fleet] retrying shard {event.shard_index}", file=out)
        elif event.kind == RUN_FINISHED:
            print(
                f"[fleet] run finished: {event.payload.get('events', 0)} events "
                f"in {event.elapsed_s:.2f}s "
                f"({event.payload.get('events_per_second', 0.0):.0f} ev/s)",
                file=out,
            )

    return _print
