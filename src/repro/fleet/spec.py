"""Fleet run specification and shard planning.

A :class:`FleetSpec` pins down *everything* a fleet simulation depends
on — game, device population, per-device session plan, and the seeds of
every random stream — so that two runs of the same spec are identical
no matter how the work is scheduled. Shard planning is a pure function
of the spec: device ids are dealt into contiguous chunks, and each
device's randomness is derived from ``(seed, device_id)`` alone, never
from the shard it happens to land in. That derivation is what makes
``--jobs 1`` and ``--jobs 8`` byte-identical in aggregate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Iterator, List, Tuple

from repro.errors import FleetError
from repro.games.registry import GAME_NAMES

#: Bump when the spec/shard/result wire format changes incompatibly;
#: checkpoints embed it so stale run directories are rejected loudly.
FLEET_FORMAT_VERSION = 2

#: Cohort names for staged rollouts. Every device is in exactly one;
#: without a challenger the whole fleet is the champion cohort.
COHORT_CHAMPION = "champion"
COHORT_CHALLENGER = "challenger"


def assign_cohort(device_id: int, fraction: float, salt: int) -> str:
    """Deal one device into the champion or challenger cohort.

    A pure hash of ``(salt, device_id)`` — never the shard index, the
    worker, or any call ordering — so the assignment is stable across
    ``--jobs`` settings, shard sizes, and re-runs, and a device keeps
    its cohort for the whole rollout. Raising ``fraction`` only *adds*
    devices to the challenger cohort (each device has a fixed bucket
    value compared against the threshold), matching how fleet rollouts
    widen 1% -> 10% -> 50% without reshuffling earlier testers.
    """
    if fraction <= 0.0:
        return COHORT_CHAMPION
    if fraction >= 1.0:
        return COHORT_CHALLENGER
    digest = hashlib.blake2b(
        f"cohort:{salt}:{device_id}".encode("utf-8"), digest_size=8
    ).digest()
    bucket = int.from_bytes(digest, "big") / 2**64
    return COHORT_CHALLENGER if bucket < fraction else COHORT_CHAMPION


@dataclass(frozen=True)
class FleetSpec:
    """Complete, immutable description of one fleet simulation.

    Attributes
    ----------
    game_name:
        Workload every device plays (one game per fleet run, matching
        the paper's per-game profiling pipeline).
    devices:
        Population size; device ids are ``0..devices-1``.
    sessions_per_device:
        How many recorded sessions each device plays.
    duration_s:
        Nominal session length; each device's archetype rescales it.
    seed:
        Master seed. Seeds the population's archetype deal and, through
        it, every device's gesture streams.
    shard_size:
        Devices per unit of schedulable work. Aggregates must not
        depend on it (the determinism property test pins this).
    profile_seeds / profile_duration_s:
        Sessions the cloud profiler replays to build the shipped
        necessary-input selection and seed table.
    measure_energy:
        When True each session runs both the SNIP runtime and the
        baseline event loop on fresh SoCs; when False only the
        federated statistics pass runs (cheap, e.g. for table-building
        fleets).
    federate:
        When True each device uploads per-key sufficient statistics and
        the reducer merges them into a fleet table.
    challenger_fraction:
        Fraction of the fleet dealt into the challenger cohort of a
        staged rollout (0 disables the split). Assignment is a pure
        hash of ``(seed, device_id)`` — see :func:`assign_cohort` — so
        it is invariant under shard size and job count.
    champion_digest / challenger_digest:
        Content identities of the packages each cohort runs, recorded
        so the fingerprint (and therefore checkpoints and reports)
        distinguishes rollouts of different candidates. Empty when the
        engine profiles its own package from ``profile_seeds``.
    """

    game_name: str
    devices: int
    sessions_per_device: int = 1
    duration_s: float = 10.0
    seed: int = 0
    shard_size: int = 8
    profile_seeds: Tuple[int, ...] = (1,)
    profile_duration_s: float = 15.0
    measure_energy: bool = True
    federate: bool = True
    challenger_fraction: float = 0.0
    champion_digest: str = ""
    challenger_digest: str = ""

    def __post_init__(self) -> None:
        if self.game_name not in GAME_NAMES:
            raise FleetError(f"unknown game {self.game_name!r}")
        if self.devices < 1:
            raise FleetError(f"fleet needs at least one device, got {self.devices}")
        if self.sessions_per_device < 1:
            raise FleetError(
                f"sessions_per_device must be positive, got {self.sessions_per_device}"
            )
        if self.duration_s <= 0 or self.profile_duration_s <= 0:
            raise FleetError("session durations must be positive")
        if self.shard_size < 1:
            raise FleetError(f"shard_size must be positive, got {self.shard_size}")
        if not self.profile_seeds:
            raise FleetError("profile_seeds must not be empty")
        if not (self.measure_energy or self.federate):
            raise FleetError("a fleet run must measure energy, federate, or both")
        if not 0.0 <= self.challenger_fraction <= 1.0:
            raise FleetError(
                f"challenger_fraction must be within [0, 1], "
                f"got {self.challenger_fraction}"
            )

    # -- staged rollout ----------------------------------------------------

    def cohort_of(self, device_id: int) -> str:
        """Which cohort a device belongs to under this spec."""
        return assign_cohort(device_id, self.challenger_fraction, self.seed)

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable digest of everything that determines the results.

        ``shard_size`` is deliberately *excluded*: resharding a
        checkpointed run would change which shard file holds which
        device, so the checkpoint store hashes it separately, but the
        aggregate results it protects are shard-size invariant.
        """
        payload = asdict(self)
        payload.pop("shard_size")
        payload["format_version"] = FLEET_FORMAT_VERSION
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()

    def layout_fingerprint(self) -> str:
        """Fingerprint *including* the shard layout (checkpoint identity)."""
        combined = f"{self.fingerprint()}:shard_size={self.shard_size}"
        return hashlib.blake2b(combined.encode("utf-8"), digest_size=16).hexdigest()

    # -- shard planning ----------------------------------------------------

    @property
    def total_sessions(self) -> int:
        """Sessions across the whole fleet."""
        return self.devices * self.sessions_per_device

    @property
    def shard_count(self) -> int:
        """How many shards the device population splits into."""
        return (self.devices + self.shard_size - 1) // self.shard_size

    def shard_at(self, index: int) -> "Shard":
        """The shard holding one contiguous slice of the population.

        A pure function of ``(spec, index)``, so the streaming engine
        can materialise shards one at a time instead of planning the
        whole sweep upfront — at 10^6 devices the full plan is the
        first thing that must not live in memory.
        """
        if not 0 <= index < self.shard_count:
            raise FleetError(
                f"shard index {index} outside 0..{self.shard_count - 1}"
            )
        start = index * self.shard_size
        stop = min(start + self.shard_size, self.devices)
        return Shard(index=index, device_ids=tuple(range(start, stop)))

    def iter_shards(self) -> Iterator["Shard"]:
        """Deal device ids into contiguous shards, one at a time."""
        for index in range(self.shard_count):
            yield self.shard_at(index)

    def shards(self) -> List["Shard"]:
        """Every shard, materialised (prefer :meth:`iter_shards` at scale)."""
        return list(self.iter_shards())


@dataclass(frozen=True)
class Shard:
    """One schedulable chunk of the device population."""

    index: int
    device_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.device_ids:
            raise FleetError(f"shard {self.index} has no devices")

    def __len__(self) -> int:
        return len(self.device_ids)
