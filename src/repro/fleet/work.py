"""Per-shard fleet work: the function that runs inside worker processes.

Everything that crosses the process boundary lives here and must stay
picklable: the :class:`ShardTask` going out (spec + shipped table) and
the :class:`ShardResult` coming back (per-device ledgers, runtime
counters, federated statistics). Each device is simulated purely from
``(spec.seed, device_id)``; the shard a device lands in never feeds any
random stream, which is the root of the engine's jobs/shard-size
determinism guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.android.dispatch import BatchedEventLoop, EventLoop
from repro.core.config import SnipConfig
from repro.core.fastpath import batching_enabled
from repro.core.federated import ContributionBuilder, DeviceContribution
from repro.core.runtime import SnipRuntime
from repro.core.selection import SelectedInputs
from repro.core.table import SnipTable
from repro.errors import FleetError
from repro.fleet.spec import COHORT_CHALLENGER, COHORT_CHAMPION, FleetSpec
from repro.games.registry import GAME_CONTENT_SEED, create_game, fresh_game
from repro.soc.energy import ColumnarMeter, EnergyReport, merge_reports
from repro.soc.soc import snapdragon_821
from repro.users.population import Population


@dataclass(frozen=True)
class ShardTask:
    """One shard's worth of work, shipped to a worker process."""

    shard_index: int
    spec: FleetSpec
    device_ids: Tuple[int, ...]
    #: The centrally profiled artifacts every device receives over the
    #: air: the necessary-input selection and the seed table.
    selection: SelectedInputs
    table: SnipTable
    config: SnipConfig
    #: The staged-rollout candidate shipped to the challenger cohort
    #: (``None`` unless ``spec.challenger_fraction > 0``).
    challenger_selection: Optional[SelectedInputs] = None
    challenger_table: Optional[SnipTable] = None


@dataclass
class DeviceResult:
    """Everything one device reports back to the aggregator."""

    device_id: int
    archetype: str
    sessions: int
    #: Which rollout cohort the device was dealt into (always
    #: ``"champion"`` outside staged rollouts).
    cohort: str = COHORT_CHAMPION
    events: int = 0
    #: SNIP-runtime ledger merged over the device's sessions.
    report: Optional[EnergyReport] = None
    baseline_joules: float = 0.0
    hits: int = 0
    misses: int = 0
    avoided_cycles: float = 0.0
    executed_cycles: float = 0.0
    raw_uplink_bytes: int = 0
    contribution: Optional[DeviceContribution] = None

    @property
    def snip_joules(self) -> float:
        """Total energy the device spent under the SNIP runtime."""
        return self.report.total_joules if self.report else 0.0


@dataclass
class ShardResult:
    """One shard's aggregated worker output."""

    shard_index: int
    spec_fingerprint: str
    device_results: List[DeviceResult] = field(default_factory=list)

    @property
    def device_count(self) -> int:
        """Devices simulated by this shard."""
        return len(self.device_results)

    @property
    def events_processed(self) -> int:
        """Simulated events across the shard's devices."""
        return sum(result.events for result in self.device_results)


def _replay_through(runner, trace, effective_s: float, soc) -> None:
    """Feed a recorded trace through a runner, advancing session time."""
    clock = 0.0
    for recorded in trace:
        event = recorded.to_event()
        if event.timestamp > clock:
            soc.advance_time(event.timestamp - clock)
            clock = event.timestamp
        runner.deliver(event)
    if effective_s > clock:
        soc.advance_time(effective_s - clock)


def run_device_reference(
    device_id: int,
    spec: FleetSpec,
    selection: SelectedInputs,
    table: SnipTable,
    config: SnipConfig,
    population: Optional[Population] = None,
    challenger_selection: Optional[SelectedInputs] = None,
    challenger_table: Optional[SnipTable] = None,
) -> DeviceResult:
    """Scalar golden reference for :func:`run_device`.

    The original per-event device loop, kept verbatim: the equivalence
    suite asserts the batched path produces byte-identical
    ``DeviceResult`` pickles against this, and
    ``REPRO_SNIP_NO_BATCH=1`` routes production traffic back through it.
    """
    population = population or Population(seed=spec.seed)
    archetype = population.archetype_of(device_id)
    cohort = spec.cohort_of(device_id)
    if cohort == COHORT_CHALLENGER:
        if challenger_table is None or challenger_selection is None:
            raise FleetError(
                f"device {device_id} was dealt into the challenger cohort "
                f"but no challenger package was shipped"
            )
        selection, table = challenger_selection, challenger_table
    result = DeviceResult(
        device_id=device_id,
        archetype=archetype.name,
        sessions=spec.sessions_per_device,
        cohort=cohort,
    )
    # Sessions stream one trace at a time: each is generated, replayed
    # through every consumer (SNIP pass, baseline pass, contribution
    # fold), and dropped — peak memory per device is one session's
    # events, never the whole session list.
    builder = (
        ContributionBuilder(device_id, spec.game_name, selection)
        if spec.federate and cohort == COHORT_CHAMPION
        else None
    )
    session_reports = []
    traces = population.iter_user_traces(
        spec.game_name, device_id, spec.sessions_per_device, spec.duration_s
    )
    for session, trace in enumerate(traces):
        result.events += len(trace)
        result.raw_uplink_bytes += trace.uplink_bytes
        if spec.measure_energy:
            effective_s = spec.duration_s * archetype.session_scale
            # The SNIP pass: shipped table (private copy, so online
            # learning stays per-session), full probe accounting.
            soc = snapdragon_821()
            game = create_game(spec.game_name, seed=GAME_CONTENT_SEED)
            runtime = SnipRuntime(soc, game, table.clone(), config)
            _replay_through(runtime, trace, effective_s, soc)
            session_reports.append(soc.report())
            result.hits += runtime.stats.hits
            result.misses += runtime.stats.misses
            result.avoided_cycles += runtime.stats.avoided_cycles
            result.executed_cycles += runtime.stats.executed_cycles
            # The baseline pass: same events on an unmodified phone.
            base_soc = snapdragon_821()
            base_game = create_game(spec.game_name, seed=GAME_CONTENT_SEED)
            loop = EventLoop(base_soc, base_game)
            _replay_through(loop, trace, effective_s, base_soc)
            result.baseline_joules += base_soc.meter.total_joules
        if builder is not None:
            builder.add_session(trace, session)
    if spec.measure_energy:
        result.report = merge_reports(session_reports)
    if builder is not None:
        result.contribution = builder.finish()
    return result


def _replay_columnar(runner, events, keys, effective_s: float, soc) -> None:
    """Feed materialised session events through a runner with the clock.

    ``keys`` carries per-event precomputed probe keys (from
    :meth:`SnipRuntime.session_keys`) or ``None`` for runners whose
    ``deliver`` takes no key (the baseline loop).
    """
    clock = 0.0
    deliver = runner.deliver
    advance = soc.advance_time
    if keys is None:
        for event in events:
            timestamp = event.timestamp
            if timestamp > clock:
                advance(timestamp - clock)
                clock = timestamp
            deliver(event)
    else:
        for event, key in zip(events, keys):
            timestamp = event.timestamp
            if timestamp > clock:
                advance(timestamp - clock)
                clock = timestamp
            deliver(event, key)
    if effective_s > clock:
        advance(effective_s - clock)


def run_device(
    device_id: int,
    spec: FleetSpec,
    selection: SelectedInputs,
    table: SnipTable,
    config: SnipConfig,
    population: Optional[Population] = None,
    challenger_selection: Optional[SelectedInputs] = None,
    challenger_table: Optional[SnipTable] = None,
) -> DeviceResult:
    """Simulate one device's sessions; pure in ``(spec.seed, device_id)``.

    Columnar fast path: sessions are generated in structure-of-arrays
    form (each event materialised exactly once), games come from the
    template cache, energy lands in append-only :class:`ColumnarMeter`
    ledgers fed by static delivery/upkeep cost patterns, probe keys for
    event-only selections are precomputed per session, and the
    federated statistics fold runs fused over the already-materialised
    events. Byte-identical to :func:`run_device_reference` — same
    ``DeviceResult`` pickles, same fleet reports — as asserted by the
    golden-equivalence suite; ``REPRO_SNIP_NO_BATCH=1`` (or the CLI's
    ``--no-batch``) falls back to the reference loop.

    During a staged rollout, devices dealt into the challenger cohort
    run the challenger's table instead of the champion's. Challenger
    devices sit out the federated statistics pass: contributions are
    keyed by the necessary-input selection, and merging two selections'
    statistics into one fleet table would corrupt it.
    """
    if not batching_enabled():
        return run_device_reference(
            device_id,
            spec,
            selection,
            table,
            config,
            population=population,
            challenger_selection=challenger_selection,
            challenger_table=challenger_table,
        )
    population = population or Population(seed=spec.seed)
    archetype = population.archetype_of(device_id)
    cohort = spec.cohort_of(device_id)
    if cohort == COHORT_CHALLENGER:
        if challenger_table is None or challenger_selection is None:
            raise FleetError(
                f"device {device_id} was dealt into the challenger cohort "
                f"but no challenger package was shipped"
            )
        selection, table = challenger_selection, challenger_table
    result = DeviceResult(
        device_id=device_id,
        archetype=archetype.name,
        sessions=spec.sessions_per_device,
        cohort=cohort,
    )
    builder = (
        ContributionBuilder(device_id, spec.game_name, selection)
        if spec.federate and cohort == COHORT_CHAMPION
        else None
    )
    session_reports = []
    sessions = population.iter_columnar_sessions(
        spec.game_name, device_id, spec.sessions_per_device, spec.duration_s
    )
    for session, columnar in enumerate(sessions):
        events = columnar.events
        result.events += len(events)
        result.raw_uplink_bytes += columnar.uplink_bytes
        if spec.measure_energy:
            effective_s = spec.duration_s * archetype.session_scale
            soc = snapdragon_821(meter=ColumnarMeter())
            game = fresh_game(spec.game_name, seed=GAME_CONTENT_SEED)
            runtime = SnipRuntime(soc, game, table.clone(), config)
            keys = runtime.session_keys(events)
            _replay_columnar(runtime, events, keys, effective_s, soc)
            session_reports.append(soc.report())
            result.hits += runtime.stats.hits
            result.misses += runtime.stats.misses
            result.avoided_cycles += runtime.stats.avoided_cycles
            result.executed_cycles += runtime.stats.executed_cycles
            base_soc = snapdragon_821(meter=ColumnarMeter())
            base_game = fresh_game(spec.game_name, seed=GAME_CONTENT_SEED)
            loop = BatchedEventLoop(base_soc, base_game)
            _replay_columnar(loop, events, None, effective_s, base_soc)
            result.baseline_joules += base_soc.meter.total_joules
        if builder is not None:
            builder.add_session_events(events, session)
    if spec.measure_energy:
        result.report = merge_reports(session_reports)
    if builder is not None:
        result.contribution = builder.finish()
    return result


def run_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: simulate every device in the shard.

    Deliberately clock-free: a ``ShardResult`` is pickled back to the
    parent and checkpointed to disk, so a wall-time field — however
    "telemetry-only" — makes the checkpoint bytes differ between two
    identical runs.  Shard wall time is measured by the executor in
    the parent process instead and emitted straight to telemetry.
    """
    population = Population(seed=task.spec.seed)
    result = ShardResult(
        shard_index=task.shard_index,
        spec_fingerprint=task.spec.fingerprint(),
    )
    for device_id in task.device_ids:
        result.device_results.append(
            run_device(
                device_id,
                task.spec,
                task.selection,
                task.table,
                task.config,
                population=population,
                challenger_selection=task.challenger_selection,
                challenger_table=task.challenger_table,
            )
        )
    return result
