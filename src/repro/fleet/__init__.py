"""Parallel fleet-simulation engine (the ROADMAP's scale substrate).

Shards a device population into chunks, executes per-device game
sessions across a ``multiprocessing`` worker pool (serial fallback and
bounded-queue backend share the same interface), and **streams** shard
results through fold-style reducers in canonical device order — each
result is folded and dropped as it completes, so memory stays bounded
by ``max_live_shards`` at any fleet size. Supports checkpoint/resume
of partially completed sweeps (corrupt shard files are evicted as
resumable misses). Seeded per-device RNG derivation plus the ordered
fold make aggregates byte-identical across ``--jobs`` settings,
executors, and shard sizes.
"""

from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.engine import (
    DEFAULT_MAX_LIVE_SHARDS,
    FleetEngine,
    FleetReport,
    peak_rss_bytes,
    run_fleet,
)
from repro.fleet.executors import (
    DEFAULT_RETRY_BUDGET,
    FleetExecutor,
    ProcessFleetExecutor,
    QueueFleetExecutor,
    SerialExecutor,
    make_executor,
)
from repro.fleet.reducers import (
    Accumulator,
    CensusAccumulator,
    CohortTotalsAccumulator,
    ContributionsAccumulator,
    EnergyAccumulator,
    FleetFold,
    FleetReduction,
    FleetTotals,
    TotalsAccumulator,
    canonical_device_results,
    reduce_census,
    reduce_cohort_totals,
    reduce_contributions,
    reduce_energy,
    reduce_totals,
)
from repro.fleet.spec import FleetSpec, Shard
from repro.fleet.telemetry import TelemetryBus, TelemetryEvent, progress_printer
from repro.fleet.work import DeviceResult, ShardResult, ShardTask, run_device, run_shard

__all__ = [
    "Accumulator",
    "CensusAccumulator",
    "CheckpointStore",
    "CohortTotalsAccumulator",
    "ContributionsAccumulator",
    "DEFAULT_MAX_LIVE_SHARDS",
    "DEFAULT_RETRY_BUDGET",
    "DeviceResult",
    "EnergyAccumulator",
    "FleetEngine",
    "FleetExecutor",
    "FleetFold",
    "FleetReduction",
    "FleetReport",
    "FleetSpec",
    "FleetTotals",
    "ProcessFleetExecutor",
    "QueueFleetExecutor",
    "SerialExecutor",
    "Shard",
    "ShardResult",
    "ShardTask",
    "TelemetryBus",
    "TelemetryEvent",
    "TotalsAccumulator",
    "canonical_device_results",
    "make_executor",
    "peak_rss_bytes",
    "progress_printer",
    "reduce_census",
    "reduce_cohort_totals",
    "reduce_contributions",
    "reduce_energy",
    "reduce_totals",
    "run_device",
    "run_fleet",
    "run_shard",
]
