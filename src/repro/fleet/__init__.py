"""Parallel fleet-simulation engine (the ROADMAP's scale substrate).

Shards a device population into chunks, executes per-device game
sessions across a ``multiprocessing`` worker pool (or a serial fallback
with the same interface), reduces per-device results order-independently
(energy ledgers, runtime counters, federated key statistics), and
supports checkpoint/resume of partially completed sweeps. Seeded
per-device RNG derivation makes aggregates byte-identical across
``--jobs`` settings and shard sizes.
"""

from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.engine import FleetEngine, FleetReport, run_fleet
from repro.fleet.executors import (
    DEFAULT_RETRY_BUDGET,
    FleetExecutor,
    ProcessFleetExecutor,
    SerialExecutor,
    make_executor,
)
from repro.fleet.reducers import (
    FleetTotals,
    canonical_device_results,
    reduce_census,
    reduce_contributions,
    reduce_energy,
    reduce_totals,
)
from repro.fleet.spec import FleetSpec, Shard
from repro.fleet.telemetry import TelemetryBus, TelemetryEvent, progress_printer
from repro.fleet.work import DeviceResult, ShardResult, ShardTask, run_device, run_shard

__all__ = [
    "CheckpointStore",
    "DEFAULT_RETRY_BUDGET",
    "DeviceResult",
    "FleetEngine",
    "FleetExecutor",
    "FleetReport",
    "FleetSpec",
    "FleetTotals",
    "ProcessFleetExecutor",
    "SerialExecutor",
    "Shard",
    "ShardResult",
    "ShardTask",
    "TelemetryBus",
    "TelemetryEvent",
    "canonical_device_results",
    "make_executor",
    "progress_printer",
    "reduce_census",
    "reduce_contributions",
    "reduce_energy",
    "reduce_totals",
    "run_device",
    "run_fleet",
    "run_shard",
]
