"""Order-independent reduction of fleet shard outputs.

Workers finish in whatever order the scheduler picks, so every reducer
here first *canonicalises* — flattens shard results and sorts by device
id, verifying the population is complete — and only then folds. Folding
over a canonical order makes even floating-point sums bit-identical
across ``--jobs`` settings and shard sizes; commutativity alone would
not (float addition is not associative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import SnipConfig
from repro.core.federated import federate_contributions
from repro.core.selection import SelectedInputs
from repro.core.table import SnipTable
from repro.errors import FleetError
from repro.fleet.spec import FleetSpec
from repro.fleet.work import DeviceResult, ShardResult
from repro.soc.energy import EnergyReport, merge_reports


def canonical_device_results(
    shard_results: Iterable[ShardResult], spec: FleetSpec
) -> List[DeviceResult]:
    """Flatten shards into the device-id order every reducer folds in.

    Raises :class:`FleetError` when devices are missing or duplicated —
    a scheduler bug must never silently skew an aggregate.
    """
    flat: Dict[int, DeviceResult] = {}
    for shard in shard_results:
        if shard.spec_fingerprint != spec.fingerprint():
            raise FleetError(
                f"shard {shard.shard_index} was computed under a different "
                f"spec (fingerprint mismatch)"
            )
        for device in shard.device_results:
            if device.device_id in flat:
                raise FleetError(f"device {device.device_id} reported twice")
            flat[device.device_id] = device
    expected = set(range(spec.devices))
    missing = expected - set(flat)
    if missing:
        raise FleetError(f"devices missing from fleet results: {sorted(missing)}")
    extra = set(flat) - expected
    if extra:
        raise FleetError(f"unexpected device ids in fleet results: {sorted(extra)}")
    return [flat[device_id] for device_id in sorted(flat)]


@dataclass(frozen=True)
class FleetTotals:
    """Scalar aggregates folded over the canonical device order."""

    devices: int
    sessions: int
    events: int
    snip_joules: float
    baseline_joules: float
    hits: int
    misses: int
    avoided_cycles: float
    executed_cycles: float
    raw_uplink_bytes: int

    @property
    def savings(self) -> float:
        """Fleet-wide energy saved by SNIP vs the baseline fleet."""
        if self.baseline_joules <= 0:
            return 0.0
        return 1.0 - self.snip_joules / self.baseline_joules

    @property
    def hit_rate(self) -> float:
        """Fraction of delivered events that short-circuited."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def coverage(self) -> float:
        """Cycle-weighted fraction of execution short-circuited."""
        total = self.avoided_cycles + self.executed_cycles
        return self.avoided_cycles / total if total else 0.0


def reduce_totals(device_results: List[DeviceResult]) -> FleetTotals:
    """Fold the scalar counters (expects canonical order)."""
    snip_joules = 0.0
    baseline_joules = 0.0
    avoided = 0.0
    executed = 0.0
    hits = 0
    misses = 0
    events = 0
    sessions = 0
    raw_bytes = 0
    for device in device_results:
        snip_joules += device.snip_joules
        baseline_joules += device.baseline_joules
        avoided += device.avoided_cycles
        executed += device.executed_cycles
        hits += device.hits
        misses += device.misses
        events += device.events
        sessions += device.sessions
        raw_bytes += device.raw_uplink_bytes
    return FleetTotals(
        devices=len(device_results),
        sessions=sessions,
        events=events,
        snip_joules=snip_joules,
        baseline_joules=baseline_joules,
        hits=hits,
        misses=misses,
        avoided_cycles=avoided,
        executed_cycles=executed,
        raw_uplink_bytes=raw_bytes,
    )


def reduce_energy(device_results: List[DeviceResult]) -> Optional[EnergyReport]:
    """Merge per-device ledgers into one fleet ledger (canonical order)."""
    reports = [device.report for device in device_results if device.report]
    if not reports:
        return None
    return merge_reports(reports)


def reduce_census(device_results: List[DeviceResult]) -> Dict[str, int]:
    """Archetype head-count, keys sorted for stable rendering."""
    counts: Dict[str, int] = {}
    for device in device_results:
        counts[device.archetype] = counts.get(device.archetype, 0) + 1
    return dict(sorted(counts.items()))


def reduce_cohort_totals(
    device_results: List[DeviceResult],
) -> Dict[str, FleetTotals]:
    """Per-rollout-cohort scalar aggregates (expects canonical order).

    Grouping preserves the canonical device order within each cohort
    (cohort membership is a pure function of the device id), so the
    per-cohort float sums inherit the same bit-identical guarantee as
    the fleet-wide totals. Keys are sorted for stable rendering.
    """
    by_cohort: Dict[str, List[DeviceResult]] = {}
    for device in device_results:
        by_cohort.setdefault(device.cohort, []).append(device)
    return {
        cohort: reduce_totals(devices)
        for cohort, devices in sorted(by_cohort.items())
    }


def reduce_contributions(
    device_results: List[DeviceResult],
    selection: SelectedInputs,
    config: SnipConfig,
) -> Optional[Tuple[SnipTable, int]]:
    """Merge device statistics into the fleet table (canonical order).

    Returns ``(table, uplink_bytes)`` or ``None`` when the run did not
    federate.
    """
    contributions = [
        device.contribution for device in device_results if device.contribution
    ]
    if not contributions:
        return None
    return federate_contributions(contributions, selection, config)
