"""Incremental, order-canonical reduction of fleet shard outputs.

Every fleet aggregate is produced by a fold-style **accumulator**
(``init`` via the constructor, then ``update`` per device, ``merge``
between partials, ``finalize`` once) so the engine can consume
:class:`~repro.fleet.work.ShardResult`\\ s as the executor completes
them and drop each one immediately — constant memory in the number of
devices. The legacy ``reduce_*`` functions remain as single-pass
wrappers over the accumulators and now accept any iterable (including
generators), not just lists.

Determinism contract: floating-point addition is not associative, so
byte-identical reports require folding devices in **canonical device-id
order**. :class:`FleetFold` enforces that by accepting shards strictly
in shard-index order (shards hold contiguous ascending device ranges,
so shard order *is* device order); the engine's reorder buffer feeds it
that way however the scheduler completes the work. ``merge`` combines
partial accumulators left-to-right and is deterministic for a fixed
split, but splitting at different points changes the float summation
tree — the engine therefore folds with ``update`` only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterable, List, Optional, Tuple, TypeVar

from repro.core.config import SnipConfig
from repro.core.federated import FederatedAggregator, federate_contributions
from repro.core.selection import SelectedInputs
from repro.core.table import SnipTable
from repro.errors import FleetError
from repro.fleet.spec import FleetSpec
from repro.fleet.work import DeviceResult, ShardResult
from repro.soc.energy import EnergyReport

R = TypeVar("R")


def canonical_device_results(
    shard_results: Iterable[ShardResult], spec: FleetSpec
) -> List[DeviceResult]:
    """Flatten shards into the device-id order every reducer folds in.

    Raises :class:`FleetError` when devices are missing or duplicated —
    a scheduler bug must never silently skew an aggregate. This is the
    batch path; the engine streams through :class:`FleetFold` instead.
    """
    flat: Dict[int, DeviceResult] = {}
    for shard in shard_results:
        if shard.spec_fingerprint != spec.fingerprint():
            raise FleetError(
                f"shard {shard.shard_index} was computed under a different "
                f"spec (fingerprint mismatch)"
            )
        for device in shard.device_results:
            if device.device_id in flat:
                raise FleetError(f"device {device.device_id} reported twice")
            flat[device.device_id] = device
    expected = set(range(spec.devices))
    missing = expected - set(flat)
    if missing:
        raise FleetError(f"devices missing from fleet results: {sorted(missing)}")
    extra = set(flat) - expected
    if extra:
        raise FleetError(f"unexpected device ids in fleet results: {sorted(extra)}")
    return [flat[device_id] for device_id in sorted(flat)]


class Accumulator(Generic[R]):
    """The fold contract every fleet reducer implements.

    ``__init__`` is the *init* step; ``update`` folds one device;
    ``merge`` absorbs another accumulator's partial state (caller
    guarantees ``self``'s devices precede ``other``'s in canonical
    order); ``finalize`` emits the aggregate. ``finalize`` may be
    called once only — accumulators are single-shot.
    """

    def update(self, device: DeviceResult) -> None:
        """Fold one device result into the running aggregate."""
        raise NotImplementedError

    def merge(self, other: "Accumulator[R]") -> None:
        """Absorb a partial accumulator covering later device ids."""
        raise NotImplementedError

    def finalize(self) -> R:
        """Emit the aggregate this accumulator was folding toward."""
        raise NotImplementedError


@dataclass(frozen=True)
class FleetTotals:
    """Scalar aggregates folded over the canonical device order."""

    devices: int
    sessions: int
    events: int
    snip_joules: float
    baseline_joules: float
    hits: int
    misses: int
    avoided_cycles: float
    executed_cycles: float
    raw_uplink_bytes: int

    @property
    def savings(self) -> float:
        """Fleet-wide energy saved by SNIP vs the baseline fleet."""
        if self.baseline_joules <= 0:
            return 0.0
        return 1.0 - self.snip_joules / self.baseline_joules

    @property
    def hit_rate(self) -> float:
        """Fraction of delivered events that short-circuited."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def coverage(self) -> float:
        """Cycle-weighted fraction of execution short-circuited."""
        total = self.avoided_cycles + self.executed_cycles
        return self.avoided_cycles / total if total else 0.0


class TotalsAccumulator(Accumulator[FleetTotals]):
    """Folds the scalar counters device by device."""

    def __init__(self) -> None:
        self._devices = 0
        self._sessions = 0
        self._events = 0
        self._snip_joules = 0.0
        self._baseline_joules = 0.0
        self._hits = 0
        self._misses = 0
        self._avoided = 0.0
        self._executed = 0.0
        self._raw_bytes = 0

    def update(self, device: DeviceResult) -> None:
        self._devices += 1
        self._sessions += device.sessions
        self._events += device.events
        self._snip_joules += device.snip_joules
        self._baseline_joules += device.baseline_joules
        self._hits += device.hits
        self._misses += device.misses
        self._avoided += device.avoided_cycles
        self._executed += device.executed_cycles
        self._raw_bytes += device.raw_uplink_bytes

    def merge(self, other: "Accumulator[FleetTotals]") -> None:
        assert isinstance(other, TotalsAccumulator)
        self._devices += other._devices
        self._sessions += other._sessions
        self._events += other._events
        self._snip_joules += other._snip_joules
        self._baseline_joules += other._baseline_joules
        self._hits += other._hits
        self._misses += other._misses
        self._avoided += other._avoided
        self._executed += other._executed
        self._raw_bytes += other._raw_bytes

    def finalize(self) -> FleetTotals:
        return FleetTotals(
            devices=self._devices,
            sessions=self._sessions,
            events=self._events,
            snip_joules=self._snip_joules,
            baseline_joules=self._baseline_joules,
            hits=self._hits,
            misses=self._misses,
            avoided_cycles=self._avoided,
            executed_cycles=self._executed,
            raw_uplink_bytes=self._raw_bytes,
        )


class EnergyAccumulator(Accumulator[Optional[EnergyReport]]):
    """Folds per-device energy ledgers into one fleet ledger.

    Mirrors :func:`repro.soc.energy.merge_reports` exactly — same
    left-to-right float additions, same first-seen key insertion order
    — so the streamed ledger is byte-identical to the batch merge.
    """

    def __init__(self) -> None:
        self._seen = False
        self._total = 0.0
        self._by_component: Dict[str, float] = {}
        self._by_group: Dict = {}
        self._by_tag: Dict[str, float] = {}
        self._by_group_tag: Dict = {}

    def _fold(self, report: EnergyReport) -> None:
        self._seen = True
        self._total += report.total_joules
        for key, value in report.by_component.items():
            self._by_component[key] = self._by_component.get(key, 0.0) + value
        for group, value in report.by_group.items():
            self._by_group[group] = self._by_group.get(group, 0.0) + value
        for tag, value in report.by_tag.items():
            self._by_tag[tag] = self._by_tag.get(tag, 0.0) + value
        for pair, value in report.by_group_and_tag.items():
            self._by_group_tag[pair] = self._by_group_tag.get(pair, 0.0) + value

    def update(self, device: DeviceResult) -> None:
        if device.report:
            self._fold(device.report)

    def merge(self, other: "Accumulator[Optional[EnergyReport]]") -> None:
        assert isinstance(other, EnergyAccumulator)
        if not other._seen:
            return
        self._seen = True
        self._total += other._total
        for key, value in other._by_component.items():
            self._by_component[key] = self._by_component.get(key, 0.0) + value
        for group, value in other._by_group.items():
            self._by_group[group] = self._by_group.get(group, 0.0) + value
        for tag, value in other._by_tag.items():
            self._by_tag[tag] = self._by_tag.get(tag, 0.0) + value
        for pair, value in other._by_group_tag.items():
            self._by_group_tag[pair] = self._by_group_tag.get(pair, 0.0) + value

    def finalize(self) -> Optional[EnergyReport]:
        if not self._seen:
            return None
        return EnergyReport(
            total_joules=self._total,
            by_component=dict(self._by_component),
            by_group=dict(self._by_group),
            by_tag=dict(self._by_tag),
            by_group_and_tag=dict(self._by_group_tag),
        )


class CensusAccumulator(Accumulator[Dict[str, int]]):
    """Archetype head-count, keys sorted at finalize for stable rendering."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def update(self, device: DeviceResult) -> None:
        self._counts[device.archetype] = self._counts.get(device.archetype, 0) + 1

    def merge(self, other: "Accumulator[Dict[str, int]]") -> None:
        assert isinstance(other, CensusAccumulator)
        for name, count in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + count

    def finalize(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))


class CohortTotalsAccumulator(Accumulator[Dict[str, FleetTotals]]):
    """Per-rollout-cohort scalar aggregates.

    Routing preserves the canonical device order within each cohort
    (cohort membership is a pure function of the device id), so the
    per-cohort float sums inherit the same bit-identical guarantee as
    the fleet-wide totals. Keys are sorted at finalize.
    """

    def __init__(self) -> None:
        self._by_cohort: Dict[str, TotalsAccumulator] = {}

    def update(self, device: DeviceResult) -> None:
        accumulator = self._by_cohort.get(device.cohort)
        if accumulator is None:
            accumulator = self._by_cohort[device.cohort] = TotalsAccumulator()
        accumulator.update(device)

    def merge(self, other: "Accumulator[Dict[str, FleetTotals]]") -> None:
        assert isinstance(other, CohortTotalsAccumulator)
        for cohort, partial in other._by_cohort.items():
            mine = self._by_cohort.get(cohort)
            if mine is None:
                self._by_cohort[cohort] = partial
            else:
                mine.merge(partial)

    def finalize(self) -> Dict[str, FleetTotals]:
        return {
            cohort: accumulator.finalize()
            for cohort, accumulator in sorted(self._by_cohort.items())
        }


class ContributionsAccumulator(
    Accumulator[Optional[Tuple[SnipTable, int]]]
):
    """Merges device statistics into the fleet table as they arrive.

    Devices must be folded in canonical id order (the engine guarantees
    it) so the aggregator sees contributions exactly as the batch
    :func:`~repro.core.federated.federate_contributions` would. Returns
    ``(table, uplink_bytes)`` or ``None`` when the run did not federate.
    """

    def __init__(self, selection: SelectedInputs, config: SnipConfig) -> None:
        self._aggregator = FederatedAggregator(selection, config)
        self._uplink = 0
        self._seen = False

    def update(self, device: DeviceResult) -> None:
        contribution = device.contribution
        if not contribution:
            return
        self._seen = True
        self._uplink += contribution.upload_bytes
        self._aggregator.merge(contribution)

    def merge(
        self, other: "Accumulator[Optional[Tuple[SnipTable, int]]]"
    ) -> None:
        assert isinstance(other, ContributionsAccumulator)
        self._seen = self._seen or other._seen
        self._uplink += other._uplink
        self._aggregator.absorb(other._aggregator)

    def finalize(self) -> Optional[Tuple[SnipTable, int]]:
        if not self._seen:
            return None
        return self._aggregator.build_table(), self._uplink


@dataclass
class FleetReduction:
    """Everything :class:`FleetFold` emits for one completed fleet."""

    totals: FleetTotals
    census: Dict[str, int]
    energy: Optional[EnergyReport]
    federated: Optional[Tuple[SnipTable, int]]
    cohorts: Optional[Dict[str, FleetTotals]]


class FleetFold:
    """Folds shard results strictly in shard-index order.

    Shards hold contiguous ascending device-id ranges, so index order
    is device-id order and the float sums match the batch reducers bit
    for bit. Each shard's population is validated against the spec's
    shard plan (missing, duplicated, or foreign devices raise), which
    replaces the batch path's whole-fleet set arithmetic with an O(1)-
    memory check.
    """

    def __init__(
        self, spec: FleetSpec, selection: SelectedInputs, config: SnipConfig
    ) -> None:
        self.spec = spec
        self._fingerprint = spec.fingerprint()
        self._next_index = 0
        self.totals = TotalsAccumulator()
        self.census = CensusAccumulator()
        self.energy = EnergyAccumulator()
        self.contributions = ContributionsAccumulator(selection, config)
        self.cohorts: Optional[CohortTotalsAccumulator] = (
            CohortTotalsAccumulator() if spec.challenger_fraction > 0 else None
        )

    @property
    def next_index(self) -> int:
        """The shard index the fold will accept next."""
        return self._next_index

    @property
    def complete(self) -> bool:
        """True once every shard has been folded."""
        return self._next_index >= self.spec.shard_count

    def fold(self, shard: ShardResult) -> None:
        """Fold the next shard (must be ``next_index``) and forget it."""
        if shard.shard_index != self._next_index:
            raise FleetError(
                f"shard {shard.shard_index} folded out of order "
                f"(expected {self._next_index})"
            )
        if shard.spec_fingerprint != self._fingerprint:
            raise FleetError(
                f"shard {shard.shard_index} was computed under a different "
                f"spec (fingerprint mismatch)"
            )
        expected = self.spec.shard_at(shard.shard_index).device_ids
        reported = tuple(
            device.device_id for device in shard.device_results
        )
        if reported != expected:
            raise FleetError(
                f"shard {shard.shard_index} reported devices "
                f"{reported[:4]}...x{len(reported)}, expected the range "
                f"{expected[0]}..{expected[-1]} — devices missing, "
                f"duplicated, or misdealt"
            )
        for device in shard.device_results:
            self.totals.update(device)
            self.census.update(device)
            self.energy.update(device)
            self.contributions.update(device)
            if self.cohorts is not None:
                self.cohorts.update(device)
        self._next_index += 1

    def finalize(self) -> FleetReduction:
        """Emit the aggregates; raises unless every shard was folded."""
        if not self.complete:
            raise FleetError(
                f"fleet reduction incomplete: folded {self._next_index} of "
                f"{self.spec.shard_count} shards"
            )
        return FleetReduction(
            totals=self.totals.finalize(),
            census=self.census.finalize(),
            energy=self.energy.finalize(),
            federated=self.contributions.finalize(),
            cohorts=(
                self.cohorts.finalize() if self.cohorts is not None else None
            ),
        )


# -- single-pass wrappers (legacy call shape, iterable-friendly) ----------


def reduce_totals(device_results: Iterable[DeviceResult]) -> FleetTotals:
    """Fold the scalar counters (expects canonical order)."""
    accumulator = TotalsAccumulator()
    for device in device_results:
        accumulator.update(device)
    return accumulator.finalize()


def reduce_energy(
    device_results: Iterable[DeviceResult],
) -> Optional[EnergyReport]:
    """Merge per-device ledgers into one fleet ledger (canonical order)."""
    accumulator = EnergyAccumulator()
    for device in device_results:
        accumulator.update(device)
    return accumulator.finalize()


def reduce_census(device_results: Iterable[DeviceResult]) -> Dict[str, int]:
    """Archetype head-count, keys sorted for stable rendering."""
    accumulator = CensusAccumulator()
    for device in device_results:
        accumulator.update(device)
    return accumulator.finalize()


def reduce_cohort_totals(
    device_results: Iterable[DeviceResult],
) -> Dict[str, FleetTotals]:
    """Per-rollout-cohort scalar aggregates (expects canonical order)."""
    accumulator = CohortTotalsAccumulator()
    for device in device_results:
        accumulator.update(device)
    return accumulator.finalize()


def reduce_contributions(
    device_results: Iterable[DeviceResult],
    selection: SelectedInputs,
    config: SnipConfig,
) -> Optional[Tuple[SnipTable, int]]:
    """Merge device statistics into the fleet table.

    Single-pass over ``device_results`` (generators welcome); the
    collected contributions are sorted by device id before merging, so
    unsorted inputs still produce the canonical table. Returns
    ``(table, uplink_bytes)`` or ``None`` when the run did not federate.
    """
    contributions = [
        device.contribution for device in device_results if device.contribution
    ]
    if not contributions:
        return None
    return federate_contributions(contributions, selection, config)
