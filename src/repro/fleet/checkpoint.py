"""Checkpoint/resume for partially completed fleet sweeps.

Layout of a run directory::

    <run_dir>/
      manifest.json        # format version, spec, fingerprints
      shards/
        shard_00000.pkl    # one pickled ShardResult per finished shard
        shard_00001.pkl
        ...

Shard files are written atomically (tmp + rename), so a run killed
mid-write never leaves a truncated shard behind; resume simply skips
every shard whose file exists and re-executes the rest. The manifest
pins the spec's *layout* fingerprint (spec + shard size): resuming with
different parameters is refused instead of silently mixing results.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import CheckpointError
from repro.fleet.spec import FLEET_FORMAT_VERSION, FleetSpec
from repro.fleet.work import ShardResult

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"


class CheckpointStore:
    """Persistence for one fleet run directory."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.shard_dir = self.run_dir / SHARD_DIR
        #: Corrupt/truncated shard files evicted by
        #: :meth:`load_resumable` (mirrors the package cache's
        #: ``corrupt_evictions`` accounting). The running total is
        #: persisted in the manifest, so a run that is killed and
        #: resumed keeps counting instead of resetting to 0 on every
        #: new store instance.
        self.corrupt_evictions = self._persisted_evictions()

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Where the run manifest lives."""
        return self.run_dir / MANIFEST_NAME

    def initialise(self, spec: FleetSpec) -> None:
        """Create the run directory, or validate it against ``spec``.

        A pre-existing directory must carry a manifest for the same
        spec and shard layout; anything else raises
        :class:`CheckpointError` rather than corrupting the sweep.

        Creation is race-safe: when two starters hit the same fresh run
        directory concurrently, exactly one publishes the manifest (via
        an ``O_EXCL`` temp file linked into place); the loser surfaces
        as :class:`CheckpointError` instead of silently clobbering the
        winner's manifest.
        """
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        if not self.manifest_path.exists():
            manifest = {
                "corrupt_evictions": self.corrupt_evictions,
                "format_version": FLEET_FORMAT_VERSION,
                "fingerprint": spec.fingerprint(),
                "layout_fingerprint": spec.layout_fingerprint(),
                "shard_count": spec.shard_count,
                "spec": dataclasses.asdict(spec),
            }
            try:
                self._exclusive_write(
                    self.manifest_path,
                    json.dumps(manifest, indent=2, sort_keys=True).encode(),
                )
                return
            except FileExistsError as exc:
                raise CheckpointError(
                    f"lost initialisation race for checkpoint at "
                    f"{self.run_dir}: another process published "
                    f"{MANIFEST_NAME} concurrently"
                ) from exc
        manifest = self._read_manifest()
        if manifest.get("layout_fingerprint") != spec.layout_fingerprint():
            raise CheckpointError(
                f"checkpoint at {self.run_dir} belongs to a different "
                f"fleet spec or shard layout; use a fresh --checkpoint "
                f"directory or rerun with the original parameters"
            )
        self.corrupt_evictions = int(manifest.get("corrupt_evictions", 0))

    def _read_manifest(self) -> Dict:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest at {self.manifest_path}: {exc}"
            ) from exc
        if manifest.get("format_version") != FLEET_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format {manifest.get('format_version')!r} does not "
                f"match this build ({FLEET_FORMAT_VERSION})"
            )
        return manifest

    # -- shards ------------------------------------------------------------

    def shard_path(self, index: int) -> Path:
        """File holding one shard's pickled result."""
        return self.shard_dir / f"shard_{index:05d}.pkl"

    def completed_indices(self) -> List[int]:
        """Indices of every shard already persisted, ascending."""
        if not self.shard_dir.is_dir():
            return []
        indices = []
        for path in self.shard_dir.glob("shard_*.pkl"):
            try:
                indices.append(int(path.stem.split("_", 1)[1]))
            except (IndexError, ValueError):
                raise CheckpointError(f"stray file in checkpoint: {path}") from None
        return sorted(indices)

    def save(self, result: ShardResult) -> Path:
        """Persist one shard result atomically."""
        path = self.shard_path(result.shard_index)
        self._atomic_write(path, pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
        return path

    def load(self, index: int) -> ShardResult:
        """Load one persisted shard result (raises on any corruption)."""
        path = self.shard_path(index)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except CheckpointError:
            raise
        except Exception as exc:
            # Unpickling a truncated or garbage file can raise nearly
            # anything (UnpicklingError, EOFError, AttributeError,
            # ValueError, ...); all of them mean the same thing here.
            raise CheckpointError(f"cannot load shard checkpoint {path}: {exc}") from exc
        if not isinstance(result, ShardResult) or result.shard_index != index:
            raise CheckpointError(f"shard checkpoint {path} holds the wrong payload")
        return result

    def load_resumable(self, index: int) -> Optional[ShardResult]:
        """Load one shard, evicting corrupt files as resumable misses.

        A truncated, garbage, or wrong-payload shard pickle is deleted
        (counted in :attr:`corrupt_evictions`) and reported as ``None``
        — the shard simply re-runs — instead of aborting the whole
        resume mid-stream.
        """
        try:
            return self.load(index)
        except CheckpointError:
            self.discard(index)
            self.corrupt_evictions += 1
            self._persist_evictions()
            return None

    def resumable_indices(self) -> List[int]:
        """Completed shard indices whose payloads actually load.

        Validates each persisted shard (loading and discarding it, one
        at a time — constant memory); corrupt ones are evicted so the
        engine schedules them as fresh work.
        """
        return [
            index
            for index in self.completed_indices()
            if self.load_resumable(index) is not None
        ]

    def discard(self, index: int) -> None:
        """Remove one persisted shard file (eviction/spill cleanup)."""
        try:
            self.shard_path(index).unlink()
        except OSError:
            pass

    # -- eviction accounting -----------------------------------------------

    def _persisted_evictions(self) -> int:
        """Running eviction total recorded in the manifest, if any."""
        try:
            manifest = json.loads(self.manifest_path.read_text())
            return int(manifest.get("corrupt_evictions", 0))
        except (OSError, ValueError, TypeError):
            return 0

    def _persist_evictions(self) -> None:
        """Record the running eviction total in the manifest.

        Best-effort: stores without a (readable) manifest — e.g. the
        engine's anonymous spill directories — keep the in-memory
        counter only.
        """
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(manifest, dict):
            return
        manifest["corrupt_evictions"] = self.corrupt_evictions
        self._atomic_write(
            self.manifest_path, json.dumps(manifest, indent=2, sort_keys=True).encode()
        )

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    @staticmethod
    def _exclusive_write(path: Path, data: bytes) -> None:
        """Publish ``path`` exactly once across concurrent writers.

        The payload is staged under an ``O_EXCL`` temp name and linked
        into place; :class:`FileExistsError` propagates to whichever
        writer loses the race (a plain rename would silently clobber).
        """
        tmp = path.with_suffix(path.suffix + f".create.{os.getpid()}.tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.link(tmp, path)
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
