"""The fleet engine: shard, execute, reduce, report.

:class:`FleetEngine` drives one :class:`~repro.fleet.spec.FleetSpec`
end to end: build the shipped profile once, deal devices into shards,
run the shards on any :class:`~repro.fleet.executors.FleetExecutor`
(serial or multiprocess — same results either way), persist each shard
into the checkpoint store as it lands, and reduce the shard outputs in
canonical device order into a :class:`FleetReport` whose rendering is
byte-identical across ``--jobs`` settings, shard sizes, and
interrupt/resume cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.config import SnipConfig
from repro.core.package_cache import PackageCache
from repro.core.profiler import CloudProfiler, SnipPackage
from repro.core.table import SnipTable
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.executors import (
    DEFAULT_RETRY_BUDGET,
    FleetExecutor,
    SerialExecutor,
)
from repro.errors import FleetError
from repro.fleet.reducers import (
    FleetTotals,
    canonical_device_results,
    reduce_census,
    reduce_cohort_totals,
    reduce_contributions,
    reduce_energy,
    reduce_totals,
)
from repro.fleet.spec import FleetSpec
from repro.fleet.telemetry import RUN_FINISHED, RUN_STARTED, TelemetryBus
from repro.fleet.work import ShardResult, ShardTask, run_shard
from repro.soc.component import ComponentGroup
from repro.soc.energy import EnergyReport
from repro.units import format_bytes


@dataclass
class FleetReport:
    """Deterministic aggregate of one fleet run."""

    spec: FleetSpec
    totals: FleetTotals
    census: Dict[str, int]
    energy: Optional[EnergyReport]
    fleet_table: Optional[SnipTable]
    uplink_bytes: int
    #: Per-rollout-cohort totals; populated only for staged rollouts
    #: (``spec.challenger_fraction > 0``).
    cohorts: Optional[Dict[str, FleetTotals]] = None

    @property
    def table_entries(self) -> int:
        """Entries in the merged federated table (0 when not federated)."""
        return self.fleet_table.entry_count if self.fleet_table else 0

    @property
    def table_bytes(self) -> int:
        """Shipped size of the merged federated table."""
        return self.fleet_table.total_bytes if self.fleet_table else 0

    def to_text(self) -> str:
        """Render the aggregate report.

        Deliberately free of wall-clock and worker facts: two runs of
        the same spec must render byte-identically however they were
        scheduled (the acceptance property the tests pin).
        """
        spec = self.spec
        lines = [
            f"fleet: {spec.game_name} | {spec.devices} devices x "
            f"{spec.sessions_per_device} sessions x {spec.duration_s:g}s | "
            f"seed {spec.seed}",
            "census: "
            + ", ".join(f"{name}={count}" for name, count in self.census.items()),
            f"events: {self.totals.events} across {self.totals.sessions} sessions",
        ]
        if spec.measure_energy:
            lines.append(
                f"energy: snip {self.totals.snip_joules:.6f} J vs baseline "
                f"{self.totals.baseline_joules:.6f} J -> "
                f"savings {self.totals.savings:.2%}"
            )
            lines.append(
                f"coverage: {self.totals.coverage:.2%} | "
                f"hit rate: {self.totals.hit_rate:.2%}"
            )
            if self.energy is not None:
                shares = ", ".join(
                    f"{group.value}={self.energy.group_fraction(group):.1%}"
                    for group in ComponentGroup
                )
                lines.append(f"fleet ledger: {shares}")
        if self.cohorts is not None:
            lines.append(
                f"rollout: challenger fraction "
                f"{spec.challenger_fraction:g}"
                + (
                    f" | challenger {spec.challenger_digest}"
                    if spec.challenger_digest else ""
                )
            )
            for cohort, totals in self.cohorts.items():
                line = (
                    f"  cohort {cohort}: {totals.devices} devices, "
                    f"{totals.events} events"
                )
                if spec.measure_energy:
                    line += (
                        f" | savings {totals.savings:.2%} | "
                        f"hit rate {totals.hit_rate:.2%}"
                    )
                lines.append(line)
        if self.fleet_table is not None:
            lines.append(
                f"fleet table: {self.table_entries} entries, "
                f"{format_bytes(self.table_bytes)}"
            )
            lines.append(
                f"uplink (statistics only): {format_bytes(self.uplink_bytes)} "
                f"(raw events would be "
                f"{format_bytes(self.totals.raw_uplink_bytes)})"
            )
        return "\n".join(lines)


class FleetEngine:
    """Orchestrates one fleet simulation."""

    def __init__(
        self,
        spec: FleetSpec,
        executor: Optional[FleetExecutor] = None,
        config: Optional[SnipConfig] = None,
        telemetry: Optional[TelemetryBus] = None,
        checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        cache: Union[PackageCache, None, str] = "auto",
        package: Optional[SnipPackage] = None,
        challenger: Optional[SnipPackage] = None,
    ) -> None:
        """``package``/``challenger`` inject pre-built artifacts.

        The registry's staged-rollout driver resolves both cohorts'
        packages from registered digests and passes them here; without
        an injected ``package`` the engine profiles its own from the
        spec's profile seeds. A spec with ``challenger_fraction > 0``
        requires a ``challenger``.
        """
        self.spec = spec
        self.executor = executor or SerialExecutor()
        self.config = config or SnipConfig()
        self.telemetry = telemetry or TelemetryBus()
        if checkpoint is not None and not isinstance(checkpoint, CheckpointStore):
            checkpoint = CheckpointStore(checkpoint)
        self.checkpoint = checkpoint
        self.retry_budget = retry_budget
        self.cache = cache
        self._package = package
        self.challenger = challenger
        if spec.challenger_fraction > 0 and challenger is None:
            raise FleetError(
                "spec deals devices into a challenger cohort "
                f"(challenger_fraction={spec.challenger_fraction:g}) but no "
                "challenger package was provided"
            )

    # -- shipped artifacts -------------------------------------------------

    def build_package(self) -> SnipPackage:
        """Profile once centrally; every device receives the result.

        Cached: the profile is a pure function of the spec's profile
        seeds/duration, so resumes and repeated calls agree. With the
        on-disk package cache enabled (the default), interrupted runs
        and sibling shards on the same host also skip re-profiling.
        """
        if self._package is None:
            profiler = CloudProfiler(self.config, cache=self.cache)
            self._package = profiler.build_package_from_sessions(
                self.spec.game_name,
                seeds=list(self.spec.profile_seeds),
                duration_s=self.spec.profile_duration_s,
            )
        return self._package

    # -- execution ---------------------------------------------------------

    def run(self) -> FleetReport:
        """Execute the sweep (resuming any checkpointed shards) and reduce."""
        spec = self.spec
        package = self.build_package()
        shards = spec.shards()
        done: Dict[int, ShardResult] = {}
        if self.checkpoint is not None:
            self.checkpoint.initialise(spec)
            for index in self.checkpoint.completed_indices():
                done[index] = self.checkpoint.load(index)
        remaining = [shard for shard in shards if shard.index not in done]
        self.telemetry.emit(
            RUN_STARTED,
            devices=spec.devices,
            shards=len(shards),
            resumed=len(done),
            jobs=self.executor.jobs,
        )
        challenger = self.challenger
        tasks = [
            ShardTask(
                shard_index=shard.index,
                spec=spec,
                device_ids=shard.device_ids,
                selection=package.selection,
                table=package.table,
                config=self.config,
                challenger_selection=(
                    challenger.selection if challenger else None
                ),
                challenger_table=challenger.table if challenger else None,
            )
            for shard in remaining
        ]

        def _persist(position: int, result: ShardResult) -> None:
            if self.checkpoint is not None:
                self.checkpoint.save(result)

        fresh = self.executor.run(
            run_shard,
            tasks,
            telemetry=self.telemetry,
            on_result=_persist,
            retry_budget=self.retry_budget,
        )
        for result in fresh:
            done[result.shard_index] = result
        report = self._reduce(list(done.values()))
        self.telemetry.emit(
            RUN_FINISHED,
            events=self.telemetry.counters.events_processed,
            events_per_second=self.telemetry.events_per_second(),
            failures=self.telemetry.counters.worker_failures,
        )
        return report

    # -- reduction ---------------------------------------------------------

    def _reduce(self, shard_results: List[ShardResult]) -> FleetReport:
        package = self.build_package()
        devices = canonical_device_results(shard_results, self.spec)
        totals = reduce_totals(devices)
        federated = reduce_contributions(devices, package.selection, self.config)
        fleet_table, uplink = federated if federated else (None, 0)
        return FleetReport(
            spec=self.spec,
            totals=totals,
            census=reduce_census(devices),
            energy=reduce_energy(devices),
            fleet_table=fleet_table,
            uplink_bytes=uplink,
            cohorts=(
                reduce_cohort_totals(devices)
                if self.spec.challenger_fraction > 0
                else None
            ),
        )


def run_fleet(
    spec: FleetSpec,
    executor: Optional[FleetExecutor] = None,
    config: Optional[SnipConfig] = None,
    telemetry: Optional[TelemetryBus] = None,
    checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
) -> FleetReport:
    """Convenience one-shot: build an engine and run it."""
    return FleetEngine(
        spec,
        executor=executor,
        config=config,
        telemetry=telemetry,
        checkpoint=checkpoint,
    ).run()
