"""The fleet engine: shard, execute, stream-reduce, report.

:class:`FleetEngine` drives one :class:`~repro.fleet.spec.FleetSpec`
end to end: build the shipped profile once, deal devices into shards,
run the shards on any :class:`~repro.fleet.executors.FleetExecutor`
(serial, pool, or queue — same results either way), and **fold** each
:class:`~repro.fleet.work.ShardResult` into the aggregates as the
executor completes it. Results are consumed through
:class:`~repro.fleet.reducers.FleetFold` strictly in shard-index order
(a reorder buffer bridges completion order to fold order), then
dropped — the engine never holds more than ``max_live_shards`` results
in memory, so peak RSS is bounded by the shard size and the buffer,
not the fleet size. Out-of-order results beyond the buffer spill to
the checkpoint store (already persisted) or a temporary spill
directory. The rendered :class:`FleetReport` stays byte-identical
across ``--jobs`` settings, executors, shard sizes, and
interrupt/resume cycles.
"""

from __future__ import annotations

import dataclasses
import json
import resource
import shutil
import sys
import tempfile
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Set, Union

from repro.core.config import SnipConfig
from repro.core.package_cache import PackageCache
from repro.core.profiler import CloudProfiler, SnipPackage
from repro.core.table import SnipTable
from repro.errors import FleetError
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.executors import (
    DEFAULT_RETRY_BUDGET,
    FleetExecutor,
    SerialExecutor,
)
from repro.fleet.reducers import FleetFold, FleetTotals
from repro.fleet.spec import FleetSpec
from repro.fleet.telemetry import (
    LIVE_SHARDS,
    PEAK_RSS,
    RUN_FINISHED,
    RUN_STARTED,
    TelemetryBus,
)
from repro.fleet.work import ShardResult, ShardTask, run_shard
from repro.soc.component import ComponentGroup
from repro.soc.energy import EnergyReport
from repro.units import format_bytes

#: Default cap on shard results held in memory awaiting their fold
#: turn. Large enough that mild completion-order skew never touches
#: disk, small enough to keep the reducer's footprint flat at any
#: fleet size.
DEFAULT_MAX_LIVE_SHARDS = 8


def peak_rss_bytes() -> int:
    """This process's resident-set high-water mark, in bytes.

    Includes finished worker children (their peak counts toward the
    sweep's footprint). ``ru_maxrss`` is kilobytes on Linux but bytes
    on macOS.
    """
    scale = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(own, children) * scale)


@dataclass
class FleetReport:
    """Deterministic aggregate of one fleet run."""

    spec: FleetSpec
    totals: FleetTotals
    census: Dict[str, int]
    energy: Optional[EnergyReport]
    fleet_table: Optional[SnipTable]
    uplink_bytes: int
    #: Per-rollout-cohort totals; populated only for staged rollouts
    #: (``spec.challenger_fraction > 0``).
    cohorts: Optional[Dict[str, FleetTotals]] = None

    @property
    def table_entries(self) -> int:
        """Entries in the merged federated table (0 when not federated)."""
        return self.fleet_table.entry_count if self.fleet_table else 0

    @property
    def table_bytes(self) -> int:
        """Shipped size of the merged federated table."""
        return self.fleet_table.total_bytes if self.fleet_table else 0

    def to_text(self) -> str:
        """Render the aggregate report.

        Deliberately free of wall-clock and worker facts: two runs of
        the same spec must render byte-identically however they were
        scheduled (the acceptance property the tests pin).
        """
        spec = self.spec
        lines = [
            f"fleet: {spec.game_name} | {spec.devices} devices x "
            f"{spec.sessions_per_device} sessions x {spec.duration_s:g}s | "
            f"seed {spec.seed}",
            "census: "
            + ", ".join(f"{name}={count}" for name, count in self.census.items()),
            f"events: {self.totals.events} across {self.totals.sessions} sessions",
        ]
        if spec.measure_energy:
            lines.append(
                f"energy: snip {self.totals.snip_joules:.6f} J vs baseline "
                f"{self.totals.baseline_joules:.6f} J -> "
                f"savings {self.totals.savings:.2%}"
            )
            lines.append(
                f"coverage: {self.totals.coverage:.2%} | "
                f"hit rate: {self.totals.hit_rate:.2%}"
            )
            if self.energy is not None:
                shares = ", ".join(
                    f"{group.value}={self.energy.group_fraction(group):.1%}"
                    for group in ComponentGroup
                )
                lines.append(f"fleet ledger: {shares}")
        if self.cohorts is not None:
            lines.append(
                f"rollout: challenger fraction "
                f"{spec.challenger_fraction:g}"
                + (
                    f" | challenger {spec.challenger_digest}"
                    if spec.challenger_digest else ""
                )
            )
            for cohort, totals in self.cohorts.items():
                line = (
                    f"  cohort {cohort}: {totals.devices} devices, "
                    f"{totals.events} events"
                )
                if spec.measure_energy:
                    line += (
                        f" | savings {totals.savings:.2%} | "
                        f"hit rate {totals.hit_rate:.2%}"
                    )
                lines.append(line)
        if self.fleet_table is not None:
            lines.append(
                f"fleet table: {self.table_entries} entries, "
                f"{format_bytes(self.table_bytes)}"
            )
            lines.append(
                f"uplink (statistics only): {format_bytes(self.uplink_bytes)} "
                f"(raw events would be "
                f"{format_bytes(self.totals.raw_uplink_bytes)})"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-safe view of the deterministic aggregates."""
        energy = None
        if self.energy is not None:
            energy = {
                "total_joules": self.energy.total_joules,
                "by_component": dict(self.energy.by_component),
                "by_group": {
                    group.value: joules
                    for group, joules in self.energy.by_group.items()
                },
                "by_tag": dict(self.energy.by_tag),
            }
        # Shard size is a scheduling knob, not part of what was
        # computed (spec.fingerprint() excludes it too); leaving it out
        # keeps the JSON byte-identical across shard sizes.
        spec_dict = dataclasses.asdict(self.spec)
        spec_dict.pop("shard_size", None)
        return {
            "spec": spec_dict,
            "totals": dataclasses.asdict(self.totals),
            "savings": self.totals.savings,
            "hit_rate": self.totals.hit_rate,
            "coverage": self.totals.coverage,
            "census": dict(self.census),
            "energy": energy,
            "table_entries": self.table_entries,
            "table_bytes": self.table_bytes,
            "uplink_bytes": self.uplink_bytes,
            "cohorts": (
                {
                    cohort: dataclasses.asdict(totals)
                    for cohort, totals in self.cohorts.items()
                }
                if self.cohorts is not None
                else None
            ),
        }

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys, stable float repr).

        Shares the text report's byte-identity guarantee across jobs,
        executors, shard sizes, and resume cycles.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class _ShardTasks(SequenceABC):
    """Lazily materialising task sequence for the executors.

    Planning a million-device sweep must not allocate a million device
    ids upfront: executors index payloads on submission, so each
    :class:`ShardTask` (and its device-id range) is constructed on
    demand and garbage-collected once the worker result lands.
    """

    def __init__(
        self,
        spec: FleetSpec,
        indices: Sequence[int],
        package: SnipPackage,
        challenger: Optional[SnipPackage],
        config: SnipConfig,
    ) -> None:
        self._spec = spec
        self._indices = indices
        self._package = package
        self._challenger = challenger
        self._config = config

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, position: int) -> ShardTask:
        shard = self._spec.shard_at(self._indices[position])
        challenger = self._challenger
        return ShardTask(
            shard_index=shard.index,
            spec=self._spec,
            device_ids=shard.device_ids,
            selection=self._package.selection,
            table=self._package.table,
            config=self._config,
            challenger_selection=(
                challenger.selection if challenger else None
            ),
            challenger_table=challenger.table if challenger else None,
        )


class FleetEngine:
    """Orchestrates one fleet simulation."""

    def __init__(
        self,
        spec: FleetSpec,
        executor: Optional[FleetExecutor] = None,
        config: Optional[SnipConfig] = None,
        telemetry: Optional[TelemetryBus] = None,
        checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        cache: Union[PackageCache, None, str] = "auto",
        package: Optional[SnipPackage] = None,
        challenger: Optional[SnipPackage] = None,
        max_live_shards: int = DEFAULT_MAX_LIVE_SHARDS,
        shard_observer: Optional[Callable[[ShardResult], None]] = None,
    ) -> None:
        """``package``/``challenger`` inject pre-built artifacts.

        The registry's staged-rollout driver resolves both cohorts'
        packages from registered digests and passes them here; without
        an injected ``package`` the engine profiles its own from the
        spec's profile seeds. A spec with ``challenger_fraction > 0``
        requires a ``challenger``. ``max_live_shards`` caps the shard
        results the reducer holds awaiting their fold turn; overflow
        spills to the checkpoint store (already persisted) or a
        temporary directory. ``shard_observer`` is called with each
        shard result in strict shard-index order (the fold order), so
        consumers see a deterministic stream regardless of executor or
        completion order.
        """
        self.spec = spec
        self.executor = executor or SerialExecutor()
        self.config = config or SnipConfig()
        self.telemetry = telemetry or TelemetryBus()
        if checkpoint is not None and not isinstance(checkpoint, CheckpointStore):
            checkpoint = CheckpointStore(checkpoint)
        self.checkpoint = checkpoint
        self.retry_budget = retry_budget
        self.cache = cache
        self._package = package
        self.challenger = challenger
        if max_live_shards < 1:
            raise FleetError(
                f"max_live_shards must be positive, got {max_live_shards}"
            )
        self.max_live_shards = max_live_shards
        self.shard_observer = shard_observer
        if spec.challenger_fraction > 0 and challenger is None:
            raise FleetError(
                "spec deals devices into a challenger cohort "
                f"(challenger_fraction={spec.challenger_fraction:g}) but no "
                "challenger package was provided"
            )

    # -- shipped artifacts -------------------------------------------------

    def build_package(self) -> SnipPackage:
        """Profile once centrally; every device receives the result.

        Cached: the profile is a pure function of the spec's profile
        seeds/duration, so resumes and repeated calls agree. With the
        on-disk package cache enabled (the default), interrupted runs
        and sibling shards on the same host also skip re-profiling.
        """
        if self._package is None:
            profiler = CloudProfiler(self.config, cache=self.cache)
            self._package = profiler.build_package_from_sessions(
                self.spec.game_name,
                seeds=list(self.spec.profile_seeds),
                duration_s=self.spec.profile_duration_s,
            )
        return self._package

    # -- execution ---------------------------------------------------------

    def run(self) -> FleetReport:
        """Execute the sweep (resuming checkpointed shards), fold, report.

        Results are folded in shard-index order as they complete; each
        is dropped (or spilled to disk) immediately after folding, so
        memory stays bounded by ``max_live_shards`` however large the
        fleet is.
        """
        spec = self.spec
        package = self.build_package()
        fold = FleetFold(spec, package.selection, self.config)
        on_disk: Set[int] = set()
        corrupt = 0
        if self.checkpoint is not None:
            self.checkpoint.initialise(spec)
            on_disk.update(self.checkpoint.resumable_indices())
            # Running total persisted in the manifest: a resumed run
            # reports evictions from every attempt, not just this one.
            corrupt = self.checkpoint.corrupt_evictions
        remaining = [
            index for index in range(spec.shard_count) if index not in on_disk
        ]
        self.telemetry.emit(
            RUN_STARTED,
            devices=spec.devices,
            shards=spec.shard_count,
            resumed=len(on_disk),
            corrupt_evictions=corrupt,
            jobs=self.executor.jobs,
        )
        tasks = _ShardTasks(
            spec, remaining, package, self.challenger, self.config
        )
        buffer: Dict[int, ShardResult] = {}
        self._spill: Optional[CheckpointStore] = None
        self._spill_dir: Optional[str] = None
        try:
            stream = self.executor.stream(
                run_shard,
                tasks,
                telemetry=self.telemetry,
                retry_budget=self.retry_budget,
            )
            for _, result in stream:
                if self.checkpoint is not None:
                    self.checkpoint.save(result)
                buffer[result.shard_index] = result
                # Gauge the buffer at its high-water mark — after the
                # insert, before the in-order drain empties it —
                # otherwise peak_live_shards reads 0 on every run that
                # folds shards as fast as they arrive.
                self.telemetry.emit(LIVE_SHARDS, count=len(buffer))
                self._drain(fold, buffer, on_disk)
                self._enforce_buffer_cap(buffer, on_disk)
                self.telemetry.emit(PEAK_RSS, bytes=peak_rss_bytes())
            # Anything still unfolded sits on disk (resumed shards past
            # the last fresh one, or spilled stragglers).
            self._drain(fold, buffer, on_disk)
            reduction = fold.finalize()
        finally:
            if self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
                self._spill = None
                self._spill_dir = None
        fleet_table, uplink = (
            reduction.federated if reduction.federated else (None, 0)
        )
        report = FleetReport(
            spec=spec,
            totals=reduction.totals,
            census=reduction.census,
            energy=reduction.energy,
            fleet_table=fleet_table,
            uplink_bytes=uplink,
            cohorts=reduction.cohorts,
        )
        self.telemetry.emit(PEAK_RSS, bytes=peak_rss_bytes())
        self.telemetry.emit(
            RUN_FINISHED,
            events=self.telemetry.counters.events_processed,
            events_per_second=self.telemetry.events_per_second(),
            failures=self.telemetry.counters.worker_failures,
            peak_live_shards=self.telemetry.counters.peak_live_shards,
            peak_queue_depth=self.telemetry.counters.peak_queue_depth,
            peak_rss_bytes=self.telemetry.counters.peak_rss_bytes,
        )
        return report

    # -- streaming fold plumbing -------------------------------------------

    def _drain(
        self,
        fold: FleetFold,
        buffer: Dict[int, ShardResult],
        on_disk: Set[int],
    ) -> None:
        """Fold every shard that is ready, in strict index order."""
        while not fold.complete:
            index = fold.next_index
            if index in buffer:
                result = buffer.pop(index)
            elif index in on_disk:
                result = self._fetch(index)
                on_disk.discard(index)
            else:
                return
            if self.shard_observer is not None:
                self.shard_observer(result)
            fold.fold(result)

    def _enforce_buffer_cap(
        self, buffer: Dict[int, ShardResult], on_disk: Set[int]
    ) -> None:
        """Spill the furthest-from-fold results past ``max_live_shards``.

        The largest buffered index is the last one the fold will want,
        so evicting it keeps the shards about to fold in memory. With a
        checkpoint configured the result is already persisted — spilling
        is just forgetting the in-memory copy.
        """
        while len(buffer) > self.max_live_shards:
            index = max(buffer)
            result = buffer.pop(index)
            if self.checkpoint is None:
                self._spill_store().save(result)
            on_disk.add(index)

    def _spill_store(self) -> CheckpointStore:
        """The temp store backing spills on checkpoint-less runs."""
        if self._spill is None:
            self._spill_dir = tempfile.mkdtemp(prefix="fleet-spill-")
            self._spill = CheckpointStore(self._spill_dir)
            self._spill.shard_dir.mkdir(parents=True, exist_ok=True)
        return self._spill

    def _fetch(self, index: int) -> ShardResult:
        """Re-load one spilled or checkpointed shard for folding."""
        store = self.checkpoint if self.checkpoint is not None else self._spill
        if store is None:
            raise FleetError(
                f"shard {index} is marked on disk but no store holds it"
            )
        result = store.load(index)
        if store is self._spill:
            store.discard(index)
        return result


def run_fleet(
    spec: FleetSpec,
    executor: Optional[FleetExecutor] = None,
    config: Optional[SnipConfig] = None,
    telemetry: Optional[TelemetryBus] = None,
    checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
    max_live_shards: int = DEFAULT_MAX_LIVE_SHARDS,
) -> FleetReport:
    """Convenience one-shot: build an engine and run it."""
    return FleetEngine(
        spec,
        executor=executor,
        config=config,
        telemetry=telemetry,
        checkpoint=checkpoint,
        max_live_shards=max_live_shards,
    ).run()
