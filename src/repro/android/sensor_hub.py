"""Sensor hub: samples physical sensors and raises interrupts.

Step 2 of the paper's Fig. 1 walkthrough. The hub runs on a low-power
core, batching raw sensor samples before waking the CPU. Each
high-level event is backed by a burst of raw samples — a swipe is a
series of touch points, a tilt a series of gyro readings — and the hub
charges the per-sample sensor energy plus its own batch-processing work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.android.events import Event, EventType
from repro.soc.soc import (
    IP_SENSOR_HUB,
    SENSOR_ACCEL,
    SENSOR_CAMERA,
    SENSOR_GPS,
    SENSOR_GYRO,
    SENSOR_TOUCH,
    Soc,
)

#: Which physical sensors back each event type, and how many raw samples
#: one event of that type consumes. A swipe is ~16 touch samples; a tilt
#: is ~10 gyro readings; a camera frame is 1 readout plus accel context.
_SENSOR_BURSTS: Dict[EventType, Tuple[Tuple[str, int], ...]] = {
    EventType.TOUCH: ((SENSOR_TOUCH, 2),),
    EventType.SWIPE: ((SENSOR_TOUCH, 16),),
    EventType.MULTI_TOUCH: ((SENSOR_TOUCH, 24),),
    EventType.GYRO: ((SENSOR_GYRO, 10), (SENSOR_ACCEL, 10)),
    EventType.CAMERA_FRAME: ((SENSOR_CAMERA, 1), (SENSOR_ACCEL, 4)),
    EventType.GPS: ((SENSOR_GPS, 1),),
    # Vsync callbacks originate at the display pipeline, not a sensor.
    EventType.FRAME_TICK: (),
}


@dataclass(frozen=True)
class RawSample:
    """One raw sensor reading inside a hub batch."""

    sensor: str
    index: int


class SensorHub:
    """Low-power sensor front end charging capture costs to the SoC."""

    def __init__(self, soc: Soc) -> None:
        self._soc = soc
        self._events_captured = 0

    @property
    def events_captured(self) -> int:
        """How many high-level events' raw bursts have been captured."""
        return self._events_captured

    def burst_for(self, event_type: EventType) -> Tuple[Tuple[str, int], ...]:
        """The (sensor, sample-count) burst backing one event."""
        return _SENSOR_BURSTS[event_type]

    def capture(self, event: Event, tag: str = "event") -> Tuple[RawSample, ...]:
        """Sample the sensors backing ``event`` and batch them.

        Sensor sampling is *not* avoidable by SNIP — the paper snips
        processing, not sensing — so callers charge this stage even for
        short-circuited events.
        """
        burst = self.burst_for(event.event_type)
        if not burst:
            # Display-originated events (frame ticks) never touch the hub.
            self._events_captured += 1
            return ()
        samples = []
        for sensor_name, count in burst:
            sensor = self._soc.sensor(sensor_name)
            for index in range(count):
                sensor.sample(tag=tag)
                samples.append(RawSample(sensor=sensor_name, index=index))
        # One hub batch per event: wake, filter, timestamp, enqueue.
        self._soc.ip(IP_SENSOR_HUB).invoke(
            work_units=1.0, bytes_in=len(samples) * 8, tag=tag
        )
        self._events_captured += 1
        return tuple(samples)
