"""Typed event objects and their wire schemas.

Event objects are the ``In.Event`` input category of the paper (Sec.
IV-A): fixed-size, fixed-location records passed as handler arguments,
2–640 bytes depending on type. Every event type has an
:class:`EventSchema` listing its fields with byte widths, which gives the
memoization substrates an exact per-record size and gives the ML layer a
stable feature ordering.

Values are stored quantised (ints, or floats rounded to the sensor's
resolution) so that equality — the basis of memoization — is exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Mapping, Sequence, Tuple, Union

from repro.errors import EventError, UnknownEventTypeError

FieldValue = Union[int, float, str]


class EventType(enum.Enum):
    """High-level event kinds delivered to game handlers."""

    TOUCH = "touch"
    SWIPE = "swipe"
    MULTI_TOUCH = "multi_touch"
    GYRO = "gyro"
    CAMERA_FRAME = "camera_frame"
    GPS = "gps"
    FRAME_TICK = "frame_tick"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class EventFieldSpec:
    """One field of an event object.

    Attributes
    ----------
    name:
        Field name, unique within the schema.
    nbytes:
        Wire size of the field, counted toward the In.Event record size.
    resolution:
        Quantisation step for float fields (values are rounded to a
        multiple of this); ``None`` for ints/strings.
    """

    name: str
    nbytes: int
    resolution: float = 0.0

    def quantise(self, value: FieldValue) -> FieldValue:
        """Snap ``value`` to this field's resolution grid.

        Sensors deliver at finite resolution (a touch digitizer grid, a
        gyro LSB): two user actions the hardware cannot distinguish
        produce identical event objects. This is what makes In.Event
        records repeat at all.
        """
        if self.resolution > 0:
            if isinstance(value, float):
                return round(round(value / self.resolution) * self.resolution, 10)
            if isinstance(value, int) and not isinstance(value, bool):
                step = int(self.resolution)
                if step > 1:
                    return (value // step) * step
        return value


@dataclass(frozen=True)
class EventSchema:
    """The full field layout of one event type."""

    event_type: EventType
    fields: Tuple[EventFieldSpec, ...]

    @cached_property
    def nbytes(self) -> int:
        """Total In.Event record size for this type."""
        return sum(spec.nbytes for spec in self.fields)

    @cached_property
    def field_names(self) -> Tuple[str, ...]:
        """Stable field ordering used by feature encoding."""
        return tuple(spec.name for spec in self.fields)

    @cached_property
    def _specs_by_name(self) -> Dict[str, EventFieldSpec]:
        return {spec.name: spec for spec in self.fields}

    def spec(self, name: str) -> EventFieldSpec:
        """Look up one field spec by name."""
        try:
            return self._specs_by_name[name]
        except KeyError:
            raise EventError(
                f"{self.event_type}: no field named {name!r}"
            ) from None


def _touch_schema() -> EventSchema:
    return EventSchema(
        EventType.TOUCH,
        (
            EventFieldSpec("x", 2, resolution=32),
            EventFieldSpec("y", 2, resolution=32),
            EventFieldSpec("pressure", 2, resolution=0.1),
            EventFieldSpec("action", 1),  # 0=down, 1=up, 2=move
            EventFieldSpec("pointer_id", 1),
        ),
    )


def _swipe_schema() -> EventSchema:
    return EventSchema(
        EventType.SWIPE,
        (
            EventFieldSpec("x0", 2, resolution=64),
            EventFieldSpec("y0", 2, resolution=64),
            EventFieldSpec("x1", 2, resolution=64),
            EventFieldSpec("y1", 2, resolution=64),
            EventFieldSpec("velocity", 4, resolution=400.0),
            EventFieldSpec("direction", 1),  # 0=N,1=NE,...,7=NW octant
            EventFieldSpec("duration_ms", 2, resolution=80),
            EventFieldSpec("path_points", 1),
        ),
    )


def _multi_touch_schema() -> EventSchema:
    # Two tracked pointers plus gesture summary (pinch/drag classifier).
    return EventSchema(
        EventType.MULTI_TOUCH,
        (
            EventFieldSpec("x0", 2, resolution=64),
            EventFieldSpec("y0", 2, resolution=64),
            EventFieldSpec("x1", 2, resolution=32),
            EventFieldSpec("y1", 2, resolution=32),
            EventFieldSpec("gesture", 1),  # 0=drag, 1=pinch, 2=spread
            EventFieldSpec("magnitude", 4, resolution=1.0),
            EventFieldSpec("pointer_count", 1),
        ),
    )


def _gyro_schema() -> EventSchema:
    return EventSchema(
        EventType.GYRO,
        (
            EventFieldSpec("alpha", 4, resolution=4.0),
            EventFieldSpec("beta", 4, resolution=4.0),
            EventFieldSpec("gamma", 4, resolution=4.0),
            EventFieldSpec("rate", 4, resolution=5.0),
        ),
    )


def _camera_frame_schema() -> EventSchema:
    # The camera feed itself is megabytes (In.Extern / In.History); the
    # event object delivered to the handler is a frame descriptor whose
    # size dominates the In.Event spectrum (640 B in Fig. 7a).
    specs = [
        EventFieldSpec("frame_id", 4),
        EventFieldSpec("scene_complexity", 2),
        EventFieldSpec("feature_count", 2),
        EventFieldSpec("exposure", 2),
        EventFieldSpec("focus_zone", 1),
        EventFieldSpec("motion_score", 4, resolution=1.0),
    ]
    # 25 region-of-interest descriptors, 25 bytes each, pad to 640 B.
    for index in range(25):
        specs.append(EventFieldSpec(f"roi_{index}", 25))
    return EventSchema(EventType.CAMERA_FRAME, tuple(specs))


def _frame_tick_schema() -> EventSchema:
    # Choreographer vsync callback: apps draw their frames from these.
    # Deliberately tiny (the 2 B low end of Fig. 7a's In.Event spread).
    return EventSchema(
        EventType.FRAME_TICK,
        (
            EventFieldSpec("delta_ms", 1),
            EventFieldSpec("slot", 1),  # vsync index mod 4 (animation phase)
        ),
    )


def _gps_schema() -> EventSchema:
    return EventSchema(
        EventType.GPS,
        (
            EventFieldSpec("lat_cell", 4),
            EventFieldSpec("lon_cell", 4),
            EventFieldSpec("accuracy_m", 2),
            EventFieldSpec("speed", 2, resolution=0.1),
        ),
    )


#: Registry of every event schema, keyed by type.
EVENT_SCHEMAS: Dict[EventType, EventSchema] = {
    schema.event_type: schema
    for schema in (
        _touch_schema(),
        _swipe_schema(),
        _multi_touch_schema(),
        _gyro_schema(),
        _camera_frame_schema(),
        _gps_schema(),
        _frame_tick_schema(),
    )
}


def schema_for(event_type: EventType) -> EventSchema:
    """Look up the schema for ``event_type``."""
    try:
        return EVENT_SCHEMAS[event_type]
    except KeyError:
        raise UnknownEventTypeError(f"no schema for event type {event_type!r}") from None


class Event:
    """One concrete event instance.

    Values are validated and quantised against the schema at
    construction, so two events that a real sensor could not distinguish
    compare equal — the property memoization keys rely on.
    """

    __slots__ = ("schema", "values", "sequence", "timestamp")

    def __init__(
        self,
        event_type: EventType,
        values: Mapping[str, FieldValue],
        sequence: int = 0,
        timestamp: float = 0.0,
    ) -> None:
        schema = schema_for(event_type)
        missing = set(schema.field_names) - set(values)
        extra = set(values) - set(schema.field_names)
        if missing:
            raise EventError(f"{event_type}: missing fields {sorted(missing)}")
        if extra:
            raise EventError(f"{event_type}: unknown fields {sorted(extra)}")
        self.schema = schema
        self.values: Dict[str, FieldValue] = {
            spec.name: spec.quantise(values[spec.name]) for spec in schema.fields
        }
        self.sequence = sequence
        self.timestamp = timestamp

    @property
    def event_type(self) -> EventType:
        """The event kind."""
        return self.schema.event_type

    @property
    def nbytes(self) -> int:
        """In.Event record size delivered over Binder."""
        return self.schema.nbytes

    def field(self, name: str) -> FieldValue:
        """Read one field value."""
        try:
            return self.values[name]
        except KeyError:
            raise EventError(f"{self.event_type}: no field named {name!r}") from None

    def key(self) -> Tuple[FieldValue, ...]:
        """Hashable tuple of all field values in schema order."""
        return tuple(self.values[name] for name in self.schema.field_names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.event_type == other.event_type and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.event_type, self.key()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.event_type}, seq={self.sequence}, {self.values})"


def fast_event(
    schema: EventSchema,
    values: Dict[str, FieldValue],
    sequence: int,
    timestamp: float,
) -> Event:
    """Build an :class:`Event` without validation or re-quantisation.

    The columnar session assembler calls this with value dicts that are
    already quantised and in schema field order (they came out of a
    validated ``Event``), where re-running ``Event.__init__`` would only
    re-prove what is already true. The dict is adopted, not copied —
    callers must not mutate it afterwards. Quantisation is a fixpoint
    (re-quantising a quantised value returns it bit-identically), which
    the equivalence tests assert per game, so events built here compare
    equal — and hash equal — to scalar-path reconstructions.
    """
    event = Event.__new__(Event)
    event.schema = schema
    event.values = values
    event.sequence = sequence
    event.timestamp = timestamp
    return event


# -- convenience constructors ------------------------------------------


def make_touch(
    x: int,
    y: int,
    pressure: float = 0.5,
    action: int = 0,
    pointer_id: int = 0,
    sequence: int = 0,
    timestamp: float = 0.0,
) -> Event:
    """Build a touch event."""
    return Event(
        EventType.TOUCH,
        {"x": x, "y": y, "pressure": pressure, "action": action, "pointer_id": pointer_id},
        sequence=sequence,
        timestamp=timestamp,
    )


def make_swipe(
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    velocity: float,
    direction: int,
    duration_ms: int,
    path_points: int = 8,
    sequence: int = 0,
    timestamp: float = 0.0,
) -> Event:
    """Build a swipe (gesture-classified MotionEvent series)."""
    return Event(
        EventType.SWIPE,
        {
            "x0": x0,
            "y0": y0,
            "x1": x1,
            "y1": y1,
            "velocity": velocity,
            "direction": direction,
            "duration_ms": duration_ms,
            "path_points": path_points,
        },
        sequence=sequence,
        timestamp=timestamp,
    )


def make_multi_touch(
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    gesture: int,
    magnitude: float,
    pointer_count: int = 2,
    sequence: int = 0,
    timestamp: float = 0.0,
) -> Event:
    """Build a multi-touch gesture event (drag/pinch/spread)."""
    return Event(
        EventType.MULTI_TOUCH,
        {
            "x0": x0,
            "y0": y0,
            "x1": x1,
            "y1": y1,
            "gesture": gesture,
            "magnitude": magnitude,
            "pointer_count": pointer_count,
        },
        sequence=sequence,
        timestamp=timestamp,
    )


def make_gyro(
    alpha: float,
    beta: float,
    gamma: float,
    rate: float,
    sequence: int = 0,
    timestamp: float = 0.0,
) -> Event:
    """Build a gyroscope (tilt) event with Euler angles in degrees."""
    return Event(
        EventType.GYRO,
        {"alpha": alpha, "beta": beta, "gamma": gamma, "rate": rate},
        sequence=sequence,
        timestamp=timestamp,
    )


def make_camera_frame(
    frame_id: int,
    scene_complexity: int,
    feature_count: int,
    roi_values: Sequence[int],
    exposure: int = 100,
    focus_zone: int = 0,
    motion_score: float = 0.0,
    sequence: int = 0,
    timestamp: float = 0.0,
) -> Event:
    """Build a camera frame-descriptor event (25 ROI slots)."""
    if len(roi_values) != 25:
        raise EventError(f"camera frame needs 25 ROI values, got {len(roi_values)}")
    values: Dict[str, FieldValue] = {
        "frame_id": frame_id,
        "scene_complexity": scene_complexity,
        "feature_count": feature_count,
        "exposure": exposure,
        "focus_zone": focus_zone,
        "motion_score": motion_score,
    }
    for index, roi in enumerate(roi_values):
        values[f"roi_{index}"] = roi
    return Event(EventType.CAMERA_FRAME, values, sequence=sequence, timestamp=timestamp)


def make_frame_tick(
    delta_ms: int = 16,
    slot: int = 0,
    sequence: int = 0,
    timestamp: float = 0.0,
) -> Event:
    """Build a choreographer vsync (frame tick) event."""
    return Event(
        EventType.FRAME_TICK,
        {"delta_ms": delta_ms, "slot": slot},
        sequence=sequence,
        timestamp=timestamp,
    )


def make_gps(
    lat_cell: int,
    lon_cell: int,
    accuracy_m: int = 5,
    speed: float = 1.0,
    sequence: int = 0,
    timestamp: float = 0.0,
) -> Event:
    """Build a GPS position event (grid-cell quantised)."""
    return Event(
        EventType.GPS,
        {"lat_cell": lat_cell, "lon_cell": lon_cell, "accuracy_m": accuracy_m, "speed": speed},
        sequence=sequence,
        timestamp=timestamp,
    )
