"""AOSP-emulator-like deterministic replay with full I/O capture.

The cloud half of the paper's Fig. 10 methodology: the device uploads
only the recorded event stream; the emulator replays it against a fresh
copy of the game "as if the user is playing the game once again" and
dumps, per event, the complete input/output record — a memory snapshot
of all state locations (the heap-profiler dump), the event's fields, any
external fetches, and the handler's reads/writes/work trace.

Replay is verified: handlers are required to be deterministic functions
of their context inputs, and :meth:`Emulator.replay` can re-run the
trace and compare output signatures, raising
:class:`~repro.errors.ReplayDivergenceError` on mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Tuple

from repro.android.events import EventType
from repro.android.tracing import RecordedTrace
from repro.errors import ReplayDivergenceError, TraceError

if TYPE_CHECKING:  # pragma: no cover - layering: games sit above android
    from repro.games.base import Game, ProcessingTrace


@dataclass(frozen=True)
class ProfileRecord:
    """The complete I/O record of one replayed event.

    Attributes
    ----------
    sequence / event_type / event_values:
        The triggering event.
    state_snapshot:
        ``{field: (value, nbytes)}`` for *every* state location at the
        moment the event arrived — the union-of-locations view the
        naive lookup table needs (Sec. III).
    extern_reads:
        ``{key: (content_id, nbytes)}`` for assets fetched during
        processing.
    trace:
        The handler's reads/writes/work record.
    """

    sequence: int
    event_type: EventType
    event_values: Tuple[Tuple[str, Any], ...]
    state_snapshot: Tuple[Tuple[str, Tuple[Any, int]], ...]
    extern_reads: Tuple[Tuple[str, Tuple[Any, int]], ...]
    trace: "ProcessingTrace"
    #: Which recorded session this event came from (generalization
    #: across sessions/users is judged on this).
    session: int = 0

    def event_value(self, name: str) -> Any:
        """Value of one event field."""
        for key, value in self.event_values:
            if key == name:
                return value
        raise KeyError(name)

    def state_value(self, name: str) -> Tuple[Any, int]:
        """(value, nbytes) of one state field at event time."""
        for key, pair in self.state_snapshot:
            if key == name:
                return pair
        raise KeyError(name)


class Emulator:
    """Replays recorded traces against fresh game instances."""

    def __init__(self, verify: bool = True) -> None:
        self.verify = verify

    def replay(
        self, game: "Game", trace: RecordedTrace, session: int = 0
    ) -> List[ProfileRecord]:
        """Replay ``trace`` on a fresh copy of ``game``; return records.

        The passed game instance is used as a template only (its
        :meth:`~repro.games.base.Game.fresh` clone is what runs), so
        callers can reuse a live game without contaminating the profile.
        """
        if trace.game_name != game.name:
            raise TraceError(
                f"trace was recorded on {trace.game_name!r}, not {game.name!r}"
            )
        records = self._run_once(game.fresh(), trace, session)
        if self.verify:
            second = self._run_once(game.fresh(), trace, session)
            for first_rec, second_rec in zip(records, second):
                if (
                    first_rec.trace.output_signature()
                    != second_rec.trace.output_signature()
                ):
                    raise ReplayDivergenceError(
                        f"event {first_rec.sequence}: replay produced different "
                        f"outputs across runs — handler is not deterministic"
                    )
        return records

    def _run_once(
        self, game: "Game", trace: RecordedTrace, session: int = 0
    ) -> List[ProfileRecord]:
        from repro.games.base import InputCategory

        records: List[ProfileRecord] = []
        for recorded in trace:
            event = recorded.to_event()
            # The engine's pre-handler bookkeeping runs first, exactly
            # as the device's delivery path does; the memory dump is
            # taken at probe time (post-engine, pre-handler).
            game.advance_engine(event)
            snapshot = game.state.snapshot()
            processing = game.process(event)
            extern_reads = tuple(
                (read.name.partition(":")[2], (read.value, read.nbytes))
                for read in processing.reads_in(InputCategory.EXTERN)
            )
            records.append(
                ProfileRecord(
                    sequence=event.sequence,
                    event_type=event.event_type,
                    event_values=tuple(sorted(event.values.items())),
                    state_snapshot=tuple(sorted(snapshot.items())),
                    extern_reads=extern_reads,
                    trace=processing,
                    session=session,
                )
            )
        return records
