"""SensorManager: raw samples -> high-level events.

The OS framework stage of the paper's Fig. 1 (step 3, first half):
interrupt handling, gesture classification (a touch series becomes a
swipe with direction/velocity), and event-object packing. This runs on
the little CPU cores and is part of the *unavoidable* per-event cost —
SNIP's lookup happens after the event object exists.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.android.events import Event, EventType
from repro.android.sensor_hub import RawSample
from repro.soc.soc import Soc

#: Little-core cycles to classify and pack one event, by type. Gesture
#: classification over a touch series costs more than copying one fix.
_SYNTHESIS_CYCLES: Dict[EventType, int] = {
    EventType.TOUCH: 6_000,
    EventType.SWIPE: 28_000,
    EventType.MULTI_TOUCH: 40_000,
    EventType.GYRO: 12_000,
    EventType.CAMERA_FRAME: 55_000,
    EventType.GPS: 9_000,
    EventType.FRAME_TICK: 2_000,
}


class SensorManager:
    """Turns hub batches into packed event objects on little cores."""

    def __init__(self, soc: Soc) -> None:
        self._soc = soc
        self._events_synthesized = 0

    @property
    def events_synthesized(self) -> int:
        """How many event objects have been packed."""
        return self._events_synthesized

    def synthesis_cycles(self, event_type: EventType) -> int:
        """Little-core cycles to synthesize one event of this type."""
        return _SYNTHESIS_CYCLES[event_type]

    def synthesize(
        self, event: Event, samples: Tuple[RawSample, ...], tag: str = "event"
    ) -> Event:
        """Charge the classification/packing cost for ``event``.

        The event's values come from the user model (the workload is the
        source of truth); this stage accounts for the OS work of
        producing them from the raw ``samples``.
        """
        cycles = self.synthesis_cycles(event.event_type)
        # Classification cost grows mildly with the raw burst length.
        cycles += 400 * len(samples)
        self._soc.cpu.execute(cycles, big=False, tag=tag)
        self._soc.memory.transfer(event.nbytes + len(samples) * 8, tag=tag)
        self._events_synthesized += 1
        return event
