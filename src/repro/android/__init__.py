"""Android-like OS event path.

Models the pipeline the paper instruments: physical sensors are sampled
by the sensor hub, the SensorManager turns raw samples into high-level
events (swipe, tilt, ...), the Binder framework copies event objects
into the app, and the app's registered handlers process them. Each hop
charges its energy to the SoC, so short-circuiting an event saves the
whole downstream chain — exactly the end-to-end scope SNIP targets.
"""

from repro.android.binder import Binder
from repro.android.dispatch import EventLoop, charge_delivery, charge_trace
from repro.android.emulator import Emulator, ProfileRecord
from repro.android.events import (
    EVENT_SCHEMAS,
    Event,
    EventFieldSpec,
    EventSchema,
    EventType,
    make_camera_frame,
    make_frame_tick,
    make_gps,
    make_gyro,
    make_multi_touch,
    make_swipe,
    make_touch,
)
from repro.android.sensor_hub import RawSample, SensorHub
from repro.android.sensor_manager import SensorManager
from repro.android.tracing import EventTracer, RecordedEvent, RecordedTrace

__all__ = [
    "Binder",
    "EVENT_SCHEMAS",
    "Event",
    "EventFieldSpec",
    "EventLoop",
    "EventSchema",
    "EventTracer",
    "EventType",
    "Emulator",
    "ProfileRecord",
    "charge_delivery",
    "charge_trace",
    "RawSample",
    "RecordedEvent",
    "RecordedTrace",
    "SensorHub",
    "SensorManager",
    "make_camera_frame",
    "make_frame_tick",
    "make_gps",
    "make_gyro",
    "make_multi_touch",
    "make_swipe",
    "make_touch",
]
