"""Binder IPC: copy event objects from the OS into the app.

Step 3 (second half) of the paper's Fig. 1: events cross the
framework/app boundary through Binder shared memory [9]. We charge one
little-core transaction cost plus the memory traffic of the event
record. Like sensing and synthesis, this cost is paid whether or not
SNIP later short-circuits the handler.
"""

from __future__ import annotations

from repro.android.events import Event
from repro.soc.soc import Soc

#: Little-core cycles per Binder transaction (marshalling + syscall).
BINDER_TRANSACTION_CYCLES = 14_000


class Binder:
    """Shared-memory IPC channel between SensorManager and the app."""

    def __init__(self, soc: Soc) -> None:
        self._soc = soc
        self._transactions = 0
        self._bytes_transferred = 0

    @property
    def transaction_count(self) -> int:
        """How many Binder transactions have completed."""
        return self._transactions

    @property
    def bytes_transferred(self) -> int:
        """Total event-object bytes copied across the boundary."""
        return self._bytes_transferred

    def transfer(self, event: Event, tag: str = "event") -> Event:
        """Copy ``event`` into the app process, charging IPC costs."""
        self._soc.cpu.execute(BINDER_TRANSACTION_CYCLES, big=False, tag=tag)
        # The record crosses memory twice: write by the framework, read
        # by the app-side proxy.
        self._soc.memory.transfer(2 * event.nbytes, tag=tag)
        self._transactions += 1
        self._bytes_transferred += event.nbytes
        return event
