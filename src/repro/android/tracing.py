"""Device-side event recording (the logcat-like tracer).

The first stage of the SNIP methodology (Fig. 10): while the user plays,
the phone records only the *event inputs* — cheap, a few hundred bytes
per event — and ships them to the cloud, where the emulator replays them
to regenerate the full input/output profile. This module is that
recorder plus the serializable trace format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple

from repro.android.events import Event, EventType
from repro.errors import TraceError


@dataclass(frozen=True)
class RecordedEvent:
    """One event as captured by the tracer (values only, no outputs)."""

    sequence: int
    timestamp: float
    event_type: EventType
    values: Tuple[Tuple[str, Any], ...]

    def to_event(self) -> Event:
        """Reconstruct the live event object for replay."""
        return Event(
            self.event_type,
            dict(self.values),
            sequence=self.sequence,
            timestamp=self.timestamp,
        )

    @property
    def nbytes(self) -> int:
        """Record size contributed to the uplink payload."""
        return self.to_event().nbytes


@dataclass
class RecordedTrace:
    """A full session recording: ordered events plus metadata."""

    game_name: str
    seed: int
    events: List[RecordedEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RecordedEvent]:
        return iter(self.events)

    @property
    def uplink_bytes(self) -> int:
        """Total bytes the phone must upload for this trace.

        The paper's Sec. VII-C point: client-side collection overhead is
        negligible because only In.Event data is shipped.
        """
        return sum(record.nbytes for record in self.events)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable) for storage/transfer."""
        return {
            "game_name": self.game_name,
            "seed": self.seed,
            "events": [
                {
                    "sequence": record.sequence,
                    "timestamp": record.timestamp,
                    "event_type": record.event_type.value,
                    "values": dict(record.values),
                }
                for record in self.events
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RecordedTrace":
        """Inverse of :meth:`to_dict`."""
        try:
            events = [
                RecordedEvent(
                    sequence=entry["sequence"],
                    timestamp=entry["timestamp"],
                    event_type=EventType(entry["event_type"]),
                    values=tuple(sorted(entry["values"].items())),
                )
                for entry in payload["events"]
            ]
            return cls(game_name=payload["game_name"], seed=payload["seed"], events=events)
        except (KeyError, ValueError) as exc:
            raise TraceError(f"malformed trace payload: {exc}") from exc


class EventTracer:
    """Records the event stream of one live session."""

    def __init__(self, game_name: str, seed: int) -> None:
        self._trace = RecordedTrace(game_name=game_name, seed=seed)

    def record(self, event: Event) -> None:
        """Append one event to the trace, preserving arrival order."""
        if self._trace.events and event.sequence <= self._trace.events[-1].sequence:
            raise TraceError(
                f"event sequence regressed: {event.sequence} after "
                f"{self._trace.events[-1].sequence}"
            )
        self._trace.events.append(
            RecordedEvent(
                sequence=event.sequence,
                timestamp=event.timestamp,
                event_type=event.event_type,
                values=tuple(sorted(event.values.items())),
            )
        )

    @property
    def trace(self) -> RecordedTrace:
        """The trace accumulated so far."""
        return self._trace
